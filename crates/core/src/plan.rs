//! Cost-based federated query planning: one plan→execute pipeline for
//! every client scatter path (`docs/wire-protocol.md` spec §13).
//!
//! The paper's federated design makes a cold query scatter to *every*
//! server covering the query cells; at city scale most of those
//! servers cannot contribute anything, so wire cost grows with
//! federation size rather than answer size. The planner bends that
//! curve: it consumes the fleet-aware [`DiscoveryView`] plus the
//! session's cached per-server
//! [`CoverageSummary`](openflame_mapserver::CoverageSummary)
//! advertisements
//! (seeded from the extended `Hello` exchange, spec §13.1) and builds a
//! [`ScatterPlan`] — the servers to consult (one selected replica per
//! intersecting fleet shard, exactly as the pre-planner paths chose)
//! minus the sources whose summaries *prove* they cannot contribute.
//!
//! # Pruning soundness (spec §13.3)
//!
//! A server may be skipped only on proof, never on heuristics:
//!
//! - [`PruneReason::MissingKind`] — the query's service kind is absent
//!   from the advertised kind set (the set is exhaustive by spec);
//! - [`PruneReason::EmptyKind`] — the kind is advertised with a
//!   document count of zero;
//! - [`PruneReason::DisjointExtent`] — the query footprint is provably
//!   disjoint from the advertised extent (every extent cell fails the
//!   conservative `may_intersect` test **and** the two caps are
//!   further apart than the sum of their radii — both checks must
//!   agree, so a malformed advertisement can only cost an unnecessary
//!   consult, never a wrong skip).
//!
//! A server with an **absent or stale** summary has *unknown*
//! coverage and MUST be consulted. Empty-answer demotion streaks
//! ([`crate::session::CoverageState::empty_streaks`], refined via
//! [`Session::note_answer`]) are a cost signal only: they are exposed
//! on the plan ([`PlannedTarget::empty_streak`]) for observability and
//! bench accounting, but MUST NOT prune, and the executor keeps
//! advertisement order so planner-on and planner-off runs fuse
//! byte-identically (the recall-parity pin).
//!
//! # Execution
//!
//! [`PlanExecutor`] runs a plan through [`Session::scatter`] with the
//! fleet machinery the ad hoc paths used to duplicate: one batched
//! envelope per planned server, a selectable handshake discipline
//! ([`HelloDiscipline`]), replica failover with dead-listing for fleet
//! branches (idempotent requests only, spec §7 — the dead replica's
//! discovery cell is invalidated *and* its per-endpoint cached state
//! purged, so a dead endpoint is never re-served from cache), and
//! empty-answer refinement of the coverage cache on the way out.

use crate::discovery::DiscoveredServer;
use crate::fleet::{DiscoveryView, FleetSelector, FleetShardView};
use crate::session::{CoverageState, Session};
use crate::ClientError;
use openflame_cells::{CellId, Region};
use openflame_geo::LatLng;
use openflame_mapserver::protocol::{CoverageExtent, HelloInfo, Request, Response};
use openflame_netsim::EndpointId;

/// The service kind a query plan targets, mapped to the wire-level
/// kind vocabulary of the coverage summary (spec §13.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Location-based search (`Request::Search`).
    Search,
    /// Forward geocoding (`Request::Geocode`).
    Geocode,
    /// Reverse geocoding (`Request::ReverseGeocode`).
    ReverseGeocode,
    /// Routing (`Request::Route` / matrices / nearest-node probes).
    Route,
    /// Localization (`Request::Localize`).
    Localize,
    /// Tile rendering (`Request::GetTile`).
    Tile,
}

impl QueryKind {
    /// The wire-level kind string used in [`CoverageSummary::kinds`]
    /// (spec §13.1 vocabulary).
    ///
    /// [`CoverageSummary::kinds`]: openflame_mapserver::CoverageSummary
    pub fn wire_kind(self) -> &'static str {
        match self {
            QueryKind::Search => "search",
            QueryKind::Geocode => "geocode",
            QueryKind::ReverseGeocode => "rgeocode",
            QueryKind::Route => "route",
            QueryKind::Localize => "localize",
            QueryKind::Tile => "tiles",
        }
    }
}

/// Why the planner skipped a source (spec §13.3 — all three are
/// proofs, never heuristics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneReason {
    /// The query kind is absent from the advertised kind set.
    MissingKind,
    /// The kind is advertised with a document count of zero.
    EmptyKind,
    /// The advertised extent is provably disjoint from the query
    /// footprint.
    DisjointExtent,
}

/// A source the planner proved non-contributing and skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunedSource {
    /// The skipped server's id.
    pub server_id: String,
    /// The skipped server's endpoint.
    pub endpoint: EndpointId,
    /// The proof that let the planner skip it.
    pub reason: PruneReason,
}

/// Fleet context of a planned branch: the shard it consults (sibling
/// replicas live in `shard.replicas`) and the discovery-cache cell to
/// invalidate on failover.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBranch {
    /// The shard this branch consults.
    pub shard: FleetShardView,
    /// The session discovery-cache cell to invalidate on failover.
    pub cell_raw: u64,
}

/// One branch of a scatter plan: the concrete server to consult,
/// plus — when the branch serves a fleet shard — the failover context.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedTarget {
    /// The server to consult (updated to the answering replica on
    /// failover, keeping provenance honest).
    pub server: DiscoveredServer,
    /// Fleet failover context, `None` for plain servers.
    pub fleet: Option<FleetBranch>,
    /// The server's consecutive-empty streak for the plan's kind — a
    /// cost signal for observability and bench accounting. MUST NOT
    /// influence pruning (spec §13.3), and the executor keeps
    /// advertisement order, so it never changes what a query returns.
    pub empty_streak: u32,
}

/// A scatter plan: which sources to consult for one query, which were
/// provably skipped, and enough accounting for the bench sweeps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScatterPlan {
    /// The service kind planned for, `None` for kind-agnostic plans
    /// (pure discovery listings — those never prune).
    pub kind: Option<QueryKind>,
    /// The sources to consult, in advertisement order.
    pub targets: Vec<PlannedTarget>,
    /// The sources skipped, each with its proof.
    pub pruned: Vec<PrunedSource>,
}

impl ScatterPlan {
    /// Sources this plan consults.
    pub fn consulted(&self) -> usize {
        self.targets.len()
    }

    /// Sources the planner proved non-contributing.
    pub fn pruned_count(&self) -> usize {
        self.pruned.len()
    }

    /// Candidate sources the planner considered (after the fleet
    /// layer's own shard-footprint filtering, which predates the
    /// planner and applies in both planner modes).
    pub fn considered(&self) -> usize {
        self.targets.len() + self.pruned.len()
    }

    /// Consulted sources carrying a non-zero empty-answer streak (the
    /// demotion cost signal — consulted anyway, spec §13.3).
    pub fn demoted(&self) -> usize {
        self.targets.iter().filter(|t| t.empty_streak > 0).count()
    }
}

/// Builds [`ScatterPlan`]s from discovery views and cached coverage.
///
/// With the planner disabled the plan is exactly the pre-planner
/// scatter set (every plain server plus one replica per intersecting
/// shard); enabling it only ever removes provably non-contributing
/// sources — the recall-parity tests pin that the results are
/// identical either way.
#[derive(Debug, Clone)]
pub struct QueryPlanner {
    enabled: bool,
}

impl Default for QueryPlanner {
    fn default() -> Self {
        Self { enabled: true }
    }
}

impl QueryPlanner {
    /// A planner with coverage-based pruning on or off.
    pub fn new(enabled: bool) -> Self {
        Self { enabled }
    }

    /// Whether coverage-based pruning is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Builds the scatter plan for one query: every plain server plus
    /// one selected replica per fleet shard intersecting `footprint`,
    /// minus (when enabled) the sources whose cached coverage
    /// summaries prove they cannot contribute to `kind`.
    ///
    /// Costs no wire traffic: coverage is read from the session cache
    /// only, so a cold federation (no summaries yet) is consulted in
    /// full — pruning is a warm-path optimization by construction.
    pub fn plan(
        &self,
        session: &Session,
        fleet: &FleetSelector,
        cell_raw: u64,
        view: DiscoveryView,
        kind: Option<QueryKind>,
        footprint: Option<(LatLng, f64)>,
    ) -> ScatterPlan {
        let transport = session.transport().clone();
        let mut plan = ScatterPlan {
            kind,
            targets: Vec::new(),
            pruned: Vec::new(),
        };
        for server in view.servers {
            self.admit(
                session,
                &mut plan,
                PlannedTarget {
                    server,
                    fleet: None,
                    empty_streak: 0,
                },
                footprint,
            );
        }
        for fleet_view in view.fleets {
            for shard in fleet_view.shards {
                if shard.replicas.is_empty() {
                    continue;
                }
                if let Some((center, radius_m)) = footprint {
                    if !shard.intersects(center, radius_m) {
                        continue;
                    }
                }
                // Every replica dead-listed: consult the first anyway —
                // the dead-list is a hint, and the wire (not the cache)
                // should decide whether the shard is truly down.
                let server = fleet
                    .choose(transport.as_ref(), &shard)
                    .unwrap_or(&shard.replicas[0])
                    .clone();
                self.admit(
                    session,
                    &mut plan,
                    PlannedTarget {
                        server,
                        fleet: Some(FleetBranch { shard, cell_raw }),
                        empty_streak: 0,
                    },
                    footprint,
                );
            }
        }
        plan
    }

    /// Admits one candidate into the plan, or prunes it on proof.
    fn admit(
        &self,
        session: &Session,
        plan: &mut ScatterPlan,
        mut target: PlannedTarget,
        footprint: Option<(LatLng, f64)>,
    ) {
        let state = session.cached_coverage(target.server.endpoint);
        if self.enabled {
            if let (Some(kind), Some(state)) = (plan.kind, state.as_ref()) {
                if let Some(reason) = prune_reason(state, kind, footprint) {
                    plan.pruned.push(PrunedSource {
                        server_id: target.server.server_id.clone(),
                        endpoint: target.server.endpoint,
                        reason,
                    });
                    return;
                }
            }
        }
        target.empty_streak = match (plan.kind, state) {
            (Some(kind), Some(state)) => state
                .empty_streaks
                .get(kind.wire_kind())
                .copied()
                .unwrap_or(0),
            _ => 0,
        };
        plan.targets.push(target);
    }
}

/// The proof (if any) that a source with this coverage state cannot
/// contribute to a `kind` query over `footprint` (spec §13.3). A state
/// without a summary proves nothing — "unknown coverage, never prune".
fn prune_reason(
    state: &CoverageState,
    kind: QueryKind,
    footprint: Option<(LatLng, f64)>,
) -> Option<PruneReason> {
    let summary = state.summary.as_ref()?;
    match summary.kind_count(kind.wire_kind()) {
        // The advertised kind set is exhaustive (spec §13.1): absence
        // is a commitment that the kind cannot be answered.
        None => return Some(PruneReason::MissingKind),
        Some(0) => return Some(PruneReason::EmptyKind),
        Some(_) => {}
    }
    let (center, radius_m) = footprint?;
    let extent = summary.extent.as_ref()?;
    footprint_disjoint(extent, center, radius_m).then_some(PruneReason::DisjointExtent)
}

/// Whether a query cap is *provably* disjoint from an advertised
/// extent. Requires both the cell-covering test and the cap-distance
/// test to agree; any malformed or empty advertisement proves nothing.
fn footprint_disjoint(extent: &CoverageExtent, center: LatLng, radius_m: f64) -> bool {
    if extent.cells.is_empty() {
        return false;
    }
    let cap = Region::Cap { center, radius_m };
    for &raw in &extent.cells {
        match CellId::from_raw(raw) {
            Ok(cell) => {
                if cap.may_intersect_cell(cell) {
                    return false;
                }
            }
            // A cell that does not decode proves nothing.
            Err(_) => return false,
        }
    }
    center.haversine_distance(extent.center) > radius_m + extent.radius_m
}

/// How the executor handles capability handshakes for servers without
/// a cached `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelloDiscipline {
    /// Submit service envelopes directly; callers that need anchors
    /// have already ensured the handshakes.
    Direct,
    /// Uncached servers get a `Hello` envelope riding in the *same*
    /// scatter round as their service envelope (the localize
    /// discipline — the caller needs the anchors right afterwards and
    /// overlapping costs no extra round trip).
    Prefetch,
    /// Uncached servers handshake first and their service envelope
    /// follows in a second pipelined round (the search discipline —
    /// the request itself depends on the anchor). The request builder
    /// is consulted again once the handshake lands and must produce a
    /// request then: a failed or denying `Hello` does not exempt a
    /// server from being queried.
    TwoPhase,
}

/// Runs [`ScatterPlan`]s through the session: one batched envelope per
/// planned server, pipelined handshakes, fleet failover, and coverage
/// refinement. The single executor behind every federated query path.
pub struct PlanExecutor<'a> {
    session: &'a Session,
    fleet: &'a FleetSelector,
}

impl<'a> PlanExecutor<'a> {
    /// An executor over the client's session and fleet selector.
    pub fn new(session: &'a Session, fleet: &'a FleetSelector) -> Self {
        Self { session, fleet }
    }

    /// Executes the plan. `request_for` builds each target's batch
    /// from the server and its cached advertisement; returning `None`
    /// drops the target from the plan without any wire traffic (e.g.
    /// a localize target accepting none of the offered cues). The
    /// returned outcomes align positionally with `plan.targets`, which
    /// is updated in place (skips removed, failover provenance
    /// rewritten to the answering replica).
    ///
    /// **Idempotent requests only** (spec §7, spec §9): failed fleet
    /// branches retry on sibling replicas. Each failed endpoint is
    /// dead-listed, its discovery cell invalidated *and* its
    /// per-endpoint cached state (hello + coverage) purged — a dead
    /// replica must not be re-served from any cache for up to a TTL.
    ///
    /// When the plan carries a kind, gathered answers refine the
    /// coverage cache ([`Session::note_answer`]): empty answers extend
    /// a server's demotion streak, non-empty ones reset it. The streak
    /// is a cost signal only and never prunes (spec §13.3).
    pub fn run(
        &self,
        plan: &mut ScatterPlan,
        discipline: HelloDiscipline,
        request_for: impl Fn(&DiscoveredServer, Option<HelloInfo>) -> Option<Vec<Request>>,
    ) -> Vec<Result<Vec<Response>, ClientError>> {
        // Skip decisions come first, from the pre-round cache state:
        // a target whose builder declines is dropped before any
        // traffic. Cold targets under TwoPhase are always kept — their
        // builder runs after the handshake.
        let mut kept: Vec<PlannedTarget> = Vec::new();
        let mut first_requests: Vec<Option<Vec<Request>>> = Vec::new();
        for target in plan.targets.drain(..) {
            let endpoint = target.server.endpoint;
            let warm = self.session.has_hello(endpoint);
            if discipline == HelloDiscipline::TwoPhase && !warm {
                kept.push(target);
                first_requests.push(None);
                continue;
            }
            let hello = if warm {
                self.session.cached_hello(endpoint)
            } else {
                None
            };
            if let Some(requests) = request_for(&target.server, hello) {
                kept.push(target);
                first_requests.push(Some(requests));
            }
        }
        plan.targets = kept;

        /// Where a target's service response lives.
        enum Slot {
            /// Submitted in the first round, at this index.
            Warm(usize),
            /// Handshake first; the service envelope rides the
            /// follow-up round, at this index.
            Cold(usize),
        }
        let mut round = self.session.scatter();
        let slots: Vec<Slot> = plan
            .targets
            .iter()
            .zip(&first_requests)
            .map(|(target, requests)| match requests {
                Some(requests) => {
                    Slot::Warm(round.submit(target.server.endpoint, requests.clone()))
                }
                None => {
                    self.session.note_hello_misses(1);
                    Slot::Cold(round.submit(target.server.endpoint, vec![Request::Hello]))
                }
            })
            .collect();
        if discipline == HelloDiscipline::Prefetch {
            // Handshakes for uncached servers ride after the service
            // envelopes, in the same round; their answers are absorbed
            // into the hello/coverage caches on collect and their
            // branch results are simply not claimed by any slot.
            for target in &plan.targets {
                if !self.session.has_hello(target.server.endpoint) {
                    self.session.note_hello_misses(1);
                    round.submit(target.server.endpoint, vec![Request::Hello]);
                }
            }
        }
        let first = round.collect();

        // Follow-up round for the cold targets (TwoPhase only): their
        // hellos were absorbed on collect, so the builder now sees the
        // advertisement — or `None` if the handshake failed, in which
        // case the request still goes out, exactly as the pre-planner
        // two-round flow behaved.
        let mut follow = self.session.scatter();
        let slots: Vec<Slot> = plan
            .targets
            .iter()
            .zip(slots)
            .map(|(target, slot)| match slot {
                Slot::Warm(i) => Slot::Warm(i),
                Slot::Cold(_) => {
                    let hello = self.session.cached_hello(target.server.endpoint);
                    let requests = request_for(&target.server, hello)
                        .expect("TwoPhase builders must produce a request after the handshake");
                    Slot::Cold(follow.submit(target.server.endpoint, requests))
                }
            })
            .collect();
        let second = follow.collect();
        let mut first: Vec<Option<Result<Vec<Response>, ClientError>>> =
            first.into_iter().map(Some).collect();
        let mut second: Vec<Option<Result<Vec<Response>, ClientError>>> =
            second.into_iter().map(Some).collect();
        let mut gathered: Vec<Result<Vec<Response>, ClientError>> = slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Warm(i) => first[i].take().expect("claimed once"),
                Slot::Cold(i) => second[i].take().expect("claimed once"),
            })
            .collect();

        self.failover(plan, &mut gathered, &request_for);

        if let Some(kind) = plan.kind {
            for (target, outcome) in plan.targets.iter().zip(&gathered) {
                let Ok(responses) = outcome else { continue };
                if let Some(empty) = responses.last().and_then(answer_emptiness) {
                    self.session
                        .note_answer(target.server.endpoint, kind.wire_kind(), empty);
                }
            }
        }
        gathered
    }

    /// Retries failed fleet branches on sibling replicas. Each failed
    /// branch's endpoint is dead-listed, its discovery-cache cell
    /// invalidated and its per-endpoint cached state purged, so the
    /// dead replica is not re-served from cache; the branch then
    /// retries on the first untried live sibling, round after round,
    /// until it succeeds or its replicas are exhausted. Plain
    /// (non-fleet) branches are left untouched. On success the
    /// branch's plan entry is updated to the answering replica.
    fn failover(
        &self,
        plan: &mut ScatterPlan,
        gathered: &mut [Result<Vec<Response>, ClientError>],
        request_for: &impl Fn(&DiscoveredServer, Option<HelloInfo>) -> Option<Vec<Request>>,
    ) {
        let transport = self.session.transport().clone();
        let mut tried: Vec<Vec<EndpointId>> = plan
            .targets
            .iter()
            .map(|t| vec![t.server.endpoint])
            .collect();
        loop {
            let mut retry = self.session.scatter();
            let mut retrying: Vec<(usize, DiscoveredServer)> = Vec::new();
            for (idx, outcome) in gathered.iter().enumerate() {
                if outcome.is_ok() {
                    continue;
                }
                let Some(branch) = &plan.targets[idx].fleet else {
                    continue;
                };
                let failed = *tried[idx].last().expect("seeded with the first pick");
                self.fleet.mark_dead(transport.as_ref(), failed);
                self.session.invalidate_cell(branch.cell_raw);
                // The bugfix half of dead-listing: without the purge,
                // the dead replica's hello and coverage entries
                // survive the discovery invalidation and are re-served
                // for up to a TTL.
                self.session.purge_endpoint(failed);
                let Some(sibling) =
                    self.fleet
                        .sibling(transport.as_ref(), &branch.shard, &tried[idx])
                else {
                    continue;
                };
                let sibling = sibling.clone();
                let Some(requests) =
                    request_for(&sibling, self.session.cached_hello(sibling.endpoint))
                else {
                    continue;
                };
                retry.submit(sibling.endpoint, requests);
                retrying.push((idx, sibling));
            }
            if retrying.is_empty() {
                return;
            }
            let results = retry.collect();
            for ((idx, sibling), result) in retrying.into_iter().zip(results) {
                tried[idx].push(sibling.endpoint);
                plan.targets[idx].server = sibling;
                gathered[idx] = result;
            }
        }
    }
}

/// Whether a service response is an *empty* answer, for coverage
/// refinement. Errors (denials) and non-service responses are answers
/// but not emptiness evidence.
fn answer_emptiness(response: &Response) -> Option<bool> {
    match response {
        Response::Search { results } => Some(results.is_empty()),
        Response::Geocode { hits } => Some(hits.is_empty()),
        Response::ReverseGeocode { hit } => Some(hit.is_none()),
        Response::Localize { estimates } => Some(estimates.is_empty()),
        Response::Tile { .. } => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_mapserver::protocol::CoverageSummary;
    use std::collections::HashMap;

    fn state(summary: Option<CoverageSummary>) -> CoverageState {
        CoverageState {
            summary,
            empty_streaks: HashMap::new(),
        }
    }

    fn anchor() -> LatLng {
        LatLng::new(37.0, -122.0).unwrap()
    }

    fn summary_with(kinds: Vec<(&str, u64)>, extent: Option<CoverageExtent>) -> CoverageSummary {
        CoverageSummary {
            kinds: kinds.into_iter().map(|(k, n)| (k.to_string(), n)).collect(),
            extent,
        }
    }

    fn extent_around(center: LatLng, radius_m: f64) -> CoverageExtent {
        let cells = openflame_cells::RegionCoverer::new(4, 14, 16)
            .covering(&Region::Cap { center, radius_m })
            .into_iter()
            .map(|c| c.raw())
            .collect();
        CoverageExtent {
            cells,
            center,
            radius_m,
        }
    }

    #[test]
    fn absent_summary_never_prunes() {
        // "Unknown coverage, never prune" (spec §13.3): a state with no
        // summary — pre-coverage peer, or refinement-only entry — is
        // consulted regardless of kind or footprint.
        let s = state(None);
        assert_eq!(
            prune_reason(&s, QueryKind::Search, Some((anchor(), 10.0))),
            None
        );
        assert_eq!(prune_reason(&s, QueryKind::Tile, None), None);
    }

    #[test]
    fn kind_proofs_prune() {
        let missing = state(Some(summary_with(vec![("search", 3)], None)));
        assert_eq!(
            prune_reason(&missing, QueryKind::Tile, None),
            Some(PruneReason::MissingKind)
        );
        let empty = state(Some(summary_with(vec![("tiles", 0), ("search", 3)], None)));
        assert_eq!(
            prune_reason(&empty, QueryKind::Tile, None),
            Some(PruneReason::EmptyKind)
        );
        assert_eq!(prune_reason(&empty, QueryKind::Search, None), None);
    }

    #[test]
    fn disjoint_extent_prunes_overlapping_does_not() {
        let venue = anchor();
        let summary = summary_with(vec![("search", 5)], Some(extent_around(venue, 80.0)));
        let s = state(Some(summary));
        // A footprint at the venue intersects.
        assert_eq!(
            prune_reason(&s, QueryKind::Search, Some((venue, 50.0))),
            None
        );
        // A footprint 50 km away is provably disjoint.
        let far = LatLng::new(37.45, -122.0).unwrap();
        assert!(venue.haversine_distance(far) > 10_000.0);
        assert_eq!(
            prune_reason(&s, QueryKind::Search, Some((far, 100.0))),
            Some(PruneReason::DisjointExtent)
        );
        // No footprint: nothing to prove disjointness against.
        assert_eq!(prune_reason(&s, QueryKind::Search, None), None);
    }

    #[test]
    fn malformed_or_empty_extent_proves_nothing() {
        let far = LatLng::new(37.45, -122.0).unwrap();
        // No cells: the covering half of the proof cannot run.
        let empty = CoverageExtent {
            cells: vec![],
            center: anchor(),
            radius_m: 80.0,
        };
        assert!(!footprint_disjoint(&empty, far, 100.0));
        // An undecodable cell poisons the proof even when the caps are
        // far apart — the consult is wasted, never the skip.
        let malformed = CoverageExtent {
            cells: vec![0],
            center: anchor(),
            radius_m: 80.0,
        };
        assert!(!footprint_disjoint(&malformed, far, 100.0));
    }

    #[test]
    fn wire_kind_matches_spec_vocabulary() {
        let kinds = [
            (QueryKind::Search, "search"),
            (QueryKind::Geocode, "geocode"),
            (QueryKind::ReverseGeocode, "rgeocode"),
            (QueryKind::Route, "route"),
            (QueryKind::Localize, "localize"),
            (QueryKind::Tile, "tiles"),
        ];
        for (kind, wire) in kinds {
            assert_eq!(kind.wire_kind(), wire);
        }
    }

    #[test]
    fn empty_streaks_ride_the_plan_but_never_prune() {
        let mut s = state(Some(summary_with(vec![("search", 5)], None)));
        s.empty_streaks.insert("search".to_string(), 7);
        // A long empty streak is not a proof.
        assert_eq!(prune_reason(&s, QueryKind::Search, None), None);
    }
}
