//! The Figure-1 centralized baseline.
//!
//! "Today's spatial naming systems are digital maps like Google and
//! Apple maps ... supported by centralized infrastructures" (§1). The
//! baseline serves the same client-facing services from a single
//! monolithic map. Two flavors matter for the evaluation:
//!
//! - [`CentralizedProvider::public_only`] — outdoor public data only.
//!   This is the *realistic* centralized provider: §2 argues exactly
//!   that store inventory and indoor maps "would not be part of the map
//!   database".
//! - [`CentralizedProvider::omniscient`] — every venue merged into the
//!   global frame using ground-truth alignments. Unrealizable in
//!   practice (it presumes the cartography and data sharing the paper
//!   says won't happen), but it provides the global optimum that
//!   experiment E4b scores stitched routes against.

use openflame_geo::{LatLng, LocalFrame};
use openflame_localize::TagRegistry;
use openflame_mapdata::{GeoReference, NodeId, Tags};
use openflame_mapserver::{AccessPolicy, MapServer, MapServerConfig};
use openflame_netsim::SimNet;
use openflame_worldgen::World;
use std::collections::HashMap;
use std::sync::Arc;

/// A centralized map provider (Figure 1).
pub struct CentralizedProvider {
    /// The provider's single map server.
    pub server: Arc<MapServer>,
    /// For omniscient providers: venue-frame node id → merged node id.
    pub merged_nodes: HashMap<(usize, NodeId), NodeId>,
}

impl CentralizedProvider {
    /// The realistic centralized provider: public outdoor data only.
    pub fn public_only(net: &SimNet, world: &World) -> Self {
        let server = MapServer::spawn(
            net,
            MapServerConfig {
                id: "central-public".into(),
                map: world.outdoor.clone(),
                beacons: Vec::new(),
                tags: TagRegistry::new(),
                policy: AccessPolicy::open(),
                portals: Vec::new(),
                location_hint: world.config.center,
                radius_m: city_radius(world),
                build_ch: false,
            },
        );
        Self {
            server,
            merged_nodes: HashMap::new(),
        }
    }

    /// The omniscient upper bound: every venue merged into the global
    /// frame via ground-truth transforms, entrances fused into portal
    /// edges.
    pub fn omniscient(net: &SimNet, world: &World) -> Self {
        let mut map = world.outdoor.clone();
        let mut merged_nodes = HashMap::new();
        let city = world.city_frame();
        for (vi, venue) in world.venues.iter().enumerate() {
            // Copy nodes with positions mapped into the city ENU frame.
            for node in venue.map.nodes() {
                let enu = venue.true_transform.apply(node.pos);
                let new_id = map.add_node(enu, node.tags.clone());
                merged_nodes.insert((vi, node.id), new_id);
            }
            // Copy ways with remapped node references.
            for way in venue.map.ways() {
                let nodes: Vec<NodeId> =
                    way.nodes.iter().map(|n| merged_nodes[&(vi, *n)]).collect();
                map.add_way(nodes, way.tags.clone())
                    .expect("remapped nodes exist");
            }
            // Fuse the entrance: connect the merged indoor entrance to
            // the outdoor entrance node so routing crosses the doorway.
            let indoor_entrance = merged_nodes[&(vi, venue.entrance_local)];
            map.add_way(
                vec![venue.entrance_outdoor, indoor_entrance],
                Tags::new()
                    .with("highway", "footway")
                    .with("name", format!("{} door", venue.name)),
            )
            .expect("entrance nodes exist");
        }
        debug_assert!(map.validate().is_ok());
        let _ = city;
        let server = MapServer::spawn(
            net,
            MapServerConfig {
                id: "central-omniscient".into(),
                map,
                beacons: Vec::new(),
                tags: TagRegistry::new(),
                policy: AccessPolicy::open(),
                portals: Vec::new(),
                location_hint: world.config.center,
                radius_m: city_radius(world),
                build_ch: false,
            },
        );
        Self {
            server,
            merged_nodes,
        }
    }

    /// The provider's frame (anchored at the city center).
    pub fn frame(&self, world: &World) -> LocalFrame {
        LocalFrame::new(world.config.center)
    }

    /// The merged node id for a venue-frame node, if this provider has
    /// it.
    pub fn merged_node(&self, venue: usize, node: NodeId) -> Option<NodeId> {
        self.merged_nodes.get(&(venue, node)).copied()
    }

    /// The anchor of the provider's map.
    pub fn anchor(&self) -> Option<LatLng> {
        self.server.with_map(|m| match m.georef() {
            GeoReference::Anchored { origin } => Some(origin),
            GeoReference::Unaligned { .. } => None,
        })
    }
}

/// Radius covering the whole generated city.
pub fn city_radius(world: &World) -> f64 {
    let w = world.config.blocks_x as f64 * world.config.block_m;
    let h = world.config.blocks_y as f64 * world.config.block_m;
    (w.hypot(h) / 2.0) * 1.2
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_mapserver::Principal;
    use openflame_worldgen::WorldConfig;

    #[test]
    fn public_provider_lacks_indoor_data() {
        let net = SimNet::new(3);
        let world = World::generate(WorldConfig::default());
        let public = CentralizedProvider::public_only(&net, &world);
        let product = &world.products[0];
        let hits = public
            .server
            .search(
                &Principal::anonymous(),
                &product.name,
                None,
                f64::INFINITY,
                5,
            )
            .unwrap();
        assert!(hits.is_empty(), "§2: centralized maps lack store inventory");
        // But it knows outdoor POIs.
        let poi = public
            .server
            .search(
                &Principal::anonymous(),
                "restaurant",
                None,
                f64::INFINITY,
                5,
            )
            .unwrap();
        assert!(!poi.is_empty());
    }

    #[test]
    fn omniscient_provider_finds_products_and_routes_to_them() {
        let net = SimNet::new(3);
        let world = World::generate(WorldConfig::default());
        let omni = CentralizedProvider::omniscient(&net, &world);
        let product = &world.products[0];
        let hits = omni
            .server
            .search(
                &Principal::anonymous(),
                &product.name,
                None,
                f64::INFINITY,
                5,
            )
            .unwrap();
        assert!(!hits.is_empty());
        // Door-to-shelf route exists in the merged graph.
        let merged_shelf = omni.merged_node(product.venue, product.shelf).unwrap();
        let outdoor_start = world.outdoor.nodes().next().unwrap().id;
        let route = omni
            .server
            .route(&Principal::anonymous(), outdoor_start, merged_shelf)
            .unwrap();
        assert!(
            route.is_some(),
            "omniscient graph must connect street to shelf"
        );
    }

    #[test]
    fn merged_positions_match_ground_truth() {
        let net = SimNet::new(3);
        let world = World::generate(WorldConfig::default());
        let omni = CentralizedProvider::omniscient(&net, &world);
        let product = &world.products[3];
        let merged = omni.merged_node(product.venue, product.shelf).unwrap();
        let merged_pos = omni.server.with_map(|m| m.node(merged).unwrap().pos);
        let truth_enu = world.venues[product.venue]
            .true_transform
            .apply(product.shelf_pos);
        assert!(merged_pos.distance(truth_enu) < 1e-9);
    }

    #[test]
    fn providers_are_anchored() {
        let net = SimNet::new(3);
        let world = World::generate(WorldConfig::default());
        assert!(CentralizedProvider::public_only(&net, &world)
            .anchor()
            .is_some());
        assert!(CentralizedProvider::omniscient(&net, &world)
            .anchor()
            .is_some());
    }
}
