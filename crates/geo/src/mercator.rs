//! Web-Mercator projection used by the tile pyramid.

use crate::{LatLng, Point2};

/// Maximum latitude representable in Web Mercator (±85.05113°).
pub const MAX_MERCATOR_LAT: f64 = 85.051_128_779_806_6;

/// The spherical Web-Mercator projection (EPSG:3857 normalized form).
///
/// World coordinates are normalized to the unit square `[0, 1]²` with the
/// origin at the northwest corner, matching slippy-map tile conventions:
/// at zoom `z` the world is a `2^z × 2^z` grid of tiles and tile `(x, y)`
/// spans `[x/2^z, (x+1)/2^z] × [y/2^z, (y+1)/2^z]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mercator;

impl Mercator {
    /// Projects a coordinate to the normalized unit square.
    ///
    /// Latitudes beyond [`MAX_MERCATOR_LAT`] are clamped, as every slippy
    /// map implementation does.
    pub fn project(p: LatLng) -> Point2 {
        let lat = p
            .lat()
            .clamp(-MAX_MERCATOR_LAT, MAX_MERCATOR_LAT)
            .to_radians();
        let x = (p.lng() + 180.0) / 360.0;
        let y = (1.0 - (lat.tan() + 1.0 / lat.cos()).ln() / std::f64::consts::PI) / 2.0;
        // Floating-point error at the clamped latitude can push y a hair
        // outside the unit square; keep the contract exact.
        Point2::new(x, y.clamp(0.0, 1.0))
    }

    /// Inverse projection from the normalized unit square.
    pub fn unproject(p: Point2) -> LatLng {
        let lng = p.x * 360.0 - 180.0;
        let n = std::f64::consts::PI * (1.0 - 2.0 * p.y);
        let lat = n.sinh().atan().to_degrees();
        LatLng::new_unchecked(lat, lng)
    }

    /// Tile coordinates containing `p` at zoom `z`.
    pub fn tile_for(p: LatLng, z: u8) -> (u32, u32) {
        let w = Self::project(p);
        let n = (1u64 << z) as f64;
        let tx = ((w.x * n) as i64).clamp(0, (1i64 << z) - 1) as u32;
        let ty = ((w.y * n) as i64).clamp(0, (1i64 << z) - 1) as u32;
        (tx, ty)
    }

    /// The geodetic bounds of tile `(x, y)` at zoom `z` as
    /// `(northwest, southeast)` corners.
    pub fn tile_bounds(x: u32, y: u32, z: u8) -> (LatLng, LatLng) {
        let n = (1u64 << z) as f64;
        let nw = Self::unproject(Point2::new(x as f64 / n, y as f64 / n));
        let se = Self::unproject(Point2::new((x + 1) as f64 / n, (y + 1) as f64 / n));
        (nw, se)
    }

    /// Meters per normalized-world unit at the given latitude (for
    /// converting pixel budgets to ground resolution).
    pub fn meters_per_world_unit(lat_deg: f64) -> f64 {
        2.0 * std::f64::consts::PI * crate::EARTH_RADIUS_M * lat_deg.to_radians().cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_projects_to_center() {
        let p = Mercator::project(LatLng::new(0.0, 0.0).unwrap());
        assert!((p.x - 0.5).abs() < 1e-12 && (p.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn round_trip() {
        for &(lat, lng) in &[(0.0, 0.0), (40.44, -79.94), (-33.86, 151.21), (80.0, 179.0)] {
            let p = LatLng::new(lat, lng).unwrap();
            let q = Mercator::unproject(Mercator::project(p));
            assert!(p.haversine_distance(q) < 0.01, "{p} vs {q}");
        }
    }

    #[test]
    fn clamps_polar_latitudes() {
        let p = Mercator::project(LatLng::new(89.9, 0.0).unwrap());
        assert!(p.y >= 0.0 && p.y <= 1.0);
        let q = Mercator::project(LatLng::new(-89.9, 0.0).unwrap());
        assert!(q.y >= 0.0 && q.y <= 1.0);
    }

    #[test]
    fn tile_for_known_values() {
        // Zoom 0: everything is tile (0, 0).
        assert_eq!(
            Mercator::tile_for(LatLng::new(40.0, -80.0).unwrap(), 0),
            (0, 0)
        );
        // Zoom 1: northwest quadrant is (0, 0).
        assert_eq!(
            Mercator::tile_for(LatLng::new(40.0, -80.0).unwrap(), 1),
            (0, 0)
        );
        assert_eq!(
            Mercator::tile_for(LatLng::new(40.0, 80.0).unwrap(), 1),
            (1, 0)
        );
        assert_eq!(
            Mercator::tile_for(LatLng::new(-40.0, -80.0).unwrap(), 1),
            (0, 1)
        );
        assert_eq!(
            Mercator::tile_for(LatLng::new(-40.0, 80.0).unwrap(), 1),
            (1, 1)
        );
    }

    #[test]
    fn tile_bounds_contain_point() {
        let p = LatLng::new(40.4433, -79.9436).unwrap();
        for z in [5u8, 10, 15] {
            let (x, y) = Mercator::tile_for(p, z);
            let (nw, se) = Mercator::tile_bounds(x, y, z);
            assert!(nw.lat() >= p.lat() && p.lat() >= se.lat(), "z{z} lat");
            assert!(nw.lng() <= p.lng() && p.lng() <= se.lng(), "z{z} lng");
        }
    }

    #[test]
    fn tile_bounds_tile_smaller_at_higher_zoom() {
        let p = LatLng::new(40.0, -80.0).unwrap();
        let (x1, y1) = Mercator::tile_for(p, 10);
        let (nw1, se1) = Mercator::tile_bounds(x1, y1, 10);
        let (x2, y2) = Mercator::tile_for(p, 14);
        let (nw2, se2) = Mercator::tile_bounds(x2, y2, 14);
        let h1 = nw1.lat() - se1.lat();
        let h2 = nw2.lat() - se2.lat();
        assert!(h2 < h1 / 8.0);
    }
}
