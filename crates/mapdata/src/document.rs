//! The map document: element storage, indices, and geo-referencing.

use crate::element::{ElementId, Member, Node, NodeId, Relation, RelationId, Way, WayId};
use crate::spatial::SpatialGrid;
use crate::{MapError, Tags};
use openflame_geo::{LatLng, LocalFrame, Point2};
use std::collections::BTreeMap;

/// How a document's local metric frame relates to geographic space.
///
/// This encodes the heterogeneity challenge from paper §3 of the paper: a
/// well-surveyed outdoor map knows its anchor exactly, while an indoor
/// map surveyed with consumer tools only knows *roughly* where it is
/// (e.g. from the street address), and its rotation/scale relative to
/// true north may be arbitrary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GeoReference {
    /// Precisely georeferenced: the document frame is the east-north-up
    /// tangent plane at `origin`.
    Anchored {
        /// Geodetic anchor of the frame origin.
        origin: LatLng,
    },
    /// Not aligned to the geographic frame. `hint` is a coarse location
    /// (like the building's street address) usable for discovery but not
    /// for geometry.
    Unaligned {
        /// Approximate location of the mapped space, if known.
        hint: Option<LatLng>,
    },
}

impl GeoReference {
    /// The geographic position of a local point, if the frame is
    /// anchored.
    pub fn to_geo(&self, p: Point2) -> Option<LatLng> {
        match self {
            GeoReference::Anchored { origin } => Some(LocalFrame::new(*origin).from_local(p)),
            GeoReference::Unaligned { .. } => None,
        }
    }

    /// The local position of a geographic point, if the frame is
    /// anchored.
    pub fn from_geo(&self, p: LatLng) -> Option<Point2> {
        match self {
            GeoReference::Anchored { origin } => Some(LocalFrame::new(*origin).to_local(p)),
            GeoReference::Unaligned { .. } => None,
        }
    }

    /// A coarse geographic location for discovery purposes: the anchor
    /// for anchored frames, the hint for unaligned ones.
    pub fn coarse_location(&self) -> Option<LatLng> {
        match self {
            GeoReference::Anchored { origin } => Some(*origin),
            GeoReference::Unaligned { hint } => *hint,
        }
    }
}

/// Document identity and provenance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MapMeta {
    /// Human-readable map name (e.g. `"Shadyside Grocery"`).
    pub name: String,
    /// Operator of the map server (e.g. `"grocer-co"`).
    pub provider: String,
    /// Monotonically increasing data version, bumped by patches.
    pub version: u64,
}

/// A complete map: elements plus indices.
///
/// # Examples
///
/// ```
/// use openflame_mapdata::{MapDocument, GeoReference, Tags};
/// use openflame_geo::{LatLng, Point2};
///
/// let mut map = MapDocument::new(
///     "demo", "tester",
///     GeoReference::Anchored { origin: LatLng::new(40.44, -79.94).unwrap() },
/// );
/// let a = map.add_node(Point2::new(0.0, 0.0), Tags::new().with("name", "corner"));
/// let b = map.add_node(Point2::new(100.0, 0.0), Tags::new());
/// let road = map.add_way(vec![a, b], Tags::new().with("highway", "residential")).unwrap();
/// assert!(map.validate().is_ok());
/// assert_eq!(map.way(road).unwrap().nodes.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct MapDocument {
    meta: MapMeta,
    georef: GeoReference,
    nodes: BTreeMap<NodeId, Node>,
    ways: BTreeMap<WayId, Way>,
    relations: BTreeMap<RelationId, Relation>,
    grid: SpatialGrid,
    next_id: u64,
}

/// Spatial-grid bucket size: indoor shelves cluster at meter scale,
/// city blocks at hundreds of meters; 25 m balances both.
const GRID_CELL_M: f64 = 25.0;

impl MapDocument {
    /// Creates an empty document.
    pub fn new(name: impl Into<String>, provider: impl Into<String>, georef: GeoReference) -> Self {
        Self {
            meta: MapMeta {
                name: name.into(),
                provider: provider.into(),
                version: 0,
            },
            georef,
            nodes: BTreeMap::new(),
            ways: BTreeMap::new(),
            relations: BTreeMap::new(),
            grid: SpatialGrid::new(GRID_CELL_M),
            next_id: 1,
        }
    }

    /// Document metadata.
    pub fn meta(&self) -> &MapMeta {
        &self.meta
    }

    /// Bumps the data version (called by patch application).
    pub fn bump_version(&mut self) {
        self.meta.version += 1;
    }

    /// The document's geo-reference.
    pub fn georef(&self) -> GeoReference {
        self.georef
    }

    /// Allocates a fresh element id number.
    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    // ---------------- nodes ----------------

    /// Adds a node with a fresh id; returns the id.
    pub fn add_node(&mut self, pos: Point2, tags: Tags) -> NodeId {
        let id = NodeId(self.alloc_id());
        self.insert_node(Node::new(id, pos, tags))
            .expect("fresh id cannot collide");
        id
    }

    /// Inserts a node with a caller-chosen id.
    pub fn insert_node(&mut self, node: Node) -> Result<(), MapError> {
        if self.nodes.contains_key(&node.id) {
            return Err(MapError::DuplicateId(ElementId::Node(node.id)));
        }
        self.next_id = self.next_id.max(node.id.0 + 1);
        self.grid.insert(node.id, node.pos);
        self.nodes.insert(node.id, node);
        Ok(())
    }

    /// Looks up a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(&id)
    }

    /// Replaces a node's tags.
    pub fn set_node_tags(&mut self, id: NodeId, tags: Tags) -> Result<(), MapError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(MapError::NotFound(ElementId::Node(id)))?;
        node.tags = tags;
        Ok(())
    }

    /// Moves a node to a new position, keeping the index consistent.
    pub fn move_node(&mut self, id: NodeId, pos: Point2) -> Result<(), MapError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(MapError::NotFound(ElementId::Node(id)))?;
        self.grid.update(id, node.pos, pos);
        node.pos = pos;
        Ok(())
    }

    /// Removes a node. Fails if any way still references it.
    pub fn remove_node(&mut self, id: NodeId) -> Result<Node, MapError> {
        if let Some(way) = self.ways.values().find(|w| w.nodes.contains(&id)) {
            return Err(MapError::MissingReference {
                referrer: ElementId::Way(way.id),
                referee: ElementId::Node(id),
            });
        }
        let node = self
            .nodes
            .remove(&id)
            .ok_or(MapError::NotFound(ElementId::Node(id)))?;
        self.grid.remove(id, node.pos);
        Ok(node)
    }

    /// Iterates all nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    // ---------------- ways ----------------

    /// Adds a way over existing nodes with a fresh id.
    pub fn add_way(&mut self, nodes: Vec<NodeId>, tags: Tags) -> Result<WayId, MapError> {
        let id = WayId(self.alloc_id());
        self.insert_way(Way::new(id, nodes, tags))?;
        Ok(id)
    }

    /// Inserts a way with a caller-chosen id, validating node references.
    pub fn insert_way(&mut self, way: Way) -> Result<(), MapError> {
        if self.ways.contains_key(&way.id) {
            return Err(MapError::DuplicateId(ElementId::Way(way.id)));
        }
        if way.nodes.len() < 2 {
            return Err(MapError::DegenerateWay(way.id));
        }
        for n in &way.nodes {
            if !self.nodes.contains_key(n) {
                return Err(MapError::MissingReference {
                    referrer: ElementId::Way(way.id),
                    referee: ElementId::Node(*n),
                });
            }
        }
        self.next_id = self.next_id.max(way.id.0 + 1);
        self.ways.insert(way.id, way);
        Ok(())
    }

    /// Looks up a way.
    pub fn way(&self, id: WayId) -> Option<&Way> {
        self.ways.get(&id)
    }

    /// Removes a way. Fails if a relation still references it.
    pub fn remove_way(&mut self, id: WayId) -> Result<Way, MapError> {
        let referenced = self
            .relations
            .values()
            .find(|r| r.members.iter().any(|m| m.element == ElementId::Way(id)));
        if let Some(rel) = referenced {
            return Err(MapError::MissingReference {
                referrer: ElementId::Relation(rel.id),
                referee: ElementId::Way(id),
            });
        }
        self.ways
            .remove(&id)
            .ok_or(MapError::NotFound(ElementId::Way(id)))
    }

    /// Iterates all ways in id order.
    pub fn ways(&self) -> impl Iterator<Item = &Way> {
        self.ways.values()
    }

    /// Number of ways.
    pub fn way_count(&self) -> usize {
        self.ways.len()
    }

    /// The positions of a way's nodes, in order.
    pub fn way_geometry(&self, id: WayId) -> Option<Vec<Point2>> {
        let way = self.ways.get(&id)?;
        way.nodes
            .iter()
            .map(|n| self.nodes.get(n).map(|node| node.pos))
            .collect()
    }

    // ---------------- relations ----------------

    /// Adds a relation with a fresh id, validating member references.
    pub fn add_relation(
        &mut self,
        members: Vec<Member>,
        tags: Tags,
    ) -> Result<RelationId, MapError> {
        let id = RelationId(self.alloc_id());
        self.insert_relation(Relation::new(id, members, tags))?;
        Ok(id)
    }

    /// Inserts a relation with a caller-chosen id.
    pub fn insert_relation(&mut self, rel: Relation) -> Result<(), MapError> {
        if self.relations.contains_key(&rel.id) {
            return Err(MapError::DuplicateId(ElementId::Relation(rel.id)));
        }
        for m in &rel.members {
            if !self.element_exists(m.element) && m.element != ElementId::Relation(rel.id) {
                return Err(MapError::MissingReference {
                    referrer: ElementId::Relation(rel.id),
                    referee: m.element,
                });
            }
        }
        self.next_id = self.next_id.max(rel.id.0 + 1);
        self.relations.insert(rel.id, rel);
        Ok(())
    }

    /// Looks up a relation.
    pub fn relation(&self, id: RelationId) -> Option<&Relation> {
        self.relations.get(&id)
    }

    /// Removes a relation.
    pub fn remove_relation(&mut self, id: RelationId) -> Result<Relation, MapError> {
        self.relations
            .remove(&id)
            .ok_or(MapError::NotFound(ElementId::Relation(id)))
    }

    /// Iterates all relations in id order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    // ---------------- queries ----------------

    /// Whether an element exists.
    pub fn element_exists(&self, id: ElementId) -> bool {
        match id {
            ElementId::Node(n) => self.nodes.contains_key(&n),
            ElementId::Way(w) => self.ways.contains_key(&w),
            ElementId::Relation(r) => self.relations.contains_key(&r),
        }
    }

    /// The tags of any element.
    pub fn element_tags(&self, id: ElementId) -> Option<&Tags> {
        match id {
            ElementId::Node(n) => self.nodes.get(&n).map(|e| &e.tags),
            ElementId::Way(w) => self.ways.get(&w).map(|e| &e.tags),
            ElementId::Relation(r) => self.relations.get(&r).map(|e| &e.tags),
        }
    }

    /// Nodes within `radius` meters of `center` (document frame).
    pub fn nodes_within(&self, center: Point2, radius: f64) -> Vec<&Node> {
        self.grid
            .within_radius(center, radius)
            .into_iter()
            .filter_map(|(id, _)| self.nodes.get(&id))
            .collect()
    }

    /// The node nearest to `center`, if any.
    pub fn nearest_node(&self, center: Point2) -> Option<(&Node, f64)> {
        let (id, _, d) = self.grid.nearest(center)?;
        self.nodes.get(&id).map(|n| (n, d))
    }

    /// Local-frame bounds of all node positions as `(min, max)`.
    pub fn local_bounds(&self) -> Option<(Point2, Point2)> {
        let mut iter = self.nodes.values();
        let first = iter.next()?.pos;
        let mut min = first;
        let mut max = first;
        for n in iter {
            min.x = min.x.min(n.pos.x);
            min.y = min.y.min(n.pos.y);
            max.x = max.x.max(n.pos.x);
            max.y = max.y.max(n.pos.y);
        }
        Some((min, max))
    }

    /// Full referential-integrity check, for use after bulk edits and in
    /// tests. Incremental mutators already maintain these invariants.
    pub fn validate(&self) -> Result<(), MapError> {
        for way in self.ways.values() {
            if way.nodes.len() < 2 {
                return Err(MapError::DegenerateWay(way.id));
            }
            for n in &way.nodes {
                if !self.nodes.contains_key(n) {
                    return Err(MapError::MissingReference {
                        referrer: ElementId::Way(way.id),
                        referee: ElementId::Node(*n),
                    });
                }
            }
        }
        for rel in self.relations.values() {
            for m in &rel.members {
                if !self.element_exists(m.element) {
                    return Err(MapError::MissingReference {
                        referrer: ElementId::Relation(rel.id),
                        referee: m.element,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchored() -> GeoReference {
        GeoReference::Anchored {
            origin: LatLng::new(40.4433, -79.9436).unwrap(),
        }
    }

    fn sample_map() -> MapDocument {
        let mut m = MapDocument::new("test", "tester", anchored());
        let a = m.add_node(Point2::new(0.0, 0.0), Tags::new().with("name", "A"));
        let b = m.add_node(Point2::new(100.0, 0.0), Tags::new());
        let c = m.add_node(Point2::new(100.0, 100.0), Tags::new());
        m.add_way(vec![a, b, c], Tags::new().with("highway", "residential"))
            .unwrap();
        m
    }

    #[test]
    fn fresh_ids_are_unique() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::ZERO, Tags::new());
        let b = m.add_node(Point2::ZERO, Tags::new());
        assert_ne!(a, b);
    }

    #[test]
    fn insert_duplicate_node_rejected() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::ZERO, Tags::new());
        let dup = Node::new(a, Point2::ZERO, Tags::new());
        assert!(matches!(m.insert_node(dup), Err(MapError::DuplicateId(_))));
    }

    #[test]
    fn way_requires_existing_nodes() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::ZERO, Tags::new());
        let err = m.add_way(vec![a, NodeId(999)], Tags::new()).unwrap_err();
        assert!(matches!(err, MapError::MissingReference { .. }));
    }

    #[test]
    fn way_requires_two_nodes() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::ZERO, Tags::new());
        assert!(matches!(
            m.add_way(vec![a], Tags::new()),
            Err(MapError::DegenerateWay(_))
        ));
    }

    #[test]
    fn cannot_remove_referenced_node() {
        let mut m = sample_map();
        let first_node = m.nodes().next().unwrap().id;
        assert!(matches!(
            m.remove_node(first_node),
            Err(MapError::MissingReference { .. })
        ));
    }

    #[test]
    fn remove_unreferenced_node_updates_index() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::new(5.0, 5.0), Tags::new());
        assert_eq!(m.nodes_within(Point2::new(5.0, 5.0), 1.0).len(), 1);
        m.remove_node(a).unwrap();
        assert!(m.nodes_within(Point2::new(5.0, 5.0), 1.0).is_empty());
        assert!(matches!(m.remove_node(a), Err(MapError::NotFound(_))));
    }

    #[test]
    fn move_node_updates_index() {
        let mut m = MapDocument::new("t", "t", anchored());
        let a = m.add_node(Point2::ZERO, Tags::new());
        m.move_node(a, Point2::new(500.0, 0.0)).unwrap();
        assert!(m.nodes_within(Point2::ZERO, 10.0).is_empty());
        assert_eq!(m.nodes_within(Point2::new(500.0, 0.0), 1.0).len(), 1);
        assert_eq!(m.node(a).unwrap().pos, Point2::new(500.0, 0.0));
    }

    #[test]
    fn relation_member_validation() {
        let mut m = sample_map();
        let way_id = m.ways().next().unwrap().id;
        let rel = m
            .add_relation(
                vec![Member::new(ElementId::Way(way_id), "route")],
                Tags::new().with("type", "route"),
            )
            .unwrap();
        assert_eq!(m.relation(rel).unwrap().members.len(), 1);
        // Missing member rejected.
        let err = m
            .add_relation(
                vec![Member::new(ElementId::Node(NodeId(12345)), "x")],
                Tags::new(),
            )
            .unwrap_err();
        assert!(matches!(err, MapError::MissingReference { .. }));
    }

    #[test]
    fn cannot_remove_way_in_relation() {
        let mut m = sample_map();
        let way_id = m.ways().next().unwrap().id;
        m.add_relation(
            vec![Member::new(ElementId::Way(way_id), "route")],
            Tags::new(),
        )
        .unwrap();
        assert!(matches!(
            m.remove_way(way_id),
            Err(MapError::MissingReference { .. })
        ));
    }

    #[test]
    fn georef_round_trip() {
        let g = anchored();
        let p = Point2::new(250.0, -100.0);
        let geo = g.to_geo(p).unwrap();
        let back = g.from_geo(geo).unwrap();
        assert!(p.distance(back) < 1e-3);
        let un = GeoReference::Unaligned { hint: None };
        assert!(un.to_geo(p).is_none());
        assert!(un.from_geo(geo).is_none());
    }

    #[test]
    fn coarse_location_fallbacks() {
        assert!(anchored().coarse_location().is_some());
        let hint = LatLng::new(1.0, 2.0).unwrap();
        assert_eq!(
            GeoReference::Unaligned { hint: Some(hint) }.coarse_location(),
            Some(hint)
        );
        assert_eq!(
            GeoReference::Unaligned { hint: None }.coarse_location(),
            None
        );
    }

    #[test]
    fn local_bounds_cover_nodes() {
        let m = sample_map();
        let (min, max) = m.local_bounds().unwrap();
        assert_eq!(min, Point2::new(0.0, 0.0));
        assert_eq!(max, Point2::new(100.0, 100.0));
        let empty = MapDocument::new("e", "e", anchored());
        assert!(empty.local_bounds().is_none());
    }

    #[test]
    fn way_geometry_in_order() {
        let m = sample_map();
        let way_id = m.ways().next().unwrap().id;
        let geom = m.way_geometry(way_id).unwrap();
        assert_eq!(geom.len(), 3);
        assert_eq!(geom[0], Point2::new(0.0, 0.0));
        assert_eq!(geom[2], Point2::new(100.0, 100.0));
    }

    #[test]
    fn nearest_node_query() {
        let m = sample_map();
        let (n, d) = m.nearest_node(Point2::new(98.0, 1.0)).unwrap();
        assert_eq!(n.pos, Point2::new(100.0, 0.0));
        assert!((d - (5.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn validate_passes_on_consistent_map() {
        assert!(sample_map().validate().is_ok());
    }

    #[test]
    fn element_tags_lookup() {
        let m = sample_map();
        let node_id = m.nodes().next().unwrap().id;
        assert_eq!(
            m.element_tags(ElementId::Node(node_id))
                .unwrap()
                .get("name"),
            Some("A")
        );
        assert!(m.element_tags(ElementId::Node(NodeId(777))).is_none());
    }

    #[test]
    fn insert_with_explicit_id_advances_allocator() {
        let mut m = MapDocument::new("t", "t", anchored());
        m.insert_node(Node::new(NodeId(100), Point2::ZERO, Tags::new()))
            .unwrap();
        let next = m.add_node(Point2::ZERO, Tags::new());
        assert!(next.0 > 100, "allocator must skip past explicit ids");
    }
}
