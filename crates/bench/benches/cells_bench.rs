//! Criterion micro-benches for the spatial cell index (backs E3/E11).

use criterion::{criterion_group, criterion_main, Criterion};
use openflame_cells::{geohash, CellId, Region, RegionCoverer};
use openflame_geo::LatLng;
use std::time::Duration;

fn bench_cells(c: &mut Criterion) {
    let p = LatLng::new(40.4433, -79.9436).unwrap();
    let mut group = c.benchmark_group("cells");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("from_latlng_L14", |b| {
        b.iter(|| CellId::from_latlng(std::hint::black_box(p), 14).unwrap())
    });
    let cell = CellId::from_latlng(p, 14).unwrap();
    group.bench_function("cell_center", |b| {
        b.iter(|| std::hint::black_box(cell).center())
    });
    group.bench_function("dns_labels_L14", |b| {
        b.iter(|| std::hint::black_box(cell).dns_labels())
    });
    group.bench_function("edge_neighbors_L14", |b| {
        b.iter(|| std::hint::black_box(cell).edge_neighbors())
    });
    group.bench_function("token_round_trip", |b| {
        b.iter(|| CellId::from_token(&std::hint::black_box(cell).to_token()).unwrap())
    });
    let region = Region::Cap {
        center: p,
        radius_m: 500.0,
    };
    let coverer = RegionCoverer::new(8, 16, 64);
    group.bench_function("covering_cap_500m", |b| {
        b.iter(|| coverer.covering(&region))
    });
    group.bench_function("geohash_encode_len8", |b| {
        b.iter(|| geohash::encode(std::hint::black_box(p), 8).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cells);
criterion_main!(benches);
