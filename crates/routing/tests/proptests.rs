//! Property-based routing correctness: all engines agree on cost.

use openflame_geo::Point2;
use openflame_mapdata::{GeoReference, MapDocument, NodeId, Tags};
use openflame_routing::{
    astar, bidirectional, dijkstra, ContractionHierarchy, Profile, RoadGraph, RouteError,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random footway map from a seed: points on a bounded plane
/// connected by random segments plus a spanning chain (so most pairs
/// are connected).
fn random_graph(seed: u64, n: usize, extra_edges: usize) -> (RoadGraph, Vec<NodeId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = MapDocument::new("prop", "t", GeoReference::Unaligned { hint: None });
    let ids: Vec<NodeId> = (0..n)
        .map(|_| {
            map.add_node(
                Point2::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)),
                Tags::new(),
            )
        })
        .collect();
    map.add_way(ids.clone(), Tags::new().with("highway", "footway"))
        .unwrap();
    for _ in 0..extra_edges {
        let a = ids[rng.gen_range(0..n)];
        let b = ids[rng.gen_range(0..n)];
        if a != b {
            map.add_way(vec![a, b], Tags::new().with("highway", "footway"))
                .unwrap();
        }
    }
    (RoadGraph::from_map(&map, Profile::Walking), ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_engines_agree(seed in any::<u64>(), n in 8usize..60, extra in 0usize..80) {
        let (g, ids) = random_graph(seed, n, extra);
        let ch = ContractionHierarchy::build(&g);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..6 {
            let s = ids[rng.gen_range(0..ids.len())];
            let t = ids[rng.gen_range(0..ids.len())];
            let d = dijkstra(&g, s, t);
            let b = bidirectional(&g, s, t);
            let a = astar(&g, s, t);
            let c = ch.query(s, t);
            match d {
                Ok(ref dr) => {
                    let bc = b.as_ref().expect("bidir must find a path").cost;
                    let ac = a.as_ref().expect("astar must find a path").cost;
                    let cc = c.as_ref().expect("ch must find a path").cost;
                    prop_assert!((dr.cost - bc).abs() < 1e-6, "bidir {} vs {}", bc, dr.cost);
                    prop_assert!((dr.cost - ac).abs() < 1e-6, "astar {} vs {}", ac, dr.cost);
                    prop_assert!((dr.cost - cc).abs() < 1e-6, "ch {} vs {}", cc, dr.cost);
                }
                Err(RouteError::NoPath) => {
                    prop_assert!(matches!(b, Err(RouteError::NoPath)));
                    prop_assert!(matches!(a, Err(RouteError::NoPath)));
                    prop_assert!(matches!(c, Err(RouteError::NoPath)));
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn routes_are_contiguous_valid_paths(seed in any::<u64>(), n in 8usize..40) {
        let (g, ids) = random_graph(seed, n, n);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let s = ids[rng.gen_range(0..ids.len())];
        let t = ids[rng.gen_range(0..ids.len())];
        if let Ok(route) = dijkstra(&g, s, t) {
            prop_assert_eq!(route.nodes.first(), Some(&s));
            prop_assert_eq!(route.nodes.last(), Some(&t));
            let mut cost = 0.0;
            for w in route.nodes.windows(2) {
                let ia = g.index_of(w[0]).unwrap();
                let ib = g.index_of(w[1]).unwrap();
                let edge = g.out_edges(ia).iter().find(|e| e.to == ib);
                prop_assert!(edge.is_some(), "missing edge {:?}->{:?}", w[0], w[1]);
                cost += edge.unwrap().weight;
            }
            prop_assert!((cost - route.cost).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_obeys_triangle_inequality(seed in any::<u64>()) {
        let (g, ids) = random_graph(seed, 30, 40);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let a = ids[rng.gen_range(0..ids.len())];
        let b = ids[rng.gen_range(0..ids.len())];
        let c = ids[rng.gen_range(0..ids.len())];
        if let (Ok(ab), Ok(bc), Ok(ac)) =
            (dijkstra(&g, a, b), dijkstra(&g, b, c), dijkstra(&g, a, c))
        {
            prop_assert!(ac.cost <= ab.cost + bc.cost + 1e-6);
        }
    }
}
