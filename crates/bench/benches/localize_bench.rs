//! Criterion micro-benches for localization primitives (backs E6).

use criterion::{criterion_group, criterion_main, Criterion};
use openflame_geo::Point2;
use openflame_localize::{Beacon, Estimate, ParticleFilter, RadioMap};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_localize(c: &mut Criterion) {
    let beacons: Vec<Beacon> = (0..8)
        .map(|i| Beacon {
            id: i,
            pos: Point2::new((i % 4) as f64 * 13.0, (i / 4) as f64 * 11.0),
            tx_power_dbm: -40.0,
        })
        .collect();
    let radio = RadioMap::survey(beacons.clone(), Point2::ZERO, Point2::new(40.0, 25.0), 2.0);
    let mut rng = StdRng::seed_from_u64(6);
    let cue = radio.observe(&mut rng, Point2::new(17.0, 9.0), 2.0);
    let mut group = c.benchmark_group("localize");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("radiomap_survey_40x25", |b| {
        b.iter(|| RadioMap::survey(beacons.clone(), Point2::ZERO, Point2::new(40.0, 25.0), 2.0))
    });
    group.bench_function("fingerprint_knn", |b| b.iter(|| radio.localize(&cue, 4)));
    let mut pf = ParticleFilter::new(&mut rng, 500, Point2::new(17.0, 9.0), 2.0);
    let est = Estimate {
        pos: Point2::new(17.5, 9.0),
        error_m: 2.0,
        technology: "beacon".into(),
    };
    group.bench_function("particle_filter_step_500p", |b| {
        b.iter(|| {
            pf.predict(&mut rng, Point2::new(0.5, 0.0), 0.3);
            pf.update(&mut rng, &est);
            pf.mean()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_localize);
criterion_main!(benches);
