//! Property-based tests for the cell index.

use openflame_cells::cellid::{hilbert_d_to_xy, hilbert_xy_to_d, normalize_cells};
use openflame_cells::{geohash, CellId, Region, RegionCoverer};
use openflame_geo::LatLng;
use proptest::prelude::*;

fn arb_latlng() -> impl Strategy<Value = LatLng> {
    (-80.0f64..80.0, -179.0f64..179.0).prop_map(|(lat, lng)| LatLng::new(lat, lng).unwrap())
}

proptest! {
    #[test]
    fn cell_contains_its_generating_point(p in arb_latlng(), level in 0u8..=24) {
        let c = CellId::from_latlng(p, level).unwrap();
        prop_assert_eq!(c.level(), level);
        prop_assert!(c.contains_point(p));
    }

    #[test]
    fn ancestors_contain_descendants(p in arb_latlng(), level in 1u8..=24, up in 1u8..=10) {
        let c = CellId::from_latlng(p, level).unwrap();
        let anc_level = level.saturating_sub(up);
        let anc = c.parent_at(anc_level).unwrap();
        prop_assert!(anc.contains(c));
        prop_assert!(anc.contains_point(p));
        // The ancestor computed directly from the point is the same cell.
        prop_assert_eq!(anc, CellId::from_latlng(p, anc_level).unwrap());
    }

    #[test]
    fn hilbert_round_trip(level in 0u8..=16, seed in any::<u64>()) {
        let n = 1u64 << level;
        let i = (seed % n) as u32;
        let j = ((seed >> 32) % n) as u32;
        let d = hilbert_xy_to_d(level, i, j);
        prop_assert!(d < 1u64 << (2 * level));
        prop_assert_eq!(hilbert_d_to_xy(level, d), (i, j));
    }

    #[test]
    fn token_round_trip(p in arb_latlng(), level in 0u8..=30) {
        let c = CellId::from_latlng(p, level).unwrap();
        prop_assert_eq!(CellId::from_token(&c.to_token()).unwrap(), c);
    }

    #[test]
    fn dns_label_round_trip(p in arb_latlng(), level in 0u8..=20) {
        let c = CellId::from_latlng(p, level).unwrap();
        let labels = c.dns_labels();
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        prop_assert_eq!(CellId::from_dns_labels(&refs).unwrap(), c);
    }

    #[test]
    fn raw_round_trip(p in arb_latlng(), level in 0u8..=30) {
        let c = CellId::from_latlng(p, level).unwrap();
        prop_assert_eq!(CellId::from_raw(c.raw()).unwrap(), c);
    }

    #[test]
    fn normalized_sets_have_no_containment(
        pts in proptest::collection::vec((arb_latlng(), 2u8..14), 1..24),
    ) {
        let cells: Vec<CellId> = pts
            .into_iter()
            .map(|(p, l)| CellId::from_latlng(p, l).unwrap())
            .collect();
        let norm = normalize_cells(cells.clone());
        // Sorted, unique, no cell contains another.
        for w in norm.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(!w[0].contains(w[1]) && !w[1].contains(w[0]));
        }
        // Every input cell is covered by some output cell.
        for c in cells {
            prop_assert!(norm.iter().any(|n| n.contains(c)));
        }
    }

    #[test]
    fn covering_covers_sampled_points(
        center in arb_latlng(),
        radius in 50.0f64..5_000.0,
        bearing in 0.0f64..360.0,
        frac in 0.0f64..0.98,
    ) {
        let region = Region::Cap { center, radius_m: radius };
        let cells = RegionCoverer::new(6, 16, 64).covering(&region);
        let p = center.destination(bearing, radius * frac);
        prop_assert!(
            cells.iter().any(|c| c.contains_point(p)),
            "point {} uncovered ({} cells)", p, cells.len()
        );
    }

    #[test]
    fn geohash_round_trip(p in arb_latlng(), len in 1usize..=12) {
        let h = geohash::encode(p, len).unwrap();
        prop_assert_eq!(h.len(), len);
        prop_assert!(geohash::decode_bbox(&h).unwrap().contains(p));
    }

    #[test]
    fn geohash_prefix_nesting(p in arb_latlng(), len in 2usize..=12) {
        let h = geohash::encode(p, len).unwrap();
        let shorter: String = h.chars().take(len - 1).collect();
        let outer = geohash::decode_bbox(&shorter).unwrap();
        let inner = geohash::decode_bbox(&h).unwrap();
        prop_assert!(outer.contains_bbox(&inner));
    }
}
