//! Criterion micro-benches for rasterization and stitching (backs E7's
//! throughput table).

use criterion::{criterion_group, criterion_main, Criterion};
use openflame_geo::Mercator;
use openflame_tiles::stitch::compose;
use openflame_tiles::{Tile, TileCoord, TileRenderer};
use openflame_worldgen::{World, WorldConfig};
use std::time::Duration;

fn bench_tiles(c: &mut Criterion) {
    let world = World::generate(WorldConfig::default());
    let renderer = TileRenderer::new(&world.outdoor).unwrap();
    let (x, y) = Mercator::tile_for(world.config.center, 16);
    let mut group = c.benchmark_group("tiles");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("render_z16_cold", |b| {
        let mut n = 0u32;
        b.iter(|| {
            // Vary the coordinate to dodge the cache.
            n = n.wrapping_add(1);
            let fresh = TileRenderer::new(&world.outdoor).unwrap();
            fresh.tile(TileCoord { z: 16, x, y })
        })
    });
    group.bench_function("render_z16_cached", |b| {
        b.iter(|| renderer.tile(TileCoord { z: 16, x, y }))
    });
    let a = Tile::blank(TileCoord { z: 16, x, y });
    let tile_b = renderer.tile(TileCoord { z: 16, x, y });
    group.bench_function("compose_2_layers", |b| b.iter(|| compose(&[&a, &tile_b])));
    group.bench_function("to_ppm", |b| b.iter(|| tile_b.to_ppm()));
    group.finish();
}

criterion_group!(benches, bench_tiles);
criterion_main!(benches);
