//! Fleet parity: the replicated + sharded serving fleet behaves
//! identically over the deterministic network simulator, real loopback
//! TCP sockets, and QuicLite reliable datagrams.
//!
//! Four claims are enforced here:
//!
//! 1. **Wire-count parity** — an identical fleet workload (cold and
//!    warm searches against a replicated, content-sharded deployment)
//!    costs identical message counts on every backend. Replica
//!    selection is p2c over live latency, yet the *count* never
//!    depends on which replica was picked: one envelope per consulted
//!    shard.
//! 2. **Shard-aware scatter** — a spatially narrow warm search sends
//!    envelopes only to shards whose extent intersects the query cap:
//!    wire cost scales with shards consulted, not fleet size, and is
//!    independent of the replication factor.
//! 3. **Transparent failover** — a downed replica is absorbed: the
//!    scatter retries the branch on a sibling replica (search is
//!    idempotent, `docs/wire-protocol.md` spec §7), the caller sees a clean
//!    success, and provenance names the replica that actually
//!    answered.
//! 4. **Honest shard outage** — when *every* replica of a shard is
//!    down, the search surfaces `ClientError::PartialFailure` with the
//!    branch's source error preserved: a down shard must never read as
//!    "no results here".

use openflame_core::{ClientError, Deployment, DeploymentConfig};
use openflame_netsim::BackendKind;
use openflame_worldgen::{World, WorldConfig};
use std::error::Error;

const BACKENDS: [BackendKind; 3] = [BackendKind::Sim, BackendKind::Tcp, BackendKind::QuicLite];

/// Shards per venue in every fleet deployment below.
const SHARDS: usize = 4;

fn small_world() -> World {
    World::generate(WorldConfig {
        stores: 4,
        products_per_store: 10,
        ..WorldConfig::default()
    })
}

fn fleet_deployment_on(backend: BackendKind, replicas: usize, world: World) -> Deployment {
    Deployment::build(
        world,
        DeploymentConfig {
            backend,
            replicas,
            content_shards: SHARDS,
            ..DeploymentConfig::default()
        },
    )
}

/// Fleet workload cost on one backend: (cold messages, warm messages,
/// narrow-warm messages, fleet targets consulted by the narrow plan).
fn fleet_search_cost(backend: BackendKind, replicas: usize) -> (u64, u64, u64, usize) {
    let dep = fleet_deployment_on(backend, replicas, small_world());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    let shelf_geo = dep
        .world
        .venue_point_to_geo(product.venue, product.shelf_pos);

    dep.transport.reset_stats();
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let cold = dep.transport.stats().messages;

    dep.transport.reset_stats();
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let warm = dep.transport.stats().messages;

    // Narrow warm search: only shards whose extent intersects the tiny
    // cap around the shelf are consulted.
    let plan = dep.client.plan_scatter(shelf_geo, 5.0).unwrap();
    let fleet_targets = plan
        .iter()
        .filter(|s| s.server_id.starts_with("venue-"))
        .count();
    dep.transport.reset_stats();
    let hits = dep
        .client
        .federated_search_within(&product.name, shelf_geo, 5.0, 3)
        .unwrap();
    let narrow = dep.transport.stats().messages;
    assert!(
        hits.iter().any(|h| h.result.label == product.name),
        "{backend:?}: narrow search must still find the product"
    );
    assert_eq!(
        narrow,
        2 * plan.len() as u64,
        "{backend:?}: warm wire cost is one envelope (two messages) per planned target"
    );
    (cold, warm, narrow, fleet_targets)
}

#[test]
fn fleet_workload_costs_identical_messages_on_every_backend() {
    let (sim_cold, sim_warm, sim_narrow, sim_targets) = fleet_search_cost(BackendKind::Sim, 2);
    // Pinned invariant: a narrow query at one shelf consults strictly
    // fewer shards than the venue's shard count — wire cost scales
    // with shards intersected, not fleet size.
    assert!(
        (1..SHARDS).contains(&sim_targets),
        "narrow plan must consult some but not all {SHARDS} shards, got {sim_targets}"
    );
    assert!(sim_narrow < sim_warm, "pruned scatter costs less");
    for backend in [BackendKind::Tcp, BackendKind::QuicLite] {
        let (cold, warm, narrow, targets) = fleet_search_cost(backend, 2);
        assert_eq!(cold, sim_cold, "{backend:?}: cold fleet search parity");
        assert_eq!(warm, sim_warm, "{backend:?}: warm fleet search parity");
        assert_eq!(narrow, sim_narrow, "{backend:?}: narrow search parity");
        assert_eq!(targets, sim_targets, "{backend:?}: plan parity");
    }
}

#[test]
fn warm_wire_cost_is_independent_of_replication_factor() {
    // Same world, same shard count, different replication: the warm
    // and narrow-warm message counts must not move — only ONE replica
    // per consulted shard is ever spoken to.
    let (_, warm_r2, narrow_r2, targets_r2) = fleet_search_cost(BackendKind::Sim, 2);
    let (_, warm_r3, narrow_r3, targets_r3) = fleet_search_cost(BackendKind::Sim, 3);
    assert_eq!(warm_r2, warm_r3, "replication must not inflate wire cost");
    assert_eq!(narrow_r2, narrow_r3);
    assert_eq!(targets_r2, targets_r3);
}

#[test]
fn downed_replica_is_transparently_absorbed_on_every_backend() {
    for backend in BACKENDS {
        let dep = fleet_deployment_on(backend, 2, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        let hit = dep
            .client
            .federated_search(&product.name, near, 3)
            .unwrap()
            .into_iter()
            .find(|h| h.result.label == product.name)
            .expect("product is stocked");
        let serving = dep
            .fleet_servers
            .iter()
            .find(|m| m.server.id() == hit.server_id)
            .expect("hit came from a fleet member");
        let (venue, shard) = (serving.venue, serving.shard);
        // The replica that served the hit dies; the client's caches
        // and latency book still prefer it.
        dep.transport.set_down(serving.server.endpoint(), true);
        let hits = dep
            .client
            .federated_search(&product.name, near, 3)
            .expect("a downed replica must be absorbed, not surfaced");
        let retried = hits
            .iter()
            .find(|h| h.result.label == product.name)
            .expect("failover must preserve the result");
        assert_ne!(
            retried.server_id, hit.server_id,
            "{backend:?}: provenance must name the sibling that answered"
        );
        let sibling = dep
            .fleet_servers
            .iter()
            .find(|m| m.server.id() == retried.server_id)
            .expect("sibling is a fleet member");
        assert_eq!(
            (sibling.venue, sibling.shard),
            (venue, shard),
            "{backend:?}: the answer must come from the SAME shard's sibling replica"
        );
        // Steady state after failover: the dead replica is
        // dead-listed, so the next search needs no retry round.
        assert!(dep.client.federated_search(&product.name, near, 3).is_ok());
    }
}

#[test]
fn fully_down_shard_surfaces_partial_failure_on_every_backend() {
    for backend in BACKENDS {
        let dep = fleet_deployment_on(backend, 2, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        let hit = dep
            .client
            .federated_search(&product.name, near, 3)
            .unwrap()
            .into_iter()
            .find(|h| h.result.label == product.name)
            .expect("product is stocked");
        let serving = dep
            .fleet_servers
            .iter()
            .find(|m| m.server.id() == hit.server_id)
            .expect("hit came from a fleet member");
        let (venue, shard) = (serving.venue, serving.shard);
        // The WHOLE shard dies: every replica.
        for m in dep
            .fleet_servers
            .iter()
            .filter(|m| m.venue == venue && m.shard == shard)
        {
            dep.transport.set_down(m.server.endpoint(), true);
        }
        let err = dep
            .client
            .federated_search(&product.name, near, 3)
            .expect_err("a fully-down shard must not read as an empty result");
        let ClientError::PartialFailure {
            succeeded,
            ref failures,
        } = err
        else {
            panic!("{backend:?}: expected PartialFailure, got {err}");
        };
        assert!(
            succeeded >= 1,
            "{backend:?}: the rest of the federation still answered"
        );
        assert!(!failures.is_empty(), "{backend:?}");
        assert!(
            err.source().is_some(),
            "{backend:?}: source chain must be preserved"
        );
        assert!(
            failures.iter().all(|(_, e)| e.to_string().contains("down")),
            "{backend:?}: branch errors must name the dead endpoint"
        );
    }
}
