//! Property-based tests for localization primitives.

use openflame_geo::Point2;
use openflame_localize::cues::LocationCue;
use openflame_localize::{Beacon, Estimate, ParticleFilter, RadioMap, TagRegistry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn store_beacons() -> Vec<Beacon> {
    vec![
        Beacon {
            id: 1,
            pos: Point2::new(0.0, 0.0),
            tx_power_dbm: -40.0,
        },
        Beacon {
            id: 2,
            pos: Point2::new(40.0, 0.0),
            tx_power_dbm: -40.0,
        },
        Beacon {
            id: 3,
            pos: Point2::new(0.0, 30.0),
            tx_power_dbm: -40.0,
        },
        Beacon {
            id: 4,
            pos: Point2::new(40.0, 30.0),
            tx_power_dbm: -40.0,
        },
    ]
}

proptest! {
    #[test]
    fn fingerprint_estimate_stays_in_surveyed_area(
        x in 0.0f64..40.0,
        y in 0.0f64..30.0,
        noise in 0.1f64..6.0,
        seed in any::<u64>(),
    ) {
        let rm = RadioMap::survey(store_beacons(), Point2::ZERO, Point2::new(40.0, 30.0), 2.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let cue = rm.observe(&mut rng, Point2::new(x, y), noise);
        if let Some(est) = rm.localize(&cue, 4) {
            prop_assert!(est.pos.x >= -1.0 && est.pos.x <= 41.0);
            prop_assert!(est.pos.y >= -1.0 && est.pos.y <= 31.0);
            prop_assert!(est.error_m >= 1.0, "error estimate at least half the grid step");
        }
    }

    #[test]
    fn localization_error_bounded_under_low_noise(
        x in 2.0f64..38.0,
        y in 2.0f64..28.0,
        seed in any::<u64>(),
    ) {
        let rm = RadioMap::survey(store_beacons(), Point2::ZERO, Point2::new(40.0, 30.0), 2.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let cue = rm.observe(&mut rng, Point2::new(x, y), 0.5);
        let est = rm.localize(&cue, 4).expect("low noise always localizes");
        let err = est.pos.distance(Point2::new(x, y));
        prop_assert!(err < 6.0, "err {} at ({}, {})", err, x, y);
    }

    #[test]
    fn particle_filter_mean_within_particle_hull(
        px in -50.0f64..50.0,
        py in -50.0f64..50.0,
        spread in 0.5f64..10.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pf = ParticleFilter::new(&mut rng, 200, Point2::new(px, py), spread);
        let mean = pf.mean();
        // The mean of a cloud centered at (px, py) stays near it.
        prop_assert!(mean.distance(Point2::new(px, py)) < spread * 4.0 + 1.0);
        prop_assert!(pf.spread() < spread * 4.0 + 1.0);
    }

    #[test]
    fn repeated_updates_converge_anywhere(
        tx in -100.0f64..100.0,
        ty in -100.0f64..100.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pf = ParticleFilter::new(&mut rng, 300, Point2::ZERO, 30.0);
        let est = Estimate { pos: Point2::new(tx, ty), error_m: 2.0, technology: "t".into() };
        // A bootstrap filter can only travel via process noise, so give
        // it enough steps (and realistic pedestrian process noise) to
        // reach targets up to ~2 sigma outside the initial cloud.
        for _ in 0..30 {
            pf.predict(&mut rng, Point2::ZERO, 1.0);
            pf.update(&mut rng, &est);
        }
        prop_assert!(pf.mean().distance(est.pos) < 3.0);
    }

    #[test]
    fn tag_registry_lookup_total(ids in proptest::collection::vec(any::<u64>(), 1..30)) {
        let mut reg = TagRegistry::new();
        for (i, id) in ids.iter().enumerate() {
            reg.install(*id, Point2::new(i as f64, 0.0));
        }
        for id in &ids {
            // prop_assert! stringifies its expression into a format
            // string, so struct-literal braces must stay outside it.
            let cue = LocationCue::FiducialTag { tag_id: *id };
            let found = reg.localize(&cue).is_some();
            prop_assert!(found);
        }
        // Unknown ids (outside the set) return None.
        let unknown = ids.iter().max().unwrap().wrapping_add(1);
        if !ids.contains(&unknown) {
            let cue = LocationCue::FiducialTag { tag_id: unknown };
            let missing = reg.localize(&cue).is_none();
            prop_assert!(missing);
        }
    }
}
