//! The tile pixel grid.

/// Edge length of a tile in pixels.
pub const TILE_SIZE: usize = 256;

/// Background color (treated as transparent when composing).
pub const BACKGROUND: u32 = 0xFFF2_EFE9;

/// Slippy-map tile coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileCoord {
    /// Zoom level.
    pub z: u8,
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

/// A rendered square tile of ARGB pixels (0xAARRGGBB).
#[derive(Debug, Clone, PartialEq)]
pub struct Tile {
    /// The tile address.
    pub coord: TileCoord,
    pixels: Vec<u32>,
}

impl Tile {
    /// A blank (background-colored) tile.
    pub fn blank(coord: TileCoord) -> Self {
        Self {
            coord,
            pixels: vec![BACKGROUND; TILE_SIZE * TILE_SIZE],
        }
    }

    /// Pixel at `(x, y)`; out-of-bounds reads return the background.
    pub fn get(&self, x: i64, y: i64) -> u32 {
        if x < 0 || y < 0 || x >= TILE_SIZE as i64 || y >= TILE_SIZE as i64 {
            return BACKGROUND;
        }
        self.pixels[y as usize * TILE_SIZE + x as usize]
    }

    /// Sets pixel `(x, y)` if in bounds.
    pub fn set(&mut self, x: i64, y: i64, color: u32) {
        if x >= 0 && y >= 0 && x < TILE_SIZE as i64 && y < TILE_SIZE as i64 {
            self.pixels[y as usize * TILE_SIZE + x as usize] = color;
        }
    }

    /// Raw pixel access.
    pub fn pixels(&self) -> &[u32] {
        &self.pixels
    }

    /// Fraction of pixels that differ from the background.
    pub fn coverage(&self) -> f64 {
        let painted = self.pixels.iter().filter(|&&p| p != BACKGROUND).count();
        painted as f64 / self.pixels.len() as f64
    }

    /// Serializes as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{TILE_SIZE} {TILE_SIZE}\n255\n").into_bytes();
        for &px in &self.pixels {
            out.push((px >> 16) as u8);
            out.push((px >> 8) as u8);
            out.push(px as u8);
        }
        out
    }

    /// Approximate byte size on the wire (uncompressed pixels).
    pub fn byte_size(&self) -> usize {
        self.pixels.len() * 3
    }

    /// Rebuilds a tile from raw RGB bytes (the wire form used by
    /// `GetTile` responses). Returns `None` on size mismatch.
    pub fn from_rgb(coord: TileCoord, rgb: &[u8]) -> Option<Self> {
        if rgb.len() != TILE_SIZE * TILE_SIZE * 3 {
            return None;
        }
        let mut pixels = Vec::with_capacity(TILE_SIZE * TILE_SIZE);
        for px in rgb.chunks_exact(3) {
            pixels.push(0xFF00_0000 | (px[0] as u32) << 16 | (px[1] as u32) << 8 | px[2] as u32);
        }
        Some(Self { coord, pixels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_tile_is_background() {
        let t = Tile::blank(TileCoord { z: 3, x: 1, y: 2 });
        assert_eq!(t.coverage(), 0.0);
        assert_eq!(t.get(0, 0), BACKGROUND);
        assert_eq!(t.get(255, 255), BACKGROUND);
    }

    #[test]
    fn set_get_round_trip() {
        let mut t = Tile::blank(TileCoord { z: 0, x: 0, y: 0 });
        t.set(10, 20, 0xFF00FF00);
        assert_eq!(t.get(10, 20), 0xFF00FF00);
        assert!(t.coverage() > 0.0);
    }

    #[test]
    fn out_of_bounds_safe() {
        let mut t = Tile::blank(TileCoord { z: 0, x: 0, y: 0 });
        t.set(-1, 0, 0xFFFFFFFF);
        t.set(0, 99999, 0xFFFFFFFF);
        assert_eq!(t.get(-1, 0), BACKGROUND);
        assert_eq!(t.get(0, 99999), BACKGROUND);
        assert_eq!(t.coverage(), 0.0);
    }

    #[test]
    fn ppm_header_and_size() {
        let t = Tile::blank(TileCoord { z: 0, x: 0, y: 0 });
        let ppm = t.to_ppm();
        assert!(ppm.starts_with(b"P6\n256 256\n255\n"));
        assert_eq!(ppm.len(), 15 + 256 * 256 * 3);
    }
}
