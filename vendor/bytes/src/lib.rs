//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API subset the workspace actually uses:
//! [`Bytes`], [`BytesMut`] and the [`BufMut`] put-methods. Buffers are
//! plain `Vec<u8>`-backed; `freeze` shares the allocation behind an
//! `Arc` so clones are cheap, matching the real crate's semantics where
//! it matters for this codebase.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append-style write operations (subset of the real trait).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u32_le(2);
        b.put_u64_le(3);
        b.put_slice(&[4, 5]);
        assert_eq!(b.len(), 1 + 4 + 8 + 2);
        let frozen = b.freeze();
        assert_eq!(frozen[0], 1);
        assert_eq!(frozen.to_vec().len(), 15);
        let clone = frozen.clone();
        assert_eq!(clone, frozen);
    }
}
