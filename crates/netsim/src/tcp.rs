//! Real-socket transport: multiplexed, pipelined envelopes over
//! loopback TCP, driven by a shared reactor pool.
//!
//! [`TcpTransport`] implements [`Transport`] over `std::net`, proving
//! the whole federated stack — DNS discovery, batched sessions, map
//! servers — runs end to end over actual sockets, not just the
//! simulator:
//!
//! - **Shared reactors**: all socket I/O — client and served sides
//!   both — runs on a small fixed pool of event-loop threads (default
//!   `min(cores, 8)`, overridable via [`TcpTransport::with_reactors`])
//!   multiplexing non-blocking sockets with `poll(2)` readiness. Each
//!   reactor owns a slab of connections: it drains bounded
//!   per-connection write buffers on writability, runs non-blocking
//!   reads through the incremental framing-v2 decoder
//!   ([`openflame_codec::framing::FrameDecoder`] — partial frames
//!   across arbitrary split boundaries are the normal case), and
//!   demultiplexes responses by correlation id. Thread count is
//!   O(reactor pool + dispatch pool) — **independent of servers,
//!   connections, fan-out width and call volume**; the pipelining
//!   stress test pins this down at 128 servers × 8 sessions.
//! - **Served endpoints** bind a `127.0.0.1:0` listener registered
//!   with a reactor; accepted connections are spread across the pool.
//!   Decoded requests go to a transport-wide dispatch pool of
//!   [`DISPATCH_POOL`] workers which invoke the bound [`WireService`]
//!   concurrently; completed responses return to the connection's
//!   reactor, which emits frames in **completion order** with the
//!   request's correlation id echoed — a slow request head-of-line
//!   blocks only its own completion, never the pipelined requests
//!   behind it. Each connection holds at most [`SERVE_PIPELINE`]
//!   decoded requests in dispatch; past that the reactor drops the
//!   connection's read interest (readiness-deregistration
//!   backpressure) until responses drain — bounded buffering without
//!   a blocked reader thread.
//! - **Admission control**: a served endpoint with an
//!   [`OverloadPolicy`] installed counts requests queued-or-executing
//!   in dispatch across all its connections and answers excess
//!   arrivals with the policy's busy payload instead of dispatching
//!   them — bounded by `max_depth` endpoint-wide and by
//!   [`OverloadPolicy::principal_cap`] per principal, so one hot
//!   principal is shed first and cannot starve the endpoint. Shed
//!   replies bypass the dispatch pool entirely; the shed request is
//!   never executed, which is what makes client retries safe.
//! - **Multiplexed connections**: one pooled connection carries many
//!   in-flight requests at once; out-of-order completion is matched
//!   by correlation id. A scatter over 64 servers reuses the same 64
//!   warm connections round after round on the same handful of
//!   reactor threads.
//! - **Submit/completion**: [`Transport::submit`] encodes the frame,
//!   appends it to the connection's write queue, wakes the owning
//!   reactor and returns a [`CallHandle`] immediately — it never
//!   blocks on a dial (connects are non-blocking too; N cold dials to
//!   N servers proceed concurrently). Waiting on the handle parks on
//!   a completion cell the reactor fills. Bounded fan-out falls out
//!   of the pool: at most [`POOL_CAP`] connections per destination,
//!   each pipelining up to [`PIPELINE_DEPTH`] requests before another
//!   connection is dialed; beyond that, requests queue on the
//!   least-loaded connection.
//! - **Failure injection** mirrors the simulator: a down endpoint
//!   fails with [`NetError::EndpointDown`] and its server side cuts
//!   the connection instead of answering; message drops surface as
//!   [`NetError::Timeout`].
//!
//! Clocks are wall-clock microseconds since transport creation, so the
//! TTL caches built on [`Transport::now_us`] age in real time. Traffic
//! counters are charged on the waiting side when a completion is
//! claimed and include the frame header; raw sockets poking a listener
//! from outside this transport are served but not counted. A call
//! whose request frame was **written** charges its request bytes even
//! when the call then fails or times out — the bytes were really spent
//! on the wire, and per-endpoint counters must not under-report
//! traffic under failure injection (the single stale-connection retry
//! charges both transmissions). Calls that never reach a socket
//! (drop-injected, endpoint down, queued behind a dead dial) charge
//! nothing; the simulator charges per hop — so cross-backend stats
//! parity (identical message counts for identical workloads) holds for
//! failure-free runs, and under injected loss the counters reflect
//! each backend's own semantics.
//!
//! A response whose correlation id matches no in-flight request (for
//! example, one that arrives after its waiter timed out) is discarded
//! and counted in [`TcpTransport::orphan_responses`]; it never
//! completes a different call. Worker threads are detached but bounded
//! and observable via [`TcpTransport::worker_threads`]: the reactor
//! pool plus the dispatch pool, nothing per connection, endpoint or
//! call. Dropping the last transport handle wakes every reactor; each
//! exits, closing its listeners (releasing their ports) and
//! connections and dropping its service handles, which unwinds the
//! dispatch pool. This backend is built for tests, benches and
//! single-process demos, not as a hardened production server.

use crate::reactor::{connect_nonblocking, poll_fds, PollFd, Waker, POLLIN, POLLOUT};
use crate::stats::{EndpointLatency, EndpointStats, NetStats};
use crate::transport::{
    CallHandle, DispatchGauge, OverloadPolicy, PendingCall, Transfer, Transport, WireService,
};
use crate::{EndpointId, NetError, ThreadGuard};
use openflame_codec::framing::{write_frame, FrameDecoder, FRAME_HEADER_LEN};
use openflame_diag::{ranks, OrderedCondvar, OrderedMutex};
use openflame_geo::LatLng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Pipelined connections kept per destination endpoint.
pub const POOL_CAP: usize = 4;

/// In-flight requests a connection absorbs before the pool dials
/// another one (further requests queue on the least-loaded connection
/// — the bounded-fan-out knob).
pub const PIPELINE_DEPTH: usize = 32;

/// Concurrent dispatch workers for the whole transport: decoded
/// frames from every served connection of every endpoint are executed
/// by this many threads. A fixed transport-wide pool (not per
/// endpoint) is what keeps the thread ceiling O(cores)-ish no matter
/// how many endpoints serve.
pub const DISPATCH_POOL: usize = 8;

/// Decoded requests one server connection may hold in dispatch at once
/// (queued for a worker, executing, or awaiting its response write)
/// before its reactor drops the connection's read interest — the
/// server-side bounded-queue mirror of the client's
/// [`PIPELINE_DEPTH`], expressed as readiness-deregistration instead
/// of a blocked reader thread.
pub const SERVE_PIPELINE: usize = PIPELINE_DEPTH;

/// Hard cap on the reactor pool (the default is
/// `min(available cores, MAX_REACTORS)`).
pub const MAX_REACTORS: usize = 8;

fn default_reactor_count() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_REACTORS)
}

// ---------------------------------------------------------------------
// Completion plumbing.
// ---------------------------------------------------------------------

/// A completed call's payload-or-error, plus the context the retry
/// policy needs.
struct CellDone {
    result: io::Result<Vec<u8>>,
    /// Whether this request was the only one in flight on its
    /// connection when the outcome landed. A connection-death failure
    /// is only retried when true: with siblings pipelined behind it,
    /// the server may have processed any of them before the cut, and
    /// re-sending would duplicate non-idempotent work.
    sole_in_flight: bool,
}

/// One in-flight request's completion slot, filled exactly once by a
/// reactor (or by the timeout path abandoning it).
///
/// Uses the crate-wide ranked wrappers (`openflame-diag`): the cell is
/// the innermost lock a reactor touches while routing a response.
struct CompletionCell {
    state: OrderedMutex<Option<CellDone>>,
    cond: OrderedCondvar,
    /// Set by the reactor the moment it starts putting the request
    /// frame on the socket. Failed calls whose frame was written still
    /// charge their request bytes — the bytes were really spent on the
    /// wire (see [`TcpTransport::charge_tx`]).
    sent: AtomicBool,
}

impl CompletionCell {
    fn new() -> Self {
        Self {
            state: OrderedMutex::new(ranks::TCP_COMPLETION, None),
            cond: OrderedCondvar::new(),
            sent: AtomicBool::new(false),
        }
    }

    fn was_sent(&self) -> bool {
        self.sent.load(Ordering::SeqCst)
    }

    fn fill(&self, result: io::Result<Vec<u8>>, sole_in_flight: bool) {
        let mut state = self.state.lock();
        if state.is_none() {
            *state = Some(CellDone {
                result,
                sole_in_flight,
            });
            self.cond.notify_all();
        }
    }

    /// Blocks until filled or `deadline`; `None` means the deadline
    /// passed first.
    fn wait_until(&self, deadline: Instant) -> Option<CellDone> {
        let mut state = self.state.lock();
        loop {
            if state.is_some() {
                return state.take();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self.cond.wait_timeout(state, deadline - now);
            state = next;
        }
    }
}

/// A connection's demultiplexer: correlation id → completion cell.
/// Shared between the submitting side and the connection's reactor.
struct Demux {
    pending: OrderedMutex<HashMap<u64, Arc<CompletionCell>>>,
    /// Responses successfully delivered on this connection, ever. The
    /// retry policy compares snapshots of this: a delivery after a
    /// request was submitted proves the server was alive and
    /// processing past that point, so a subsequent connection death no
    /// longer proves the request untouched.
    delivered: AtomicU64,
    /// Transport-wide count of discarded responses (unknown or
    /// already-completed correlation ids).
    orphans: Arc<AtomicU64>,
}

impl Demux {
    fn new(orphans: Arc<AtomicU64>) -> Self {
        Self {
            pending: OrderedMutex::new(ranks::TCP_DEMUX, HashMap::new()),
            delivered: AtomicU64::new(0),
            orphans,
        }
    }

    fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::SeqCst)
    }

    fn register(&self, corr: u64) -> Arc<CompletionCell> {
        let cell = Arc::new(CompletionCell::new());
        self.pending.lock().insert(corr, cell.clone());
        cell
    }

    /// Routes a response to its waiter. A correlation id that matches
    /// no in-flight request — never issued, already completed
    /// (duplicate), or abandoned by a timed-out waiter — is discarded
    /// and counted, never delivered to a different call.
    fn complete(&self, corr: u64, result: io::Result<Vec<u8>>) {
        let (cell, sole) = {
            let mut pending = self.pending.lock();
            let cell = pending.remove(&corr);
            (cell, pending.is_empty())
        };
        match cell {
            Some(cell) => {
                if result.is_ok() {
                    self.delivered.fetch_add(1, Ordering::SeqCst);
                }
                cell.fill(result, sole);
            }
            None => {
                self.orphans.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fails every in-flight request (the connection died). Each cell
    /// learns whether it was alone in flight — the retry policy's
    /// safety condition.
    fn fail_all(&self, kind: io::ErrorKind, msg: &str) {
        let cells: Vec<_> = self.pending.lock().drain().map(|(_, cell)| cell).collect();
        let sole = cells.len() == 1;
        for cell in cells {
            cell.fill(Err(io::Error::new(kind, msg.to_string())), sole);
        }
    }

    /// Marks a request's frame as on its way onto the socket (the
    /// reactor calls this immediately before the first write), so
    /// failure paths know whether the request bytes were spent.
    fn mark_sent(&self, corr: u64) {
        if let Some(cell) = self.pending.lock().get(&corr) {
            cell.sent.store(true, Ordering::SeqCst);
        }
    }

    /// Abandons a request (timed-out waiter, racing submitter); a late
    /// response becomes an orphan. Returns whether the slot was still
    /// pending.
    fn forget(&self, corr: u64) -> bool {
        self.pending.lock().remove(&corr).is_some()
    }

    fn in_flight(&self) -> usize {
        self.pending.lock().len()
    }
}

// ---------------------------------------------------------------------
// Client connections.
// ---------------------------------------------------------------------

/// One encoded frame waiting in (or part-way through) a connection's
/// write queue.
struct OutFrame {
    corr: u64,
    buf: Vec<u8>,
    off: usize,
}

#[derive(Default)]
struct OutQueue {
    /// Set by the reactor when the connection dies: enqueue attempts
    /// fail fast instead of queueing frames nobody will ever write.
    closed: bool,
    frames: VecDeque<OutFrame>,
}

/// One pooled, pipelined client connection. The socket itself lives in
/// the owning reactor's slab; submitters only touch the write queue
/// and the demux.
struct ClientConn {
    addr: SocketAddr,
    demux: Arc<Demux>,
    /// Set when the connection dies or goes stale; broken connections
    /// are pruned from the pool on the next checkout and closed by
    /// their reactor once drained.
    broken: Arc<AtomicBool>,
    /// Set by `set_down`: the reactor cuts the connection immediately,
    /// failing whatever is in flight (a crashed server does not drain
    /// gracefully).
    kill: AtomicBool,
    out: OrderedMutex<OutQueue>,
    /// The reactor that owns the socket — woken on every enqueue.
    reactor: Arc<ReactorShared>,
}

impl ClientConn {
    /// Queues a frame for the reactor; `Err` when the connection is
    /// already closed (so the caller can re-route without re-sending
    /// anything — the frame never touched the socket).
    fn enqueue(&self, frame: OutFrame) -> Result<(), ()> {
        {
            let mut out = self.out.lock();
            if out.closed {
                return Err(());
            }
            out.frames.push_back(frame);
        }
        self.reactor.waker.wake();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Reactor pool.
// ---------------------------------------------------------------------

/// Registration commands handed to a reactor from other threads.
enum Cmd {
    /// Adopt a freshly dialed client connection (socket may still be
    /// mid-handshake).
    Client {
        conn: Arc<ClientConn>,
        stream: TcpStream,
    },
    /// Adopt a served endpoint's listener.
    Listener {
        listener: TcpListener,
        me: u64,
        down: Arc<AtomicBool>,
        service: Arc<dyn WireService>,
        dispatch: mpsc::Sender<ServeJob>,
        gauge: Arc<DispatchGauge>,
        shed: Arc<AtomicU64>,
    },
    /// Adopt an accepted server-side connection.
    Served {
        stream: TcpStream,
        me: u64,
        down: Arc<AtomicBool>,
        service: Arc<dyn WireService>,
        dispatch: mpsc::Sender<ServeJob>,
        shared: Arc<SrvShared>,
        gauge: Arc<DispatchGauge>,
        shed: Arc<AtomicU64>,
    },
}

/// The cross-thread face of one reactor: a command queue plus the
/// waker that pops its `poll`.
struct ReactorShared {
    cmds: OrderedMutex<Vec<Cmd>>,
    waker: Waker,
}

impl ReactorShared {
    fn push(&self, cmd: Cmd) {
        self.cmds.lock().push(cmd);
        self.waker.wake();
    }

    fn take_cmds(&self) -> Vec<Cmd> {
        std::mem::take(&mut *self.cmds.lock())
    }
}

struct ReactorPool {
    handles: Vec<Arc<ReactorShared>>,
    next: AtomicUsize,
}

impl ReactorPool {
    /// Round-robin assignment of new sockets across the pool.
    fn pick(&self) -> Arc<ReactorShared> {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.handles.len();
        self.handles[i].clone()
    }

    fn wake_all(&self) {
        for handle in &self.handles {
            handle.waker.wake();
        }
    }
}

// ---------------------------------------------------------------------
// Transport state.
// ---------------------------------------------------------------------

struct Endpoint {
    name: String,
    /// Listener address once the endpoint serves; `None` for clients.
    addr: Option<SocketAddr>,
    /// Shared with the endpoint's server-side connections: when set,
    /// they cut instead of answering.
    down: Arc<AtomicBool>,
    stats: EndpointStats,
    latency: EndpointLatency,
    /// Pooled pipelined connections *to* this endpoint.
    conns: Vec<Arc<ClientConn>>,
    /// Admission book for the endpoint's serve path (policy, live
    /// dispatch depth, per-principal split); shared with every served
    /// connection and with the dispatch workers.
    gauge: Arc<DispatchGauge>,
}

struct Inner {
    epoch: Instant,
    next_id: AtomicU64,
    next_corr: AtomicU64,
    timeout_us: AtomicU64,
    /// Drop probability as IEEE-754 bits (atomics hold no f64).
    drop_bits: AtomicU64,
    rng: OrderedMutex<StdRng>,
    stats: OrderedMutex<NetStats>,
    endpoints: OrderedMutex<HashMap<EndpointId, Endpoint>>,
    /// Configured reactor pool size (threads spawn lazily on first
    /// dial or `set_service`).
    reactor_count: usize,
    reactors: OrderedMutex<Option<Arc<ReactorPool>>>,
    /// Master sender of the transport-wide dispatch pool.
    dispatch: OrderedMutex<Option<mpsc::Sender<ServeJob>>>,
    /// Live worker threads: reactors plus dispatch workers.
    threads: Arc<AtomicUsize>,
    /// Responses discarded because no in-flight request matched.
    orphans: Arc<AtomicU64>,
    /// Requests shed by admission control, transport-wide.
    shed: Arc<AtomicU64>,
    /// Set when the last transport handle drops; reactors exit on
    /// their next wakeup, releasing listeners, sockets and services.
    shutdown: Arc<AtomicBool>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake every reactor so it observes the flag now: each exits,
        // dropping its listeners (releasing their ports), its
        // connections and its service/dispatch handles — which in turn
        // unwinds the dispatch pool once our master sender below goes
        // too. No connect-storm, no per-endpoint walk: teardown cost
        // is O(reactors) regardless of how many endpoints served.
        if let Some(pool) = self.reactors.get_mut().take() {
            pool.wake_all();
        }
    }
}

/// [`Transport`] over real loopback TCP sockets (see module docs).
///
/// Cheap to clone (shared handle), and usually passed around as
/// `Arc<dyn Transport>` via [`TcpTransport::shared`].
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<Inner>,
}

impl TcpTransport {
    /// Creates a transport with the default reactor pool
    /// (`min(cores, MAX_REACTORS)`). `seed` drives the drop-injection
    /// RNG.
    pub fn new(seed: u64) -> Self {
        Self::with_reactors(seed, default_reactor_count())
    }

    /// Creates a transport with an explicit reactor-pool size
    /// (clamped to `1..=MAX_REACTORS`).
    pub fn with_reactors(seed: u64, reactors: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                next_corr: AtomicU64::new(1),
                timeout_us: AtomicU64::new(2_000_000),
                drop_bits: AtomicU64::new(0f64.to_bits()),
                rng: OrderedMutex::new(ranks::TCP_RNG, StdRng::seed_from_u64(seed)),
                stats: OrderedMutex::new(ranks::TCP_STATS, NetStats::default()),
                endpoints: OrderedMutex::new(ranks::TCP_ENDPOINTS, HashMap::new()),
                reactor_count: reactors.clamp(1, MAX_REACTORS),
                reactors: OrderedMutex::new(ranks::TCP_REACTORS, None),
                dispatch: OrderedMutex::new(ranks::TCP_DISPATCH_POOL, None),
                threads: Arc::new(AtomicUsize::new(0)),
                orphans: Arc::new(AtomicU64::new(0)),
                shed: Arc::new(AtomicU64::new(0)),
                shutdown: Arc::new(AtomicBool::new(false)),
            }),
        }
    }

    /// Creates a transport as a shared `Arc<dyn Transport>`.
    pub fn shared(seed: u64) -> Arc<dyn Transport> {
        Arc::new(Self::new(seed))
    }

    /// The socket address an endpoint listens on, if it serves.
    pub fn listen_addr(&self, id: EndpointId) -> Option<SocketAddr> {
        self.inner.endpoints.lock().get(&id).and_then(|e| e.addr)
    }

    /// Live worker threads: the reactor pool plus the shared dispatch
    /// pool. Bounded by [`TcpTransport::reactor_threads`] `+`
    /// [`DISPATCH_POOL`] — **not** by endpoints, connections, fan-out
    /// width or call volume; the pipelining stress test pins this
    /// down.
    pub fn worker_threads(&self) -> usize {
        self.inner.threads.load(Ordering::SeqCst)
    }

    /// Configured reactor-pool size (the event-loop thread budget).
    pub fn reactor_threads(&self) -> usize {
        self.inner.reactor_count
    }

    /// Responses discarded because their correlation id matched no
    /// in-flight request (late responses after a timeout, duplicates).
    pub fn orphan_responses(&self) -> u64 {
        self.inner.orphans.load(Ordering::Relaxed)
    }

    /// Pooled connections currently held toward `to` (test hook).
    #[cfg(test)]
    fn pooled_conns(&self, to: EndpointId) -> usize {
        self.inner
            .endpoints
            .lock()
            .get(&to)
            .map(|e| e.conns.len())
            .unwrap_or(0)
    }

    fn timeout(&self) -> Duration {
        Duration::from_micros(self.inner.timeout_us.load(Ordering::Relaxed).max(1_000))
    }

    /// The lazily spawned reactor pool.
    fn reactor_pool(&self) -> Arc<ReactorPool> {
        let mut slot = self.inner.reactors.lock();
        if let Some(pool) = slot.as_ref() {
            return pool.clone();
        }
        let handles: Vec<Arc<ReactorShared>> = (0..self.inner.reactor_count)
            .map(|_| {
                Arc::new(ReactorShared {
                    cmds: OrderedMutex::new(ranks::TCP_REACTOR_CMDS, Vec::new()),
                    waker: Waker::new().expect("create reactor waker"),
                })
            })
            .collect();
        let pool = Arc::new(ReactorPool {
            handles,
            next: AtomicUsize::new(0),
        });
        for idx in 0..self.inner.reactor_count {
            let guard = ThreadGuard::enter(&self.inner.threads);
            let pool = pool.clone();
            let shutdown = self.inner.shutdown.clone();
            thread::Builder::new()
                .name(format!("ofl-tcp-reactor-{idx}"))
                .spawn(move || {
                    let _guard = guard;
                    run_reactor(idx, pool, shutdown);
                })
                .expect("spawn reactor");
        }
        *slot = Some(pool.clone());
        pool
    }

    /// The lazily spawned transport-wide dispatch pool's job sender.
    fn dispatch_sender(&self) -> mpsc::Sender<ServeJob> {
        let mut slot = self.inner.dispatch.lock();
        if let Some(tx) = slot.as_ref() {
            return tx.clone();
        }
        let tx = spawn_dispatch_pool(&self.inner.threads);
        *slot = Some(tx.clone());
        tx
    }

    /// Wakes every reactor (no-op before the pool exists) so state
    /// changes made outside the event loop — timeout pruning,
    /// `set_down` kills — are noticed now, not at the next I/O event.
    fn wake_reactors(&self) {
        if let Some(pool) = self.inner.reactors.lock().as_ref() {
            pool.wake_all();
        }
    }

    /// Creates a connection toward `addr`: the socket starts a
    /// non-blocking connect and is handed to a reactor mid-handshake —
    /// `submit` never blocks on a dial, frames queue behind the
    /// in-progress handshake, and N cold dials to N servers proceed
    /// concurrently. A failed handshake fails every queued and
    /// subsequently raced-in request through the demux.
    fn dial(&self, addr: SocketAddr) -> Arc<ClientConn> {
        let pool = self.reactor_pool();
        let target = pool.pick();
        let conn = Arc::new(ClientConn {
            addr,
            demux: Arc::new(Demux::new(self.inner.orphans.clone())),
            broken: Arc::new(AtomicBool::new(false)),
            kill: AtomicBool::new(false),
            out: OrderedMutex::new(ranks::TCP_CONN_OUT, OutQueue::default()),
            reactor: target.clone(),
        });
        match connect_nonblocking(&addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                target.push(Cmd::Client {
                    conn: conn.clone(),
                    stream,
                });
            }
            Err(e) => {
                // Synchronous dial failure (fd exhaustion, bad addr):
                // the connection is born dead; submit's closed-queue
                // check routes around it.
                conn.broken.store(true, Ordering::SeqCst);
                conn.out.lock().closed = true;
                conn.demux.fail_all(e.kind(), &format!("dial {addr}: {e}"));
            }
        }
        conn
    }

    /// Checks out a connection toward `to`: the least-loaded pooled one
    /// when its pipeline has room (or the pool is full), a fresh dial
    /// otherwise. Returns whether the connection pre-existed (only
    /// those are eligible for the stale-retry).
    fn obtain_conn(
        &self,
        to: EndpointId,
        addr: SocketAddr,
        force_fresh: bool,
    ) -> (Arc<ClientConn>, bool) {
        if !force_fresh {
            let mut endpoints = self.inner.endpoints.lock();
            if let Some(ep) = endpoints.get_mut(&to) {
                ep.conns.retain(|c| !c.broken.load(Ordering::SeqCst));
                if let Some(best) = ep.conns.iter().min_by_key(|c| c.demux.in_flight()).cloned() {
                    if best.demux.in_flight() < PIPELINE_DEPTH || ep.conns.len() >= POOL_CAP {
                        return (best, true);
                    }
                }
            }
        }
        let conn = self.dial(addr);
        let mut endpoints = self.inner.endpoints.lock();
        if let Some(ep) = endpoints.get_mut(&to) {
            // Make room before the cap check: broken connections must
            // not squat pool slots and force fresh dials unpooled.
            ep.conns.retain(|c| !c.broken.load(Ordering::SeqCst));
            if ep.conns.len() < POOL_CAP {
                ep.conns.push(conn.clone());
            }
        }
        (conn, false)
    }

    fn submit_inner(
        &self,
        from: EndpointId,
        to: EndpointId,
        payload: Vec<u8>,
        force_fresh: bool,
    ) -> Result<TcpPending, NetError> {
        let (addr, down) = {
            let endpoints = self.inner.endpoints.lock();
            let ep = endpoints.get(&to).ok_or(NetError::NoSuchEndpoint(to))?;
            (ep.addr, ep.down.clone())
        };
        let addr = addr.ok_or(NetError::NoSuchEndpoint(to))?;
        if down.load(Ordering::Relaxed) {
            return Err(NetError::EndpointDown(to));
        }
        if !force_fresh {
            let drop_p = f64::from_bits(self.inner.drop_bits.load(Ordering::Relaxed));
            if drop_p > 0.0 && self.inner.rng.lock().gen_bool(drop_p) {
                self.inner.stats.lock().drops += 1;
                return Err(NetError::Timeout);
            }
        }
        let (conn, reused) = self.obtain_conn(to, addr, force_fresh);
        let corr = self.inner.next_corr.fetch_add(1, Ordering::Relaxed);
        // Encode up front (the reactor writes raw buffers); the
        // payload stays owned here for the retry paths.
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        write_frame(&mut buf, from.0, corr, &payload)
            .map_err(|e| NetError::Connection(format!("encode frame: {e}")))?;
        let cell = conn.demux.register(corr);
        let delivered_at_submit = conn.demux.delivered();
        let bytes_sent = payload.len() as u64;
        if conn.enqueue(OutFrame { corr, buf, off: 0 }).is_err() {
            // Connection already closed: prune and, once, try a fresh
            // dial. The frame never left this process, so re-routing
            // it cannot duplicate work.
            conn.broken.store(true, Ordering::SeqCst);
            conn.demux.forget(corr);
            if !force_fresh {
                return self.submit_inner(from, to, payload, true);
            }
            return Err(NetError::Connection("connection closed before send".into()));
        }
        if conn.broken.load(Ordering::SeqCst) && conn.demux.forget(corr) {
            // The connection died while we were enqueueing and its
            // failure sweep may have run before our registration —
            // nobody would ever fill this cell, stalling the waiter to
            // its deadline. Re-route on a fresh dial when this was a
            // pooled reuse; otherwise fail fast.
            if !force_fresh && reused {
                return self.submit_inner(from, to, payload, true);
            }
            return Err(NetError::Connection("connection died during submit".into()));
        }
        let retry_payload = (reused && !force_fresh).then_some(payload);
        Ok(TcpPending {
            transport: self.clone(),
            from,
            to,
            payload: retry_payload,
            bytes_sent,
            corr,
            cell,
            demux: conn.demux.clone(),
            conn_broken: conn.broken.clone(),
            delivered_at_submit,
            down,
            t0: Instant::now(),
            _conn: conn,
        })
    }

    /// Charges one request/response exchange to the global and both
    /// per-endpoint counters (frame headers included: these are the
    /// bytes actually on the wire).
    fn charge(&self, from: EndpointId, to: EndpointId, payload_out: u64, payload_in: u64) {
        let sent = payload_out + FRAME_HEADER_LEN as u64;
        let received = payload_in + FRAME_HEADER_LEN as u64;
        {
            let mut stats = self.inner.stats.lock();
            stats.messages += 2;
            stats.bytes += sent + received;
        }
        let mut endpoints = self.inner.endpoints.lock();
        if let Some(ep) = endpoints.get_mut(&from) {
            ep.stats.tx_msgs += 1;
            ep.stats.tx_bytes += sent;
            ep.stats.rx_msgs += 1;
            ep.stats.rx_bytes += received;
        }
        if let Some(ep) = endpoints.get_mut(&to) {
            ep.stats.rx_msgs += 1;
            ep.stats.rx_bytes += sent;
            ep.stats.tx_msgs += 1;
            ep.stats.tx_bytes += received;
        }
    }

    /// Charges a request whose frame was written but whose call failed
    /// (timeout, connection death after the write): the request bytes
    /// were really spent on the wire, so per-endpoint counters must not
    /// under-report traffic under failure injection. The missing
    /// response charges nothing.
    fn charge_tx(&self, from: EndpointId, to: EndpointId, payload_out: u64) {
        let sent = payload_out + FRAME_HEADER_LEN as u64;
        {
            let mut stats = self.inner.stats.lock();
            stats.messages += 1;
            stats.bytes += sent;
        }
        let mut endpoints = self.inner.endpoints.lock();
        if let Some(ep) = endpoints.get_mut(&from) {
            ep.stats.tx_msgs += 1;
            ep.stats.tx_bytes += sent;
        }
        if let Some(ep) = endpoints.get_mut(&to) {
            ep.stats.rx_msgs += 1;
            ep.stats.rx_bytes += sent;
        }
    }

    /// Folds one completed-call latency sample into `to`'s summary.
    fn note_latency(&self, to: EndpointId, sample_us: u64) {
        let mut endpoints = self.inner.endpoints.lock();
        if let Some(ep) = endpoints.get_mut(&to) {
            ep.latency.observe(sample_us);
        }
    }

    fn classify(&self, e: io::Error, to: EndpointId, down: &AtomicBool) -> NetError {
        if down.load(Ordering::Relaxed) {
            // The server cut the connection because it is down: to the
            // caller that is a dead endpoint, same as on the simulator.
            return NetError::EndpointDown(to);
        }
        match e.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => NetError::Timeout,
            _ => NetError::Connection(e.to_string()),
        }
    }
}

/// One in-flight TCP call: the frame is queued (or written); the
/// reactor fills `cell` when the correlated response lands.
struct TcpPending {
    transport: TcpTransport,
    from: EndpointId,
    to: EndpointId,
    /// Retry copy, kept only for calls that went out on a pre-existing
    /// pooled connection (the only ones eligible for the single
    /// stale-connection retry).
    payload: Option<Vec<u8>>,
    /// Request payload length.
    bytes_sent: u64,
    corr: u64,
    cell: Arc<CompletionCell>,
    demux: Arc<Demux>,
    /// The carrying connection's broken flag: set on deadline expiry so
    /// a stalled connection is pruned instead of re-pooled.
    conn_broken: Arc<AtomicBool>,
    /// The connection's delivered-response count at submit time; any
    /// delivery after it vetoes the stale-retry (server provably alive
    /// past this request's submission).
    delivered_at_submit: u64,
    down: Arc<AtomicBool>,
    t0: Instant,
    /// Keeps the connection's demux and queue alive while the call is
    /// in flight: a fresh dial that lost the pool-slot race must not
    /// lose its response mid-air.
    _conn: Arc<ClientConn>,
}

impl PendingCall for TcpPending {
    fn wait(mut self: Box<Self>) -> Result<Transfer, NetError> {
        let deadline = self.t0 + self.transport.timeout();
        match self.cell.wait_until(deadline) {
            Some(CellDone {
                result: Ok(response),
                ..
            }) => {
                self.transport
                    .charge(self.from, self.to, self.bytes_sent, response.len() as u64);
                let latency_us = self.t0.elapsed().as_micros() as u64;
                self.transport.note_latency(self.to, latency_us);
                Ok(Transfer {
                    latency_us,
                    bytes_sent: self.bytes_sent + FRAME_HEADER_LEN as u64,
                    bytes_received: response.len() as u64 + FRAME_HEADER_LEN as u64,
                    payload: response,
                })
            }
            Some(CellDone {
                result: Err(e),
                sole_in_flight,
            }) => {
                // A written request costs wire whether or not the call
                // completes; the retry path charges the failed attempt
                // before re-sending, so both transmissions account.
                if self.cell.was_sent() {
                    self.transport
                        .charge_tx(self.from, self.to, self.bytes_sent);
                }
                let retriable = sole_in_flight
                    && is_stale_connection(&e)
                    // No response landed on this connection since the
                    // submit: nothing proves the server ever got past
                    // this request, so re-sending cannot duplicate
                    // observed work. A delivery in between vetoes it.
                    && self.demux.delivered() == self.delivered_at_submit;
                if retriable {
                    if let Some(payload) = self.payload.take() {
                        // The pooled connection went stale (server
                        // restarted or cut us off) with this request
                        // alone in flight — it cannot have been
                        // processed; retry exactly once on a fresh
                        // dial. With siblings pipelined on the same
                        // connection the server may have processed any
                        // of them, so those failures are surfaced, not
                        // retried. Timeouts are NEVER retried — the
                        // server may still be executing the request,
                        // and re-sending would duplicate non-idempotent
                        // work (patches).
                        let retried = self
                            .transport
                            .submit_inner(self.from, self.to, payload, true)?;
                        return Box::new(retried).wait();
                    }
                }
                Err(self.transport.classify(e, self.to, &self.down))
            }
            None => {
                // Abandon the slot: a late response is discarded as an
                // orphan rather than delivered to a future call. The
                // connection swallowed a request past its deadline, so
                // stop pooling it — the next submit dials fresh instead
                // of feeding a stalled server's tar pit (in-flight
                // siblings keep their cells; only checkout is barred,
                // and the reactor closes the socket once they drain).
                self.demux.forget(self.corr);
                self.conn_broken.store(true, Ordering::SeqCst);
                self.transport.wake_reactors();
                if self.cell.was_sent() {
                    self.transport
                        .charge_tx(self.from, self.to, self.bytes_sent);
                }
                Err(NetError::Timeout)
            }
        }
    }
}

impl Transport for TcpTransport {
    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn register(&self, name: &str, location: Option<LatLng>) -> EndpointId {
        let _ = location; // wall-clock transport: no distance model
        let id = EndpointId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        self.inner.endpoints.lock().insert(
            id,
            Endpoint {
                name: name.to_string(),
                addr: None,
                down: Arc::new(AtomicBool::new(false)),
                stats: EndpointStats::default(),
                latency: EndpointLatency::default(),
                conns: Vec::new(),
                gauge: Arc::new(DispatchGauge::new()),
            },
        );
        id
    }

    fn set_service(&self, id: EndpointId, service: Arc<dyn WireService>) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).expect("bind loopback listener");
        listener
            .set_nonblocking(true)
            .expect("non-blocking listener");
        let addr = listener.local_addr().expect("listener has an address");
        let (down, gauge) = {
            let mut endpoints = self.inner.endpoints.lock();
            let ep = endpoints
                .get_mut(&id)
                .expect("set_service on an unregistered endpoint");
            ep.addr = Some(addr);
            (ep.down.clone(), ep.gauge.clone())
        };
        let dispatch = self.dispatch_sender();
        let pool = self.reactor_pool();
        pool.pick().push(Cmd::Listener {
            listener,
            me: id.0,
            down,
            service,
            dispatch,
            gauge,
            shed: self.inner.shed.clone(),
        });
    }

    fn submit(&self, from: EndpointId, to: EndpointId, payload: Vec<u8>) -> CallHandle {
        match self.submit_inner(from, to, payload, false) {
            Ok(pending) => CallHandle::new(Box::new(pending)),
            Err(e) => CallHandle::ready(Err(e)),
        }
    }

    fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    fn advance_us(&self, _dt_us: u64) {
        // Wall-clock transport: think time passes by itself.
    }

    fn stats(&self) -> NetStats {
        self.inner.stats.lock().clone()
    }

    fn endpoint_stats(&self, id: EndpointId) -> Option<EndpointStats> {
        self.inner
            .endpoints
            .lock()
            .get(&id)
            .map(|e| e.stats.clone())
    }

    fn endpoint_latency(&self, id: EndpointId) -> Option<EndpointLatency> {
        self.inner.endpoints.lock().get(&id).map(|e| e.latency)
    }

    fn reset_stats(&self) {
        *self.inner.stats.lock() = NetStats::default();
        self.inner.shed.store(0, Ordering::SeqCst);
        for ep in self.inner.endpoints.lock().values_mut() {
            ep.stats = EndpointStats::default();
            ep.latency = EndpointLatency::default();
            ep.gauge.reset_high_water();
        }
    }

    fn endpoint_name(&self, id: EndpointId) -> Option<String> {
        self.inner.endpoints.lock().get(&id).map(|e| e.name.clone())
    }

    fn set_down(&self, id: EndpointId, down: bool) {
        let conns = {
            let mut endpoints = self.inner.endpoints.lock();
            let Some(ep) = endpoints.get_mut(&id) else {
                return;
            };
            ep.down.store(down, Ordering::Relaxed);
            // Drop pooled connections either way: a revived server gets
            // fresh connections instead of sockets the server side
            // already abandoned.
            std::mem::take(&mut ep.conns)
        };
        // Cut them now: in-flight requests fail like they would on a
        // crashed process, instead of riding a socket whose server
        // will never answer again.
        for conn in &conns {
            conn.kill.store(true, Ordering::SeqCst);
            conn.broken.store(true, Ordering::SeqCst);
        }
        drop(conns);
        self.wake_reactors();
    }

    fn set_drop_probability(&self, p: f64) {
        self.inner
            .drop_bits
            .store(p.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    fn set_timeout_us(&self, timeout_us: u64) {
        self.inner.timeout_us.store(timeout_us, Ordering::Relaxed);
    }

    fn worker_threads(&self) -> usize {
        TcpTransport::worker_threads(self)
    }

    fn set_overload_policy(&self, id: EndpointId, policy: Option<OverloadPolicy>) {
        if let Some(ep) = self.inner.endpoints.lock().get(&id) {
            ep.gauge.set_policy(policy);
        }
    }

    fn dispatch_depth(&self, id: EndpointId) -> usize {
        self.inner
            .endpoints
            .lock()
            .get(&id)
            .map(|e| e.gauge.high_water())
            .unwrap_or(0)
    }

    fn shed_requests(&self) -> u64 {
        self.inner.shed.load(Ordering::SeqCst)
    }
}

/// Whether an I/O failure means the connection itself died (as a
/// pooled-but-abandoned socket does) rather than the request timing
/// out. Only these are safe to retry on a fresh dial.
fn is_stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

// ---------------------------------------------------------------------
// Server-side concurrent dispatch.
// ---------------------------------------------------------------------

/// One decoded request frame on its way to a dispatch worker.
struct ServeJob {
    from: u64,
    corr: u64,
    payload: Vec<u8>,
    service: Arc<dyn WireService>,
    shared: Arc<SrvShared>,
    /// The endpoint's admission book and this request's principal key
    /// (present when an overload policy classified it). The worker
    /// releases the slot right after execution — on every path,
    /// including service panics and dead connections — so shed +
    /// disconnect can never leak slots and wedge the endpoint.
    gauge: Arc<DispatchGauge>,
    admit_key: Option<u64>,
}

/// One computed response on its way back to its connection's reactor.
/// `response` is `None` when the service panicked on this request —
/// the reactor cuts the connection (crash semantics) instead of
/// leaving the caller to its timeout.
struct SrvDone {
    corr: u64,
    response: Option<Vec<u8>>,
}

/// The dispatch-facing half of one server connection: workers push
/// completion-order results here and wake the owning reactor, which
/// writes them out in that order.
struct SrvShared {
    done: OrderedMutex<VecDeque<SrvDone>>,
    /// Set when the connection is torn down: late results are dropped
    /// instead of queued for a writer that no longer exists.
    dead: AtomicBool,
    reactor: Arc<ReactorShared>,
}

/// Spawns the transport-wide dispatch pool: [`DISPATCH_POOL`] workers
/// pull decoded frames from every served connection of every endpoint
/// and invoke the owning service concurrently (its `Send + Sync`
/// contract makes that legal; see [`WireService`]). Jobs carry their
/// service handle, so idle workers pin no service alive; the pool
/// unwinds once the transport's master sender and every reactor-held
/// clone are gone.
fn spawn_dispatch_pool(threads: &Arc<AtomicUsize>) -> mpsc::Sender<ServeJob> {
    let (job_tx, job_rx) = mpsc::channel::<ServeJob>();
    let job_rx = Arc::new(OrderedMutex::new(ranks::TCP_DISPATCH_QUEUE, job_rx));
    for worker in 0..DISPATCH_POOL {
        let guard = ThreadGuard::enter(threads);
        let job_rx = job_rx.clone();
        thread::Builder::new()
            .name(format!("ofl-tcp-disp-{worker}"))
            .spawn(move || {
                let _guard = guard;
                loop {
                    // Hold the shared receiver only for the blocking
                    // recv: job *pickup* is serialized, execution is
                    // not.
                    let job = {
                        let rx = job_rx.lock();
                        rx.recv()
                    };
                    let Ok(job) = job else { break };
                    // Contain panics: a panicking service must cost its
                    // connection, never a shared dispatch worker.
                    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        job.service.handle(EndpointId(job.from), &job.payload)
                    }))
                    .ok();
                    // Release the admission slot before anything can
                    // skip the result (dead connection, panic): the
                    // endpoint-wide depth must drain even when the
                    // requester is gone.
                    job.gauge.release(job.admit_key);
                    if !job.shared.dead.load(Ordering::SeqCst) {
                        job.shared.done.lock().push_back(SrvDone {
                            corr: job.corr,
                            response,
                        });
                        job.shared.reactor.waker.wake();
                    }
                }
            })
            .expect("spawn dispatch worker");
    }
    job_tx
}

// ---------------------------------------------------------------------
// The reactor event loop.
// ---------------------------------------------------------------------

/// A client connection as its reactor sees it.
struct ClientEntry {
    conn: Arc<ClientConn>,
    stream: TcpStream,
    /// Still mid-handshake: watch for writability, then check
    /// `SO_ERROR` before first use.
    connecting: bool,
    decoder: FrameDecoder,
    dead: bool,
}

/// A served endpoint's listener as its reactor sees it.
struct ListenerEntry {
    listener: TcpListener,
    me: u64,
    down: Arc<AtomicBool>,
    service: Arc<dyn WireService>,
    dispatch: mpsc::Sender<ServeJob>,
    gauge: Arc<DispatchGauge>,
    shed: Arc<AtomicU64>,
}

/// A response frame part-way through its write.
struct WriteBuf {
    buf: Vec<u8>,
    off: usize,
}

/// A server-side connection as its reactor sees it.
struct ServedEntry {
    stream: TcpStream,
    me: u64,
    down: Arc<AtomicBool>,
    service: Arc<dyn WireService>,
    dispatch: mpsc::Sender<ServeJob>,
    shared: Arc<SrvShared>,
    gauge: Arc<DispatchGauge>,
    shed: Arc<AtomicU64>,
    decoder: FrameDecoder,
    /// Requests dispatched but not yet fully answered on the wire —
    /// the [`SERVE_PIPELINE`] gate's counter.
    in_dispatch: usize,
    cur: Option<WriteBuf>,
    /// False after EOF or a read error: stop reading, keep draining
    /// responses (a half-closed peer still receives every answer it
    /// pipelined).
    read_open: bool,
    dead: bool,
}

enum Entry {
    Client(ClientEntry),
    Listener(ListenerEntry),
    Served(ServedEntry),
}

/// One reactor thread: poll readiness, pump non-blocking reads through
/// the incremental decoder, drain write queues, accept connections —
/// for every socket in its slab. Exits when the transport shuts down,
/// dropping the slab (which closes every fd and releases every
/// service/dispatch handle it held).
fn run_reactor(idx: usize, pool: Arc<ReactorPool>, shutdown: Arc<AtomicBool>) {
    let shared = pool.handles[idx].clone();
    let mut entries: Vec<Entry> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        for cmd in shared.take_cmds() {
            entries.push(match cmd {
                Cmd::Client { conn, stream } => Entry::Client(ClientEntry {
                    conn,
                    stream,
                    connecting: true,
                    decoder: FrameDecoder::new(),
                    dead: false,
                }),
                Cmd::Listener {
                    listener,
                    me,
                    down,
                    service,
                    dispatch,
                    gauge,
                    shed,
                } => Entry::Listener(ListenerEntry {
                    listener,
                    me,
                    down,
                    service,
                    dispatch,
                    gauge,
                    shed,
                }),
                Cmd::Served {
                    stream,
                    me,
                    down,
                    service,
                    dispatch,
                    shared,
                    gauge,
                    shed,
                } => Entry::Served(ServedEntry {
                    stream,
                    me,
                    down,
                    service,
                    dispatch,
                    shared,
                    gauge,
                    shed,
                    decoder: FrameDecoder::new(),
                    in_dispatch: 0,
                    cur: None,
                    read_open: true,
                    dead: false,
                }),
            });
        }
        // Retire sweep: externally killed connections, broken ones
        // that drained, gracefully finished server connections, and
        // everything that died during the last event round.
        entries.retain_mut(|entry| match entry {
            Entry::Listener(_) => true,
            Entry::Client(c) => {
                if !c.dead && c.conn.kill.load(Ordering::SeqCst) {
                    client_death(c, io::ErrorKind::UnexpectedEof, "connection force-closed");
                }
                if !c.dead && c.conn.broken.load(Ordering::SeqCst) {
                    if c.connecting {
                        // Broken before the handshake resolved: writes
                        // are gated on a connect that may never finish,
                        // so waiting for the queue to drain would leak
                        // the entry (and its fd) forever. Nothing ever
                        // hit the wire, so failing the queued frames
                        // cannot orphan a response.
                        client_death(
                            c,
                            io::ErrorKind::ConnectionAborted,
                            "connection abandoned mid-handshake",
                        );
                    } else {
                        // Externally marked stale (timeout pruning):
                        // keep serving in-flight siblings, close once
                        // drained.
                        let drained =
                            c.conn.demux.in_flight() == 0 && c.conn.out.lock().frames.is_empty();
                        if drained {
                            c.conn.out.lock().closed = true;
                            let _ = c.stream.shutdown(Shutdown::Both);
                            c.dead = true;
                        }
                    }
                }
                !c.dead
            }
            Entry::Served(s) => {
                if !s.dead
                    && !s.read_open
                    && s.in_dispatch == 0
                    && s.cur.is_none()
                    && s.shared.done.lock().is_empty()
                {
                    // Peer hung up and every pipelined response has
                    // been delivered: done.
                    s.dead = true;
                }
                if s.dead {
                    s.shared.dead.store(true, Ordering::SeqCst);
                    let _ = s.stream.shutdown(Shutdown::Both);
                }
                !s.dead
            }
        });
        fds.clear();
        owners.clear();
        fds.push(PollFd::new(shared.waker.rx_fd(), POLLIN));
        owners.push(usize::MAX);
        for (i, entry) in entries.iter().enumerate() {
            if let Some(fd) = interest(entry) {
                fds.push(fd);
                owners.push(i);
            }
        }
        if poll_fds(&mut fds, -1).is_err() {
            // EBADF/ENOMEM-class failure: back off instead of spinning.
            thread::sleep(Duration::from_millis(1));
            continue;
        }
        if fds[0].readable() {
            shared.waker.drain();
        }
        for k in 1..fds.len() {
            let ready = fds[k];
            if ready.revents == 0 {
                continue;
            }
            match &mut entries[owners[k]] {
                Entry::Client(c) => handle_client(c, ready),
                Entry::Listener(l) => handle_listener(l, &pool),
                Entry::Served(s) => handle_served(s, ready),
            }
        }
    }
}

/// The poll interest of one slab entry; `None` keeps the fd out of
/// this round entirely (dead, or — for a fully gated server
/// connection — nothing to wait for until the waker fires).
fn interest(entry: &Entry) -> Option<PollFd> {
    match entry {
        Entry::Listener(l) => Some(PollFd::new(l.listener.as_raw_fd(), POLLIN)),
        Entry::Client(c) => {
            if c.dead {
                return None;
            }
            let mut events = 0i16;
            if c.connecting {
                events |= POLLOUT;
            } else {
                events |= POLLIN;
                if !c.conn.out.lock().frames.is_empty() {
                    events |= POLLOUT;
                }
            }
            Some(PollFd::new(c.stream.as_raw_fd(), events))
        }
        Entry::Served(s) => {
            if s.dead {
                return None;
            }
            let mut events = 0i16;
            if s.read_open && s.in_dispatch < SERVE_PIPELINE {
                // The readiness-deregistration backpressure gate: a
                // saturated connection simply stops watching for
                // readability.
                events |= POLLIN;
            }
            if s.cur.is_some() || !s.shared.done.lock().is_empty() {
                events |= POLLOUT;
            }
            if events == 0 {
                return None;
            }
            Some(PollFd::new(s.stream.as_raw_fd(), events))
        }
    }
}

/// Kills a client connection: fail every in-flight request, refuse
/// further enqueues, mark for removal from the slab.
fn client_death(c: &mut ClientEntry, kind: io::ErrorKind, msg: &str) {
    c.conn.broken.store(true, Ordering::SeqCst);
    {
        let mut out = c.conn.out.lock();
        out.closed = true;
        out.frames.clear();
    }
    // Queued-but-unwritten frames were registered too: the sweep
    // fails them alongside the written ones (their cells carry
    // `sent == false`, so they charge nothing).
    c.conn.demux.fail_all(kind, msg);
    let _ = c.stream.shutdown(Shutdown::Both);
    c.dead = true;
}

fn handle_client(c: &mut ClientEntry, ready: PollFd) {
    if c.connecting && ready.writable() {
        match c.stream.take_error() {
            Ok(None) => c.connecting = false,
            Ok(Some(e)) | Err(e) => {
                let addr = c.conn.addr;
                client_death(c, e.kind(), &format!("dial {addr}: {e}"));
                return;
            }
        }
    }
    if !c.dead && !c.connecting && ready.writable() {
        if let Err(e) = pump_client_write(c) {
            // The old writer thread reported every write failure as
            // BrokenPipe; keep that so retry eligibility is unchanged.
            client_death(
                c,
                io::ErrorKind::BrokenPipe,
                &format!("connection writer failed: {e}"),
            );
            return;
        }
    }
    if !c.dead && !c.connecting && ready.readable() {
        if let Err((kind, msg)) = pump_client_read(c) {
            client_death(c, kind, &msg);
        }
    }
}

/// Drains the connection's write queue into the socket until it would
/// block or empties.
fn pump_client_write(c: &mut ClientEntry) -> io::Result<()> {
    let mut out = c.conn.out.lock();
    while let Some(frame) = out.frames.front_mut() {
        if frame.off == 0 {
            // The frame is going onto the socket now: even if the
            // write (or the whole call) fails from here on, its
            // request bytes count as wire traffic.
            c.conn.demux.mark_sent(frame.corr);
        }
        match (&c.stream).write(&frame.buf[frame.off..]) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote zero bytes")),
            Ok(n) => {
                frame.off += n;
                if frame.off == frame.buf.len() {
                    out.frames.pop_front();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Reads whatever the socket has, feeding the incremental decoder and
/// completing responses by correlation id.
fn pump_client_read(c: &mut ClientEntry) -> Result<(), (io::ErrorKind, String)> {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match (&c.stream).read(&mut buf) {
            Ok(0) => {
                return Err((
                    io::ErrorKind::UnexpectedEof,
                    "connection closed by peer".into(),
                ))
            }
            Ok(n) => {
                c.decoder.extend(&buf[..n]);
                loop {
                    match c.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            c.conn.demux.complete(frame.correlation, Ok(frame.payload))
                        }
                        Ok(None) => break,
                        Err(e) => return Err((e.kind(), e.to_string())),
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err((e.kind(), e.to_string())),
        }
    }
}

/// Accepts every pending connection, spreading them across the pool.
fn handle_listener(l: &mut ListenerEntry, pool: &Arc<ReactorPool>) {
    loop {
        match l.listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let target = pool.pick();
                let shared = Arc::new(SrvShared {
                    done: OrderedMutex::new(ranks::TCP_SERVE_DONE, VecDeque::new()),
                    dead: AtomicBool::new(false),
                    reactor: target.clone(),
                });
                target.push(Cmd::Served {
                    stream,
                    me: l.me,
                    down: l.down.clone(),
                    service: l.service.clone(),
                    dispatch: l.dispatch.clone(),
                    shared,
                    gauge: l.gauge.clone(),
                    shed: l.shed.clone(),
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient accept failures (ECONNABORTED, fd pressure)
            // must not kill the endpoint for the rest of the process.
            Err(_) => break,
        }
    }
}

/// Tears a server connection down immediately (malformed frame, down
/// endpoint, service panic): no answer, no drain.
fn cut_served(s: &mut ServedEntry) {
    s.dead = true;
    s.shared.dead.store(true, Ordering::SeqCst);
    let _ = s.stream.shutdown(Shutdown::Both);
}

fn handle_served(s: &mut ServedEntry, ready: PollFd) {
    if !s.dead && s.read_open && ready.readable() && pump_served_read(s).is_err() {
        cut_served(s);
        return;
    }
    if !s.dead && ready.writable() {
        if pump_served_write(s).is_err() {
            cut_served(s);
            return;
        }
        // Completed responses freed dispatch slots: frames already
        // buffered while the connection was gated can dispatch now.
        if pump_served_decode(s).is_err() {
            cut_served(s);
        }
    }
}

/// Reads request bytes until the socket would block or the
/// [`SERVE_PIPELINE`] gate closes. `Err` means cut the connection.
fn pump_served_read(s: &mut ServedEntry) -> Result<(), ()> {
    let mut buf = [0u8; 16 * 1024];
    while s.read_open && s.in_dispatch < SERVE_PIPELINE {
        match (&s.stream).read(&mut buf) {
            Ok(0) => s.read_open = false,
            Ok(n) => {
                s.decoder.extend(&buf[..n]);
                pump_served_decode(s)?;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // A reset mid-stream: stop reading; responses still in
            // dispatch drain until their writes fail (same as the old
            // reader thread's non-InvalidData exit).
            Err(_) => s.read_open = false,
        }
    }
    Ok(())
}

/// Dispatches buffered frames while the gate has room. `Err` means cut
/// the connection (corrupt stream, down endpoint, transport
/// unwinding).
fn pump_served_decode(s: &mut ServedEntry) -> Result<(), ()> {
    while s.in_dispatch < SERVE_PIPELINE {
        match s.decoder.next_frame() {
            Ok(Some(frame)) => {
                if s.down.load(Ordering::Relaxed) {
                    // A dead server stops mid-conversation; the caller
                    // sees the connection die, exactly like a crashed
                    // process.
                    return Err(());
                }
                let admit_key = match s.gauge.admit(&frame.payload) {
                    Ok(key) => key,
                    Err(busy) => {
                        // Shed: answer with the policy's busy payload
                        // straight through the response queue — the
                        // dispatch pool never sees the request, the
                        // reader is never stalled, and the reply
                        // drains like any other completion (its write
                        // releases the in_dispatch slot it takes
                        // here).
                        s.shed.fetch_add(1, Ordering::Relaxed);
                        s.shared.done.lock().push_back(SrvDone {
                            corr: frame.correlation,
                            response: Some(busy),
                        });
                        s.in_dispatch += 1;
                        continue;
                    }
                };
                let job = ServeJob {
                    from: frame.sender,
                    corr: frame.correlation,
                    payload: frame.payload,
                    service: s.service.clone(),
                    shared: s.shared.clone(),
                    gauge: s.gauge.clone(),
                    admit_key,
                };
                if s.dispatch.send(job).is_err() {
                    // Pool gone: the transport is unwinding.
                    return Err(());
                }
                s.in_dispatch += 1;
            }
            Ok(None) => break,
            // A corrupt stream (bad version, oversized length) MUST be
            // cut without answering.
            Err(_) => return Err(()),
        }
    }
    Ok(())
}

/// Writes completed responses in completion order until the socket
/// would block or the queue empties. `Err` means cut the connection
/// (write failure, panicked service, oversized response).
fn pump_served_write(s: &mut ServedEntry) -> Result<(), ()> {
    loop {
        if s.cur.is_none() {
            let done = s.shared.done.lock().pop_front();
            match done {
                Some(SrvDone {
                    corr,
                    response: Some(response),
                }) => {
                    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + response.len());
                    if write_frame(&mut buf, s.me, corr, &response).is_err() {
                        return Err(());
                    }
                    s.cur = Some(WriteBuf { buf, off: 0 });
                }
                // Service panicked on this request: cut the connection
                // instead of answering (crash semantics).
                Some(SrvDone { response: None, .. }) => return Err(()),
                None => return Ok(()),
            }
        }
        let finished = {
            let cur = s.cur.as_mut().expect("current write buffer");
            match (&s.stream).write(&cur.buf[cur.off..]) {
                Ok(0) => return Err(()),
                Ok(n) => {
                    cur.off += n;
                    cur.off == cur.buf.len()
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
                Err(_) => return Err(()),
            }
        };
        if finished {
            s.cur = None;
            // Frame delivered: release the gate slot it held since
            // dispatch.
            s.in_dispatch -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{CompletionSet, Transport};
    use openflame_codec::framing::read_frame;

    fn echo_transport() -> (TcpTransport, EndpointId, EndpointId) {
        let transport = TcpTransport::new(7);
        let server = transport.register("echo", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| payload.to_vec()),
        );
        let client = transport.register("client", None);
        (transport, client, server)
    }

    #[test]
    fn echo_round_trip_over_real_sockets() {
        let (transport, client, server) = echo_transport();
        let transfer = transport.call(client, server, vec![1, 2, 3]).unwrap();
        assert_eq!(transfer.payload, vec![1, 2, 3]);
        assert_eq!(transfer.bytes_sent, 3 + FRAME_HEADER_LEN as u64);
        let stats = transport.stats();
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.bytes, 2 * (3 + FRAME_HEADER_LEN as u64));
    }

    #[test]
    fn connections_are_pooled_across_calls() {
        let (transport, client, server) = echo_transport();
        for i in 0..5u8 {
            transport.call(client, server, vec![i]).unwrap();
        }
        assert_eq!(
            transport.pooled_conns(server),
            1,
            "sequential calls must reuse one connection"
        );
        let ep = transport.endpoint_stats(server).unwrap();
        assert_eq!(ep.rx_msgs, 5);
    }

    #[test]
    fn parallel_fanout_answers_positionally() {
        let (transport, client, server) = echo_transport();
        let results =
            transport.call_parallel(client, (0..8u8).map(|i| (server, vec![i])).collect());
        assert_eq!(results.len(), 8);
        for (i, result) in results.into_iter().enumerate() {
            assert_eq!(result.unwrap().payload, vec![i as u8]);
        }
        assert_eq!(transport.stats().messages, 16);
    }

    #[test]
    fn pipelined_submits_share_one_connection() {
        let (transport, client, server) = echo_transport();
        // Warm the pool so every pipelined submit reuses it.
        transport.call(client, server, vec![0]).unwrap();
        let mut set = CompletionSet::new();
        for i in 0..16u8 {
            set.push(transport.submit(client, server, vec![i]));
        }
        for (i, result) in set.wait_all().into_iter().enumerate() {
            assert_eq!(result.unwrap().payload, vec![i as u8]);
        }
        assert_eq!(
            transport.pooled_conns(server),
            1,
            "16 in-flight requests fit one pipelined connection"
        );
        assert_eq!(transport.orphan_responses(), 0);
    }

    #[test]
    fn worker_threads_do_not_grow_with_call_volume() {
        let (transport, client, server) = echo_transport();
        transport.call(client, server, vec![0]).unwrap();
        let after_first = transport.worker_threads();
        assert_eq!(
            after_first,
            transport.reactor_threads() + DISPATCH_POOL,
            "thread census is the reactor pool plus the dispatch pool"
        );
        for round in 0..10 {
            let mut set = CompletionSet::new();
            for i in 0..8u8 {
                set.push(transport.submit(client, server, vec![round, i]));
            }
            for result in set.wait_all() {
                result.unwrap();
            }
        }
        assert_eq!(
            transport.worker_threads(),
            after_first,
            "reused connections must not spawn per-call threads"
        );
    }

    #[test]
    fn worker_threads_are_bounded_by_reactor_pool_not_endpoints() {
        // The tentpole invariant in miniature: many served endpoints,
        // many connections, an explicit 2-reactor pool — thread count
        // is exactly reactors + dispatch workers.
        let transport = TcpTransport::with_reactors(11, 2);
        assert_eq!(transport.reactor_threads(), 2);
        let client = transport.register("client", None);
        let servers: Vec<EndpointId> = (0..12)
            .map(|i| {
                let id = transport.register(&format!("srv-{i}"), None);
                transport.set_service(
                    id,
                    Arc::new(|_from: EndpointId, payload: &[u8]| payload.to_vec()),
                );
                id
            })
            .collect();
        for round in 0..3u8 {
            let mut set = CompletionSet::new();
            for id in &servers {
                set.push(transport.submit(client, *id, vec![round]));
            }
            for result in set.wait_all() {
                result.unwrap();
            }
        }
        assert_eq!(
            transport.worker_threads(),
            2 + DISPATCH_POOL,
            "12 served endpoints x pooled connections must not add threads"
        );
    }

    #[test]
    fn slow_request_does_not_block_pipelined_fast_requests() {
        let transport = TcpTransport::new(7);
        let server = transport.register("mixed", None);
        // payload[0] == 1 marks a deliberately slow request.
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                if payload.first() == Some(&1) {
                    thread::sleep(Duration::from_millis(400));
                }
                payload.to_vec()
            }),
        );
        let client = transport.register("client", None);
        // Warm the pool so everything shares ONE pipelined connection.
        transport.call(client, server, vec![0]).unwrap();
        assert_eq!(transport.pooled_conns(server), 1);
        let t0 = Instant::now();
        let slow = transport.submit(client, server, vec![1]);
        let mut fast = CompletionSet::new();
        for i in 0..8u8 {
            fast.push(transport.submit(client, server, vec![0, i]));
        }
        for (i, result) in fast.wait_all().into_iter().enumerate() {
            assert_eq!(result.unwrap().payload, vec![0, i as u8]);
        }
        let fast_elapsed = t0.elapsed();
        assert!(
            fast_elapsed < Duration::from_millis(300),
            "fast requests queued behind the slow one: {fast_elapsed:?}"
        );
        assert_eq!(slow.wait().unwrap().payload, vec![1]);
        assert!(t0.elapsed() >= Duration::from_millis(400));
        assert_eq!(
            transport.pooled_conns(server),
            1,
            "the whole out-of-order exchange rode one connection"
        );
        assert_eq!(transport.orphan_responses(), 0);
    }

    #[test]
    fn overcommitted_pipelines_drain_through_bounded_dispatch() {
        // More in-flight requests per connection than SERVE_PIPELINE:
        // the server-side gate must throttle the reader (backpressure),
        // not deadlock, drop, or reorder-by-correlation incorrectly.
        let (transport, client, server) = echo_transport();
        let mut set = CompletionSet::new();
        for i in 0..200u32 {
            set.push(transport.submit(client, server, i.to_le_bytes().to_vec()));
        }
        for (i, result) in set.wait_all().into_iter().enumerate() {
            assert_eq!(result.unwrap().payload, (i as u32).to_le_bytes().to_vec());
        }
        assert!(transport.pooled_conns(server) <= POOL_CAP);
        assert_eq!(transport.orphan_responses(), 0);
        assert_eq!(transport.stats().messages, 400);
    }

    #[test]
    fn service_panic_cuts_connection_not_dispatch_pool() {
        let transport = TcpTransport::new(7);
        let server = transport.register("panicky", None);
        // payload[0] == 1 makes the service panic.
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                assert_ne!(payload.first(), Some(&1), "injected service bug");
                payload.to_vec()
            }),
        );
        let client = transport.register("client", None);
        transport.call(client, server, vec![0]).unwrap();
        // The panicking request costs its connection (crash semantics,
        // not a silent stall to the timeout)...
        let err = transport.call(client, server, vec![1]).unwrap_err();
        assert!(
            matches!(err, NetError::Connection(_)),
            "expected connection death, got {err:?}"
        );
        // ...but the dispatch pool survives: the endpoint keeps
        // serving later requests.
        assert_eq!(
            transport.call(client, server, vec![2]).unwrap().payload,
            [2],
            "dispatch workers must outlive a panicking request"
        );
    }

    #[test]
    fn half_closing_peer_still_receives_pipelined_responses() {
        // A protocol-conformant client may pipeline requests, close its
        // write side, and keep reading: responses still in dispatch
        // must drain, not die with the reader.
        let (transport, _client, server) = echo_transport();
        let addr = transport.listen_addr(server).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        for corr in [1u64, 2, 3] {
            write_frame(&mut stream, 99, corr, &[corr as u8]).unwrap();
        }
        stream.shutdown(Shutdown::Write).unwrap();
        let mut seen: Vec<u64> = (0..3)
            .map(|_| {
                let frame = read_frame(&mut stream).expect("response survives half-close");
                assert_eq!(frame.payload, vec![frame.correlation as u8]);
                frame.correlation
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn demux_discards_unknown_and_duplicate_correlations() {
        let orphans = Arc::new(AtomicU64::new(0));
        let demux = Demux::new(orphans.clone());
        let cell = demux.register(1);
        // Unknown correlation id: discarded, counted, no delivery.
        demux.complete(99, Ok(vec![9]));
        assert_eq!(orphans.load(Ordering::Relaxed), 1);
        // First completion delivers...
        demux.complete(1, Ok(vec![1]));
        let done = cell.wait_until(Instant::now()).unwrap();
        assert_eq!(done.result.unwrap(), vec![1]);
        assert!(done.sole_in_flight, "it was alone in the demux");
        // ...a duplicate for the same id is an orphan, not a overwrite.
        demux.complete(1, Ok(vec![2]));
        assert_eq!(orphans.load(Ordering::Relaxed), 2);
        assert_eq!(demux.in_flight(), 0);
    }

    #[test]
    fn stale_frame_version_cuts_server_connection() {
        let (transport, _client, server) = echo_transport();
        let addr = transport.listen_addr(server).unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        // A v1-era frame (no version byte): the server must refuse to
        // parse it and cut the connection rather than desynchronize.
        use std::io::{Read, Write};
        let mut v1 = Vec::new();
        v1.extend_from_slice(&3u32.to_le_bytes());
        v1.extend_from_slice(&7u64.to_le_bytes());
        v1.extend_from_slice(b"abc");
        raw.write_all(&v1).unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; 16];
        // Connection cut: EOF (0 bytes) or reset.
        if let Ok(n) = raw.read(&mut buf) {
            assert_eq!(n, 0, "server must not answer a bad-version frame");
        }
    }

    #[test]
    fn timed_out_connection_is_pruned_not_repooled() {
        let transport = TcpTransport::new(7);
        let server = transport.register("stall", None);
        let stalling = Arc::new(AtomicBool::new(true));
        let gate = stalling.clone();
        transport.set_service(
            server,
            Arc::new(move |_from: EndpointId, payload: &[u8]| {
                if gate.load(Ordering::SeqCst) {
                    thread::sleep(Duration::from_millis(400));
                }
                payload.to_vec()
            }),
        );
        let client = transport.register("client", None);
        transport.set_timeout_us(60_000);
        assert!(matches!(
            transport.call(client, server, vec![1]),
            Err(NetError::Timeout)
        ));
        // The stalled connection's dispatch slot is still busy
        // sleeping; if the pool handed the connection out again the
        // next call would queue behind the stall and time out too. It
        // must dial fresh and answer within the budget instead.
        stalling.store(false, Ordering::SeqCst);
        assert_eq!(
            transport.call(client, server, vec![2]).unwrap().payload,
            [2],
            "post-timeout call must not be fed to the stalled connection"
        );
        // The stalled connection was pruned, so its reactor tore the
        // socket down; the stalled request's eventual response dies
        // with the connection instead of being delivered anywhere. The
        // timed-out call still charged its *request* (the frame was
        // written); only the response that never arrived goes
        // uncounted.
        thread::sleep(Duration::from_millis(450));
        assert_eq!(
            transport.stats().messages,
            3,
            "timed-out request + the good call's two messages"
        );
    }

    #[test]
    fn timed_out_call_charges_its_written_request_bytes() {
        let transport = TcpTransport::new(7);
        let server = transport.register("stall", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                thread::sleep(Duration::from_millis(300));
                payload.to_vec()
            }),
        );
        let client = transport.register("client", None);
        transport.set_timeout_us(50_000);
        let err = transport
            .call(client, server, vec![1, 2, 3, 4])
            .unwrap_err();
        assert!(matches!(err, NetError::Timeout));
        // The request frame hit the wire before the timeout: its bytes
        // are accounted on both endpoints, the never-received response
        // is not.
        let stats = transport.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 4 + FRAME_HEADER_LEN as u64);
        let c = transport.endpoint_stats(client).unwrap();
        assert_eq!((c.tx_msgs, c.tx_bytes), (1, 4 + FRAME_HEADER_LEN as u64));
        assert_eq!((c.rx_msgs, c.rx_bytes), (0, 0), "no response landed");
        let s = transport.endpoint_stats(server).unwrap();
        assert_eq!((s.rx_msgs, s.rx_bytes), (1, 4 + FRAME_HEADER_LEN as u64));
        assert_eq!(s.tx_msgs, 0);
    }

    #[test]
    fn drop_injected_call_never_reaches_the_wire_and_charges_nothing() {
        let (transport, client, server) = echo_transport();
        transport.set_drop_probability(1.0);
        assert!(matches!(
            transport.call(client, server, vec![1]),
            Err(NetError::Timeout)
        ));
        // Drop injection models loss *before* the socket: unlike a
        // timed-out written frame, nothing was spent.
        assert_eq!(transport.stats().messages, 0);
        assert_eq!(transport.stats().bytes, 0);
        assert_eq!(transport.endpoint_stats(client).unwrap().tx_msgs, 0);
    }

    #[test]
    fn down_endpoint_fails_cleanly_and_revives() {
        let (transport, client, server) = echo_transport();
        transport.call(client, server, vec![1]).unwrap();
        transport.set_down(server, true);
        assert!(matches!(
            transport.call(client, server, vec![1]),
            Err(NetError::EndpointDown(_))
        ));
        transport.set_down(server, false);
        assert_eq!(
            transport.call(client, server, vec![2]).unwrap().payload,
            [2]
        );
    }

    #[test]
    fn drop_probability_one_always_times_out() {
        let (transport, client, server) = echo_transport();
        transport.set_drop_probability(1.0);
        assert!(matches!(
            transport.call(client, server, vec![1]),
            Err(NetError::Timeout)
        ));
        assert_eq!(transport.stats().drops, 1);
        transport.set_drop_probability(0.0);
        assert!(transport.call(client, server, vec![1]).is_ok());
    }

    #[test]
    fn unknown_and_serviceless_endpoints_error() {
        let (transport, client, _server) = echo_transport();
        assert!(matches!(
            transport.call(client, EndpointId(999), vec![]),
            Err(NetError::NoSuchEndpoint(_))
        ));
        let silent = transport.register("no-service", None);
        assert!(matches!(
            transport.call(client, silent, vec![]),
            Err(NetError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn dropping_the_transport_releases_listeners() {
        let (transport, client, server) = echo_transport();
        transport.call(client, server, vec![1]).unwrap();
        let addr = transport.listen_addr(server).unwrap();
        drop(transport);
        // The reactors exit and close the listener; new dials must
        // start failing (give the woken threads a moment to unwind).
        let mut released = false;
        for _ in 0..50 {
            if TcpStream::connect_timeout(&addr, Duration::from_millis(50)).is_err() {
                released = true;
                break;
            }
            thread::sleep(Duration::from_millis(10));
        }
        assert!(released, "listener port still accepting after drop");
    }

    #[test]
    fn dropping_a_many_endpoint_transport_completes_quickly() {
        // Teardown is one wake per reactor, not a walk over endpoints:
        // with ~16 served endpoints the whole drop must finish well
        // under a second.
        let transport = TcpTransport::new(3);
        let client = transport.register("client", None);
        let servers: Vec<EndpointId> = (0..16)
            .map(|i| {
                let id = transport.register(&format!("srv-{i}"), None);
                transport.set_service(
                    id,
                    Arc::new(|_from: EndpointId, payload: &[u8]| payload.to_vec()),
                );
                id
            })
            .collect();
        // Exercise a few of them so real connections exist too.
        for id in servers.iter().take(4) {
            transport.call(client, *id, vec![1]).unwrap();
        }
        let t0 = Instant::now();
        drop(transport);
        assert!(
            t0.elapsed() < Duration::from_millis(900),
            "teardown of 16 served endpoints took {:?}",
            t0.elapsed()
        );
    }

    /// Policy for the overload tests: byte 0 of the payload is the
    /// principal key; shed replies are `[0xBB]` + retry hint.
    fn test_policy(max_depth: usize) -> OverloadPolicy {
        OverloadPolicy {
            max_depth,
            retry_after_us: 1_500,
            classify: Arc::new(|payload: &[u8]| u64::from(payload.first().copied().unwrap_or(0))),
            busy_reply: Arc::new(|retry_after_us: u64| vec![0xBB, retry_after_us as u8]),
        }
    }

    fn is_busy(payload: &[u8]) -> bool {
        payload.first() == Some(&0xBB)
    }

    #[test]
    fn saturated_endpoint_sheds_busy_within_bound_instead_of_stalling() {
        // Far more in-flight than the dispatch queue admits, against a
        // slow service: the overflow MUST come back as fast busy
        // replies, not wedge behind the reader gate until timeout.
        let transport = TcpTransport::new(7);
        let server = transport.register("slow", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                thread::sleep(Duration::from_millis(100));
                payload.to_vec()
            }),
        );
        transport.set_overload_policy(server, Some(test_policy(4)));
        let client = transport.register("client", None);
        let t0 = Instant::now();
        let mut set = CompletionSet::new();
        for i in 0..48u8 {
            // Spread principals so the per-principal cap is not what
            // triggers first; total depth is.
            set.push(transport.submit(client, server, vec![i, 1]));
        }
        let results = set.wait_all();
        let elapsed = t0.elapsed();
        let mut served = 0usize;
        let mut shed = 0usize;
        for result in results {
            let transfer = result.expect("saturation must answer, not error");
            if is_busy(&transfer.payload) {
                shed += 1;
            } else {
                served += 1;
            }
        }
        assert!(served >= 1, "some requests must still be served");
        assert!(shed >= 1, "overflow must be shed as busy replies");
        assert_eq!(transport.shed_requests(), shed as u64);
        // 48 requests at 100 ms each on 8 workers would be ~600 ms if
        // everything queued; shedding keeps the tail bounded by the
        // admitted depth, not the offered load.
        assert!(
            elapsed < Duration::from_millis(450),
            "saturation wedged the pipeline: {elapsed:?}"
        );
        assert!(
            transport.dispatch_depth(server) <= 4,
            "admitted depth exceeded the policy cap"
        );
    }

    #[test]
    fn hot_principal_is_shed_before_quiet_one() {
        let transport = TcpTransport::new(7);
        let server = transport.register("slow", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                thread::sleep(Duration::from_millis(80));
                payload.to_vec()
            }),
        );
        // max_depth 8 → per-principal cap 4: principal 1 can hold at
        // most half the queue.
        transport.set_overload_policy(server, Some(test_policy(8)));
        let hot = transport.register("hot", None);
        let quiet = transport.register("quiet", None);
        // The hot principal floods well past its cap...
        let mut hot_set = CompletionSet::new();
        for i in 0..24u8 {
            hot_set.push(transport.submit(hot, server, vec![1, i]));
        }
        // ...then a quiet principal shows up while the flood is in
        // flight: the fairness cap left it room, so it must be served.
        thread::sleep(Duration::from_millis(10));
        let quiet_transfer = transport
            .call(quiet, server, vec![2, 0])
            .expect("quiet principal must get through");
        assert!(
            !is_busy(&quiet_transfer.payload),
            "quiet principal was shed while the hot one held the queue"
        );
        let mut hot_shed = 0usize;
        for result in hot_set.wait_all() {
            if is_busy(&result.unwrap().payload) {
                hot_shed += 1;
            }
        }
        assert!(
            hot_shed >= 1,
            "the flooding principal must be shed at its fairness cap"
        );
    }

    #[test]
    fn shed_plus_disconnect_releases_every_admission_slot() {
        // Regression for the leaked-slot wedge: a client floods a tiny
        // admission queue, then vanishes mid-burst without reading
        // replies. Every admitted slot must drain (workers release
        // unconditionally) so a later well-behaved caller is served,
        // not shed forever.
        let transport = TcpTransport::new(7);
        let server = transport.register("slow", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                thread::sleep(Duration::from_millis(50));
                payload.to_vec()
            }),
        );
        transport.set_overload_policy(server, Some(test_policy(2)));
        let addr = transport.listen_addr(server).unwrap();
        {
            // Raw flood from outside the transport, then a hard cut
            // with replies unread.
            let mut raw = TcpStream::connect(addr).unwrap();
            for corr in 0..16u64 {
                write_frame(&mut raw, 77, corr, &[1, corr as u8]).unwrap();
            }
            // Give the server a moment to admit/shed the burst, then
            // vanish without reading a single reply.
            thread::sleep(Duration::from_millis(30));
            let _ = raw.shutdown(Shutdown::Both);
            drop(raw);
        }
        // Wait out the admitted requests' service time.
        thread::sleep(Duration::from_millis(400));
        let live_depth = transport
            .inner
            .endpoints
            .lock()
            .get(&server)
            .unwrap()
            .gauge
            .current_depth();
        assert_eq!(
            live_depth, 0,
            "admission slots leaked after the flooder disconnected"
        );
        let client = transport.register("client", None);
        let transfer = transport
            .call(client, server, vec![9, 9])
            .expect("endpoint must still answer after the flooder died");
        assert!(
            !is_busy(&transfer.payload),
            "leaked admission slots left the endpoint shedding forever"
        );
    }

    #[test]
    fn dispatch_depth_high_water_and_shed_reset_with_stats() {
        let transport = TcpTransport::new(7);
        let server = transport.register("slow", None);
        transport.set_service(
            server,
            Arc::new(|_from: EndpointId, payload: &[u8]| {
                thread::sleep(Duration::from_millis(40));
                payload.to_vec()
            }),
        );
        transport.set_overload_policy(server, Some(test_policy(2)));
        let client = transport.register("client", None);
        let mut set = CompletionSet::new();
        for i in 0..12u8 {
            set.push(transport.submit(client, server, vec![i, 0]));
        }
        for result in set.wait_all() {
            result.unwrap();
        }
        assert!(transport.dispatch_depth(server) >= 1);
        assert!(transport.shed_requests() >= 1);
        transport.reset_stats();
        assert_eq!(transport.dispatch_depth(server), 0);
        assert_eq!(transport.shed_requests(), 0);
    }

    #[test]
    fn endpoint_without_policy_never_sheds() {
        let (transport, client, server) = echo_transport();
        let mut set = CompletionSet::new();
        for i in 0..64u8 {
            set.push(transport.submit(client, server, vec![i]));
        }
        for result in set.wait_all() {
            result.unwrap();
        }
        assert_eq!(transport.shed_requests(), 0);
        assert!(
            transport.dispatch_depth(server) >= 1,
            "depth high-water is observed even without a policy"
        );
    }

    #[test]
    fn clock_is_monotonic_wall_time() {
        let transport = TcpTransport::new(1);
        let t0 = transport.now_us();
        std::thread::sleep(Duration::from_millis(2));
        assert!(transport.now_us() > t0);
        transport.advance_us(1_000_000); // no-op by contract
        assert!(transport.now_us() < 60_000_000);
    }
}
