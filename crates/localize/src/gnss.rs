//! GNSS fix simulation: outdoor-only, Gaussian-noised positions.

use crate::cues::LocationCue;
use openflame_geo::LatLng;
use rand::Rng;
use rand_distr_normal::sample_normal;

/// A GNSS receiver model.
///
/// Produces fixes with configurable horizontal error outdoors and *no*
/// fixes indoors — the availability gap that motivates venue-provided
/// localization in the paper (paper §2: "the availability of these
/// technologies is limited to outdoor locations for GPS").
#[derive(Debug, Clone, Copy)]
pub struct GnssModel {
    /// 1-sigma horizontal error outdoors, meters.
    pub sigma_m: f64,
}

impl Default for GnssModel {
    fn default() -> Self {
        // Typical consumer-phone GNSS error.
        Self { sigma_m: 4.0 }
    }
}

impl GnssModel {
    /// Samples a fix at the true position, or `None` when indoors.
    pub fn sample<R: Rng>(&self, rng: &mut R, truth: LatLng, indoors: bool) -> Option<LocationCue> {
        if indoors {
            return None;
        }
        let east = sample_normal(rng, 0.0, self.sigma_m);
        let north = sample_normal(rng, 0.0, self.sigma_m);
        let bearing = east.atan2(north).to_degrees();
        let dist = (east * east + north * north).sqrt();
        Some(LocationCue::Gnss {
            fix: truth.destination(bearing, dist),
            accuracy_m: self.sigma_m,
        })
    }
}

/// Minimal normal sampling via Box-Muller, avoiding a rand_distr
/// dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// Samples `N(mean, sigma²)`.
    pub fn sample_normal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
        // Box-Muller transform; u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + sigma * z
    }
}

pub use rand_distr_normal::sample_normal as normal_sample;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_fix_indoors() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = GnssModel::default();
        let p = LatLng::new(40.44, -79.94).unwrap();
        assert!(model.sample(&mut rng, p, true).is_none());
        assert!(model.sample(&mut rng, p, false).is_some());
    }

    #[test]
    fn error_statistics_match_sigma() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = GnssModel { sigma_m: 5.0 };
        let truth = LatLng::new(40.44, -79.94).unwrap();
        let n = 2000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let Some(LocationCue::Gnss { fix, .. }) = model.sample(&mut rng, truth, false) else {
                panic!("expected a fix");
            };
            sum_sq += truth.haversine_distance(fix).powi(2);
        }
        // E[d²] = 2σ² for 2-D Gaussian error.
        let rms = (sum_sq / n as f64).sqrt();
        let expected = (2.0f64).sqrt() * 5.0;
        assert!(
            (rms - expected).abs() < 0.6,
            "rms {rms} expected {expected}"
        );
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal_sample(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }
}
