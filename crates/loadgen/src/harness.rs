//! The open-loop driver: deployment setup, wall-clock pacing,
//! completion collection, report assembly (crate docs).

use crate::histogram::LogHistogram;
use openflame_codec::{from_bytes, to_bytes};
use openflame_core::{Deployment, DeploymentConfig};
use openflame_geo::Mercator;
use openflame_localize::LocationCue;
use openflame_mapserver::protocol::{Envelope, Request, Response};
use openflame_mapserver::{MapServer, Principal};
use openflame_netsim::{BackendKind, CallHandle, EndpointId};
use openflame_worldgen::{generate_trace, OpKind, OpMix, World, WorldConfig};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// Load-harness knobs.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Which real-socket backend to drive.
    pub backend: BackendKind,
    /// Logical sessions (distinct principals pacing independently).
    pub sessions: usize,
    /// Client transport endpoints the sessions ride on (connection
    /// pools are per endpoint; sessions share them like mobile clients
    /// behind carrier NATs share flows).
    pub client_endpoints: usize,
    /// Offered aggregate arrival rate, operations per second.
    pub rate_per_sec: f64,
    /// Trace duration, microseconds.
    pub duration_us: u64,
    /// Venues in the generated city.
    pub stores: usize,
    /// Collector threads claiming completions.
    pub collectors: usize,
    /// Trace and deployment RNG seed.
    pub seed: u64,
    /// When set, tightens every server's admission policy to this
    /// queue depth (default policies stay installed otherwise) — used
    /// to demonstrate shedding at smoke scale.
    pub max_depth: Option<usize>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            backend: BackendKind::Tcp,
            sessions: 1_000,
            client_endpoints: 32,
            rate_per_sec: 2_000.0,
            duration_us: 2_000_000,
            stores: 4,
            collectors: 4,
            seed: 7,
            max_depth: None,
        }
    }
}

/// Latency and outcome counters for one op class.
#[derive(Debug, Clone)]
pub struct OpClassReport {
    /// Stable op-class name (JSON key).
    pub name: &'static str,
    /// Operations served (answered with a real response).
    pub served: u64,
    /// Operations shed with `Response::Busy`.
    pub shed: u64,
    /// Operations that failed (wire error or `Response::Error`).
    pub errors: u64,
    /// Median served latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile served latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile served latency, microseconds.
    pub p999_us: u64,
    /// Mean served latency, microseconds.
    pub mean_us: u64,
    /// Worst served latency, microseconds.
    pub max_us: u64,
}

/// One backend's complete load-run result (crate docs; serialized by
/// [`LoadReport::to_json`] as the `BENCH_load.json` schema).
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Backend name (`tcp`, `quiclite`).
    pub backend: String,
    /// Logical sessions driven.
    pub sessions: usize,
    /// Client transport endpoints used.
    pub client_endpoints: usize,
    /// Offered arrival rate, ops/second.
    pub offered_rate_per_sec: f64,
    /// Configured trace duration, microseconds.
    pub duration_us: u64,
    /// Operations submitted (trace arrivals).
    pub ops_submitted: u64,
    /// Operations served.
    pub ops_served: u64,
    /// Operations shed with `Busy`.
    pub ops_shed: u64,
    /// Operations that errored.
    pub ops_errors: u64,
    /// Served throughput over the measured wall time, ops/second.
    pub throughput_per_sec: f64,
    /// Wall time from first scheduled arrival to last claimed
    /// completion, microseconds.
    pub wall_us: u64,
    /// The transport's own shed counter (must equal `ops_shed` when the
    /// harness is the only traffic).
    pub transport_shed_requests: u64,
    /// Highest dispatch-queue depth any server endpoint reached.
    pub max_dispatch_depth: usize,
    /// Transport worker threads (the O(cores) claim under test).
    pub transport_worker_threads: usize,
    /// OS threads in the whole process at the end of the run.
    pub process_threads: usize,
    /// Per-op-class latency and outcome breakdown, in
    /// [`OpKind::ALL`] order.
    pub per_op: Vec<OpClassReport>,
}

/// One in-flight operation handed from the submitter to a collector.
struct InFlight {
    op: OpKind,
    /// Generator lag: actual submit instant minus scheduled arrival,
    /// microseconds (charged to the op's latency — open-loop
    /// accounting).
    lag_us: u64,
    handle: CallHandle,
}

/// A collector's local tallies for one op class, merged after join.
#[derive(Default)]
struct OpTally {
    histogram: Option<LogHistogram>,
    shed: u64,
    errors: u64,
}

fn op_index(op: OpKind) -> usize {
    OpKind::ALL
        .iter()
        .position(|k| *k == op)
        .expect("ALL lists every op kind")
}

/// Runs one load trace against one backend and reports (crate docs).
pub fn run(config: &LoadConfig) -> LoadReport {
    assert!(config.sessions > 0 && config.client_endpoints > 0 && config.collectors > 0);
    let transport = config.backend.build(config.seed);
    let world = World::generate(WorldConfig {
        stores: config.stores,
        ..WorldConfig::default()
    });
    let deployment = Deployment::build_on(
        transport.clone(),
        world,
        DeploymentConfig {
            backend: config.backend,
            net_seed: config.seed,
            ..DeploymentConfig::default()
        },
    );
    let server_endpoints: Vec<EndpointId> = deployment
        .venue_servers
        .iter()
        .map(|s| s.endpoint())
        .chain([deployment.outdoor_server.endpoint()])
        .collect();
    if let Some(max_depth) = config.max_depth {
        for &endpoint in &server_endpoints {
            transport
                .set_overload_policy(endpoint, Some(MapServer::overload_policy(max_depth, 2_000)));
        }
    }
    let clients: Vec<EndpointId> = (0..config.client_endpoints)
        .map(|i| transport.register(&format!("load-client-{i}"), None))
        .collect();

    // Pre-generate and pre-encode the whole trace: the pacing loop
    // below must not spend arrival gaps on codec work.
    let trace = generate_trace(
        &deployment.world,
        config.sessions,
        config.rate_per_sec,
        config.duration_us,
        &OpMix::default(),
        config.seed,
    );
    let outdoor = deployment.outdoor_server.endpoint();
    let encoded: Vec<(u64, EndpointId, EndpointId, OpKind, Vec<u8>)> = trace
        .iter()
        .map(|event| {
            let venue = &deployment.world.venues[event.venue];
            let product = &deployment.world.products[event.product];
            let (to, request) = match event.op {
                OpKind::Search => (
                    deployment.venue_servers[event.venue].endpoint(),
                    Request::Search {
                        query: product.name.clone(),
                        center: None,
                        radius_m: f64::INFINITY,
                        k: 3,
                    },
                ),
                OpKind::Route => (
                    deployment.venue_servers[product.venue].endpoint(),
                    Request::Route {
                        from: deployment.world.venues[product.venue].entrance_local.0,
                        to: product.shelf.0,
                    },
                ),
                OpKind::Localize => (
                    outdoor,
                    Request::Localize {
                        cues: vec![LocationCue::Gnss {
                            fix: venue.hint,
                            accuracy_m: 10.0,
                        }],
                    },
                ),
                OpKind::Tile => {
                    let (x, y) = Mercator::tile_for(venue.hint, 15);
                    (outdoor, Request::GetTile { z: 15, x, y })
                }
            };
            let payload = to_bytes(&Envelope {
                principal: Principal::user(format!("s{}@load.test", event.session)),
                request,
            })
            .to_vec();
            (
                event.at_us,
                clients[event.session % clients.len()],
                to,
                event.op,
                payload,
            )
        })
        .collect();
    let ops_submitted = encoded.len() as u64;

    // Collector pool: claim completions, classify, tally locally.
    let (tx, rx) = mpsc::channel::<InFlight>();
    let rx = std::sync::Arc::new(openflame_diag::OrderedMutex::new(
        openflame_diag::ranks::LOADGEN_COLLECTOR_QUEUE,
        rx,
    ));
    let collectors: Vec<thread::JoinHandle<Vec<OpTally>>> = (0..config.collectors)
        .map(|_| {
            let rx = rx.clone();
            thread::spawn(move || {
                let mut tallies: Vec<OpTally> =
                    (0..OpKind::ALL.len()).map(|_| OpTally::default()).collect();
                loop {
                    let in_flight = match rx.lock().recv() {
                        Ok(in_flight) => in_flight,
                        Err(_) => return tallies,
                    };
                    let tally = &mut tallies[op_index(in_flight.op)];
                    match in_flight.handle.wait() {
                        Err(_) => tally.errors += 1,
                        Ok(transfer) => match from_bytes::<Response>(&transfer.payload) {
                            Ok(Response::Busy { .. }) => tally.shed += 1,
                            Ok(Response::Error { .. }) | Err(_) => tally.errors += 1,
                            Ok(_) => tally
                                .histogram
                                .get_or_insert_with(LogHistogram::new)
                                .record(in_flight.lag_us + transfer.latency_us),
                        },
                    }
                }
            })
        })
        .collect();

    // Open-loop submitter: pace the trace on the wall clock; never
    // wait for responses.
    let t0 = Instant::now();
    for (at_us, from, to, op, payload) in encoded {
        let scheduled = Duration::from_micros(at_us);
        loop {
            let now = t0.elapsed();
            if now >= scheduled {
                break;
            }
            thread::sleep((scheduled - now).min(Duration::from_millis(1)));
        }
        let lag_us = (t0.elapsed() - scheduled).as_micros() as u64;
        let handle = transport.submit(from, to, payload);
        let _ = tx.send(InFlight { op, lag_us, handle });
    }
    drop(tx);
    let mut merged: Vec<OpTally> = (0..OpKind::ALL.len()).map(|_| OpTally::default()).collect();
    for collector in collectors {
        for (into, from) in merged.iter_mut().zip(collector.join().expect("collector")) {
            if let Some(histogram) = from.histogram {
                into.histogram
                    .get_or_insert_with(LogHistogram::new)
                    .merge(&histogram);
            }
            into.shed += from.shed;
            into.errors += from.errors;
        }
    }
    let wall_us = t0.elapsed().as_micros() as u64;

    let per_op: Vec<OpClassReport> = OpKind::ALL
        .iter()
        .zip(&merged)
        .map(|(kind, tally)| {
            let empty = LogHistogram::new();
            let histogram = tally.histogram.as_ref().unwrap_or(&empty);
            OpClassReport {
                name: kind.name(),
                served: histogram.count(),
                shed: tally.shed,
                errors: tally.errors,
                p50_us: histogram.quantile_us(0.5),
                p99_us: histogram.quantile_us(0.99),
                p999_us: histogram.quantile_us(0.999),
                mean_us: histogram.mean_us(),
                max_us: histogram.max_us(),
            }
        })
        .collect();
    let ops_served: u64 = per_op.iter().map(|op| op.served).sum();
    let ops_shed: u64 = per_op.iter().map(|op| op.shed).sum();
    let ops_errors: u64 = per_op.iter().map(|op| op.errors).sum();
    LoadReport {
        backend: transport.kind().to_string(),
        sessions: config.sessions,
        client_endpoints: config.client_endpoints,
        offered_rate_per_sec: config.rate_per_sec,
        duration_us: config.duration_us,
        ops_submitted,
        ops_served,
        ops_shed,
        ops_errors,
        throughput_per_sec: ops_served as f64 / (wall_us.max(1) as f64 / 1_000_000.0),
        wall_us,
        transport_shed_requests: transport.shed_requests(),
        max_dispatch_depth: server_endpoints
            .iter()
            .map(|&e| transport.dispatch_depth(e))
            .max()
            .unwrap_or(0),
        transport_worker_threads: transport.worker_threads(),
        process_threads: process_threads(),
        per_op,
    }
}

/// OS threads in this process, from `/proc/self/status` (0 where the
/// procfs layout is unavailable).
pub fn process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("Threads:")
                    .and_then(|rest| rest.trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

impl LoadReport {
    /// Serializes the report as one stable-schema JSON object (the
    /// `BENCH_load.json` contract: every key here is load-bearing for
    /// CI's sanity greps — rename nothing casually).
    pub fn to_json(&self) -> String {
        let mut ops = String::new();
        for (i, op) in self.per_op.iter().enumerate() {
            if i > 0 {
                ops.push(',');
            }
            ops.push_str(&format!(
                "\"{}\":{{\"served\":{},\"shed\":{},\"errors\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\"mean_us\":{},\"max_us\":{}}}",
                op.name, op.served, op.shed, op.errors, op.p50_us, op.p99_us, op.p999_us,
                op.mean_us, op.max_us
            ));
        }
        format!(
            "{{\"bench\":\"load\",\"backend\":\"{}\",\"sessions\":{},\"client_endpoints\":{},\"offered_rate_per_sec\":{:.1},\"duration_us\":{},\"ops_submitted\":{},\"ops_served\":{},\"ops_shed\":{},\"ops_errors\":{},\"throughput_per_sec\":{:.1},\"wall_us\":{},\"transport_shed_requests\":{},\"max_dispatch_depth\":{},\"transport_worker_threads\":{},\"process_threads\":{},\"ops\":{{{}}}}}",
            self.backend,
            self.sessions,
            self.client_endpoints,
            self.offered_rate_per_sec,
            self.duration_us,
            self.ops_submitted,
            self.ops_served,
            self.ops_shed,
            self.ops_errors,
            self.throughput_per_sec,
            self.wall_us,
            self.transport_shed_requests,
            self.max_dispatch_depth,
            self.transport_worker_threads,
            self.process_threads,
            ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config(backend: BackendKind) -> LoadConfig {
        LoadConfig {
            backend,
            sessions: 1_000,
            client_endpoints: 8,
            rate_per_sec: 600.0,
            duration_us: 500_000,
            stores: 2,
            collectors: 2,
            seed: 7,
            max_depth: None,
        }
    }

    fn assert_sane(report: &LoadReport, backend: &str) {
        assert_eq!(report.backend, backend);
        assert_eq!(report.sessions, 1_000);
        assert!(report.ops_submitted > 100, "trace too short");
        assert_eq!(
            report.ops_served + report.ops_shed + report.ops_errors,
            report.ops_submitted,
            "every submitted op must be accounted for"
        );
        assert_eq!(report.ops_errors, 0, "healthy run must not error");
        assert!(report.throughput_per_sec > 0.0);
        // Latency histograms carry real quantiles for every op class
        // that ran.
        for op in &report.per_op {
            if op.served > 0 {
                assert!(op.p50_us > 0 && op.p50_us <= op.p99_us && op.p99_us <= op.p999_us);
            }
        }
        // The dispatch gauge observed traffic even without shedding.
        assert!(report.max_dispatch_depth >= 1);
        // The O(cores) claim: a thousand sessions, bounded threads.
        assert!(
            report.transport_worker_threads > 0
                && report.transport_worker_threads < report.sessions / 10
        );
        let json = report.to_json();
        for key in [
            "\"bench\":\"load\"",
            "\"sessions\":1000",
            "\"p50_us\"",
            "\"p99_us\"",
            "\"p999_us\"",
            "\"ops_shed\"",
            "\"transport_shed_requests\"",
        ] {
            assert!(json.contains(key), "JSON schema lost key {key}: {json}");
        }
    }

    #[test]
    fn tcp_smoke_run_reports_sane_quantiles_and_schema() {
        let report = run(&smoke_config(BackendKind::Tcp));
        assert_sane(&report, "tcp");
    }

    #[test]
    fn quiclite_smoke_run_reports_sane_quantiles_and_schema() {
        let report = run(&smoke_config(BackendKind::QuicLite));
        assert_sane(&report, "quiclite");
    }

    #[test]
    fn tightened_admission_sheds_and_accounts_for_every_op() {
        let config = LoadConfig {
            max_depth: Some(1),
            rate_per_sec: 1_500.0,
            ..smoke_config(BackendKind::Tcp)
        };
        let report = run(&config);
        assert_eq!(
            report.ops_served + report.ops_shed + report.ops_errors,
            report.ops_submitted
        );
        assert!(
            report.ops_shed > 0,
            "a depth-1 queue at 1500 ops/s must shed"
        );
        assert_eq!(report.transport_shed_requests, report.ops_shed);
    }
}
