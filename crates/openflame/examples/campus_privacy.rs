//! The paper §5.3 security model in action: user-, service- and
//! application-level access control on a campus map server.
//!
//! Run with: `cargo run --release --example campus_privacy`

use openflame_core::{Deployment, DeploymentConfig, OpenFlameClient};
use openflame_localize::{LocationCue, RadioMap};
use openflame_mapserver::{AccessPolicy, Principal, Rule, ServiceKind};
use openflame_worldgen::{World, WorldConfig};

fn main() {
    // The campus policy from the paper:
    //  - tiles for everyone (so anyone can view the map),
    //  - search only for people with a university identity,
    //  - localization only through the official campus-nav app.
    let policy = AccessPolicy::locked()
        .with(ServiceKind::Info, vec![Rule::AllowAll])
        .with(ServiceKind::Tiles, vec![Rule::AllowAll])
        .with(
            ServiceKind::Search,
            vec![Rule::AllowUserDomain("@cmu.edu".into()), Rule::DenyAll],
        )
        .with(
            ServiceKind::Route,
            vec![Rule::AllowUserDomain("@cmu.edu".into()), Rule::DenyAll],
        )
        .with(
            ServiceKind::Localize,
            vec![Rule::AllowApp("campus-nav".into()), Rule::DenyAll],
        );
    let world = World::generate(WorldConfig {
        stores: 4,
        ..WorldConfig::default()
    });
    let dep = Deployment::build(
        world,
        DeploymentConfig {
            venue_policy: policy,
            ..DeploymentConfig::default()
        },
    );
    let venue = dep.world.venues[0].clone();
    let product = dep.world.products[1].clone();
    println!(
        "campus venue: {} (policy: locked down per paper §5.3)\n",
        venue.name
    );

    let radio = RadioMap::survey(
        venue.beacons.clone(),
        openflame_geo::Point2::new(-5.0, -5.0),
        openflame_geo::Point2::new(60.0, 45.0),
        2.0,
    );
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let beacon_cue = radio.observe(&mut rng, openflame_geo::Point2::new(10.0, 8.0), 2.0);

    let identities: [(&str, Principal); 4] = [
        ("anonymous visitor", Principal::anonymous()),
        ("gmail user", Principal::user("alice@gmail.com")),
        (
            "cmu student (own app)",
            Principal::user_via_app("bob@cmu.edu", "my-hack"),
        ),
        (
            "cmu student (campus-nav)",
            Principal::user_via_app("bob@cmu.edu", "campus-nav"),
        ),
    ];
    println!(
        "{:<28} {:>8} {:>8} {:>10}",
        "identity", "search", "route", "localize"
    );
    for (label, principal) in identities {
        // One client per identity: principals are builder-time
        // configuration, not mutable state.
        let client = OpenFlameClient::builder()
            .principal(principal)
            .build_on(dep.transport.clone(), dep.resolver.clone());
        let search_ok = client
            .federated_search(&product.name, venue.hint, 3)
            .map(|hits| hits.iter().any(|h| h.result.label == product.name))
            .unwrap_or(false);
        let route_ok = if search_ok {
            let hit = client
                .federated_search(&product.name, venue.hint, 3)
                .unwrap()
                .into_iter()
                .find(|h| h.result.label == product.name)
                .unwrap();
            client
                .federated_route(venue.hint.destination(200.0, 80.0), &hit)
                .is_ok()
        } else {
            false
        };
        let localize_ok = client
            .federated_localize(venue.hint, std::slice::from_ref(&beacon_cue))
            .map(|ests| ests.iter().any(|(sid, _)| sid.starts_with("venue-")))
            .unwrap_or(false);
        println!("{label:<28} {search_ok:>8} {route_ok:>8} {localize_ok:>10}");
    }

    // Tiles remain open to everyone (service-level separation).
    let gps = LocationCue::Gnss {
        fix: dep.world.config.center,
        accuracy_m: 4.0,
    };
    let outdoor = dep
        .client
        .federated_localize(dep.world.config.center, &[gps])
        .unwrap();
    println!(
        "\nanonymous outdoor localization still works via the public world map: {}",
        !outdoor.is_empty()
    );
    let denied = dep.venue_servers[0].stats().denied;
    println!("requests denied by the campus server during this demo: {denied}");
    println!("\nA centralized provider could not express any of this: its data is");
    println!("either fully public or absent (paper §5.3).");
}
