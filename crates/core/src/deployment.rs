//! One-call setup of a complete federated deployment.
//!
//! Builds the whole Figure-2 stack over a generated world: the DNS
//! hierarchy (root → `flame.` → `cell.flame.` → optional per-area shard
//! zones), a caching resolver, the outdoor world-map provider, one map
//! server per venue with its covering registered in DNS, and an
//! [`OpenFlameClient`].
//!
//! The whole stack is built on one [`Transport`]: pick
//! [`BackendKind::Sim`] (the default — deterministic discrete-event
//! simulation), [`BackendKind::Tcp`] (every DNS server, map server
//! and client on real loopback sockets) or [`BackendKind::QuicLite`]
//! (QUIC-inspired reliable datagrams: 0-RTT resumption, loss
//! recovery) via [`DeploymentConfig::backend`], or hand
//! [`Deployment::build_on`] a transport you constructed yourself.

use crate::client::OpenFlameClient;
use crate::fleet::{plan_venue_shards, ShardPlan};
use crate::ClientError;
use openflame_cells::{CellId, Region, RegionCoverer};
use openflame_dns::{
    AuthServer, DomainName, FleetReplica, FleetShard, Record, RecordData, Resolver, ResolverConfig,
    Zone,
};
use openflame_localize::TagRegistry;
use openflame_mapdata::{MapDocument, NodeId, Tags};
use openflame_mapserver::naming::{cell_to_name, cell_to_wildcard, SPATIAL_ROOT};
use openflame_mapserver::{AccessPolicy, MapServer, MapServerConfig, Principal};
use openflame_netsim::{BackendKind, Transport};
use openflame_search::SEARCHABLE_VALUE_KEYS;
use openflame_worldgen::World;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;

/// Deployment knobs.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Network RNG seed (latency jitter and drop injection).
    pub net_seed: u64,
    /// Which wire backend carries the deployment's traffic.
    pub backend: BackendKind,
    /// Cell level for zone coverings (E3 sweeps this).
    pub covering_level: u8,
    /// Cell level at which the spatial zone is sharded across
    /// authoritative servers (delegation cuts).
    pub shard_level: u8,
    /// Number of authoritative shard servers (1 = no sharding; E10
    /// sweeps this).
    pub dns_shards: usize,
    /// Resolver configuration.
    pub resolver: ResolverConfig,
    /// Access policy installed on every venue server.
    pub venue_policy: AccessPolicy,
    /// Whether servers precompute contraction hierarchies.
    pub build_ch: bool,
    /// Replicas per content shard of each venue fleet. `1` (with
    /// `content_shards: 1`) keeps the classic one-server-per-venue
    /// deployment; anything larger spins every venue up as a fleet
    /// advertised through `FLEETSRV` records.
    pub replicas: usize,
    /// Spatial content shards per venue fleet (skew-aware split of the
    /// venue's searchable documents; see
    /// [`crate::fleet::plan_venue_shards`]).
    pub content_shards: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            net_seed: 7,
            backend: BackendKind::Sim,
            covering_level: 13,
            shard_level: 11,
            dns_shards: 1,
            resolver: ResolverConfig::default(),
            venue_policy: AccessPolicy::open(),
            build_ch: false,
            replicas: 1,
            content_shards: 1,
        }
    }
}

impl DeploymentConfig {
    /// Whether venues deploy as replicated + sharded fleets.
    pub fn fleet_mode(&self) -> bool {
        self.replicas.max(1) > 1 || self.content_shards.max(1) > 1
    }
}

/// One member server of a venue's serving fleet.
#[derive(Clone)]
pub struct FleetMember {
    /// Venue index (into `world.venues`).
    pub venue: usize,
    /// Content-shard index within the venue.
    pub shard: usize,
    /// Replica index within the shard.
    pub replica: usize,
    /// The running map server.
    pub server: Arc<MapServer>,
}

/// A running federated deployment.
pub struct Deployment {
    /// The wire transport everything runs on (simulated or real TCP;
    /// stats, clock and failure injection all live here).
    pub transport: Arc<dyn Transport>,
    /// The generated world (ground truth).
    pub world: World,
    /// Root DNS server.
    pub root_dns: Arc<AuthServer>,
    /// `flame.` TLD server.
    pub tld_dns: Arc<AuthServer>,
    /// `cell.flame.` parent server (holds delegations when sharded).
    pub cell_dns: Arc<AuthServer>,
    /// Shard servers hosting delegated per-area zones.
    pub shard_dns: Vec<Arc<AuthServer>>,
    /// The shared caching resolver.
    pub resolver: Arc<Resolver>,
    /// The outdoor world-map provider (anchored).
    pub outdoor_server: Arc<MapServer>,
    /// One server per venue, same order as `world.venues` (empty in
    /// fleet mode, where venues are served by `fleet_servers`).
    pub venue_servers: Vec<Arc<MapServer>>,
    /// Fleet member servers (empty outside fleet mode): every
    /// venue × shard × replica, in that nesting order.
    pub fleet_servers: Vec<FleetMember>,
    /// The OpenFLAME client.
    pub client: OpenFlameClient,
    /// Which shard each delegated cell zone landed on.
    pub shard_of_cell: HashMap<CellId, usize>,
    config: DeploymentConfig,
}

impl Deployment {
    /// Builds and wires the whole deployment on the backend named by
    /// [`DeploymentConfig::backend`].
    pub fn build(world: World, config: DeploymentConfig) -> Self {
        let transport = config.backend.build(config.net_seed);
        Self::build_on(transport, world, config)
    }

    /// Builds and wires the whole deployment on a caller-supplied
    /// transport (any [`Transport`] implementation).
    pub fn build_on(transport: Arc<dyn Transport>, world: World, config: DeploymentConfig) -> Self {
        // ---- DNS hierarchy.
        let spatial_root = DomainName::parse(SPATIAL_ROOT).expect("constant parses");
        let cell_dns = AuthServer::spawn_on(
            &transport,
            "cell-zone",
            vec![Zone::new(spatial_root.clone())],
        );
        let shard_dns: Vec<Arc<AuthServer>> = (0..config.dns_shards.max(1))
            .skip(1)
            .map(|i| AuthServer::spawn_on(&transport, format!("cell-shard{i}"), Vec::new()))
            .collect();
        let mut tld_zone = Zone::new(DomainName::parse("flame.").expect("valid"));
        tld_zone.delegate(
            spatial_root.clone(),
            DomainName::parse("ns.cell.flame.").expect("valid"),
            cell_dns.endpoint().0,
        );
        let tld_dns = AuthServer::spawn_on(&transport, "flame-tld", vec![tld_zone]);
        let mut root_zone = Zone::new(DomainName::root());
        root_zone.delegate(
            DomainName::parse("flame.").expect("valid"),
            DomainName::parse("ns.flame.").expect("valid"),
            tld_dns.endpoint().0,
        );
        let root_dns = AuthServer::spawn_on(&transport, "root", vec![root_zone]);
        let resolver = Arc::new(Resolver::with_config_on(
            transport.clone(),
            "campus-resolver",
            vec![root_dns.endpoint()],
            config.resolver,
        ));

        // ---- Map servers.
        let outdoor_server = MapServer::spawn_on(
            &transport,
            MapServerConfig {
                id: "world-map".into(),
                map: world.outdoor.clone(),
                beacons: Vec::new(),
                tags: TagRegistry::new(),
                policy: AccessPolicy::open(),
                portals: Vec::new(),
                location_hint: world.config.center,
                radius_m: crate::centralized::city_radius(&world),
                build_ch: config.build_ch,
            },
        );
        let mut venue_servers = Vec::with_capacity(world.venues.len());
        let mut fleet_servers: Vec<FleetMember> = Vec::new();
        let mut venue_plans: Vec<Vec<ShardPlan>> = Vec::new();
        let fleet_mode = config.fleet_mode();
        let shards_per_venue = config.content_shards.max(1);
        let replicas_per_shard = config.replicas.max(1);
        for (i, venue) in world.venues.iter().enumerate() {
            let city = world.city_frame();
            let entrance_outdoor_geo = city.from_local(
                world
                    .outdoor
                    .node(venue.entrance_outdoor)
                    .expect("entrance exists")
                    .pos,
            );
            let server_config = |id: String, map: MapDocument| MapServerConfig {
                id,
                map,
                beacons: venue.beacons.clone(),
                tags: venue.tags.clone(),
                policy: config.venue_policy.clone(),
                portals: vec![(venue.entrance_local, entrance_outdoor_geo)],
                location_hint: venue.hint,
                radius_m: venue.radius_m,
                build_ch: config.build_ch,
            };
            if !fleet_mode {
                venue_servers.push(MapServer::spawn_on(
                    &transport,
                    server_config(format!("venue-{i}"), venue.map.clone()),
                ));
                continue;
            }
            // Fleet mode: split the venue's searchable content into
            // spatial shards (skew-aware equal-count cuts), then spawn
            // every shard × replica. Structure, ways, beacons and
            // portals are replicated whole — only searchable content is
            // partitioned, by stripping searchable keys from
            // out-of-shard nodes.
            let plans = plan_venue_shards(&world, i, shards_per_venue, |id| {
                venue
                    .map
                    .node(NodeId(id))
                    .is_some_and(|n| has_searchable(&n.tags))
            });
            for (k, plan) in plans.iter().enumerate() {
                let owned: HashSet<u64> = plan.members.iter().copied().collect();
                let doc = shard_document(&venue.map, &owned);
                for r in 0..replicas_per_shard {
                    let server = MapServer::spawn_on(
                        &transport,
                        server_config(format!("venue-{i}/s{k}r{r}"), doc.clone()),
                    );
                    fleet_servers.push(FleetMember {
                        venue: i,
                        shard: k,
                        replica: r,
                        server,
                    });
                }
            }
            venue_plans.push(plans);
        }

        let client = OpenFlameClient::builder()
            .principal(Principal::anonymous())
            .world_provider(outdoor_server.endpoint())
            .build_on(transport.clone(), resolver.clone());
        let mut deployment = Self {
            transport,
            world,
            root_dns,
            tld_dns,
            cell_dns,
            shard_dns,
            resolver,
            outdoor_server,
            venue_servers,
            fleet_servers,
            client,
            shard_of_cell: HashMap::new(),
            config,
        };
        // ---- Registrations.
        let outdoor = deployment.outdoor_server.clone();
        deployment.register(&outdoor);
        let venues: Vec<Arc<MapServer>> = deployment.venue_servers.clone();
        for server in &venues {
            deployment.register(server);
        }
        for (venue_idx, plans) in venue_plans.iter().enumerate() {
            deployment.register_fleet(venue_idx, plans);
        }
        deployment
    }

    /// The deployment configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Registers a server's covering, sharding zones if configured.
    pub fn register(&mut self, server: &MapServer) {
        let region = Region::Cap {
            center: server.location_hint(),
            radius_m: server.radius_m(),
        };
        let cells = RegionCoverer::default().covering_at_level(&region, self.config.covering_level);
        let data = RecordData::MapSrv {
            endpoint: server.endpoint().0,
            server_id: server.id().to_string(),
            services: advertised_services(server),
        };
        self.install_records(&cells, &data);
    }

    /// Registers a venue fleet: one `FLEETSRV` record per covering
    /// cell, carrying the full replica-set + shard-map advertisement
    /// (`docs/wire-protocol.md` spec §9). Fleet venues do **not** get
    /// per-replica `MAPSRV` records — the client's shard-aware scatter
    /// is the only path to them, which keeps wire cost a function of
    /// shards consulted rather than fleet size.
    pub fn register_fleet(&mut self, venue_idx: usize, plans: &[ShardPlan]) {
        let venue = &self.world.venues[venue_idx];
        let region = Region::Cap {
            center: venue.hint,
            radius_m: venue.radius_m,
        };
        let cells = RegionCoverer::default().covering_at_level(&region, self.config.covering_level);
        let members: Vec<&FleetMember> = self
            .fleet_servers
            .iter()
            .filter(|m| m.venue == venue_idx)
            .collect();
        let services = advertised_services(
            &members
                .first()
                .expect("fleet mode spawned members for every venue")
                .server,
        );
        let shards: Vec<FleetShard> = plans
            .iter()
            .enumerate()
            .map(|(k, plan)| FleetShard {
                extents: plan.extents.iter().map(|c| c.raw()).collect(),
                replicas: members
                    .iter()
                    .filter(|m| m.shard == k)
                    .map(|m| FleetReplica {
                        endpoint: m.server.endpoint().0,
                        server_id: m.server.id().to_string(),
                    })
                    .collect(),
            })
            .collect();
        let data = RecordData::FleetSrv {
            group_id: format!("venue-{venue_idx}"),
            services,
            shards,
        };
        self.install_records(&cells, &data);
    }

    /// Installs `data` at every cell's exact and wildcard names,
    /// routing each record to the cell's DNS shard zone (creating the
    /// zone and its delegation on first touch) when sharding is on.
    fn install_records(&mut self, cells: &[CellId], data: &RecordData) {
        let total_shards = self.config.dns_shards.max(1);
        for &cell in cells {
            let exact = cell_to_name(cell);
            let wildcard = cell_to_wildcard(cell);
            if total_shards == 1 {
                self.cell_dns.with_zones_mut(|zones| {
                    zones[0].add(Record::new(exact.clone(), 300, data.clone()));
                    zones[0].add(Record::new(wildcard.clone(), 300, data.clone()));
                });
                continue;
            }
            // Sharded: the record lives in the zone of the cell's
            // shard-level ancestor, delegated from the parent zone.
            let shard_cell = cell
                .parent_at(self.config.shard_level.min(cell.level()))
                .expect("ancestor exists");
            // Cell ids have long runs of zero low bits (the sentinel
            // layout), so mix before reducing modulo the shard count.
            let shard_idx = (shard_cell.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize
                % total_shards;
            let zone_origin = cell_to_name(shard_cell);
            // Shard 0 is the parent server itself.
            let host: &Arc<AuthServer> = if shard_idx == 0 {
                &self.cell_dns
            } else {
                &self.shard_dns[shard_idx - 1]
            };
            if let std::collections::hash_map::Entry::Vacant(e) =
                self.shard_of_cell.entry(shard_cell)
            {
                e.insert(shard_idx);
                host.with_zones_mut(|zones| zones.push(Zone::new(zone_origin.clone())));
                if shard_idx != 0 {
                    let ns_host = zone_origin.child("ns").expect("valid label");
                    let glue = host.endpoint().0;
                    self.cell_dns.with_zones_mut(|zones| {
                        zones[0].delegate(zone_origin.clone(), ns_host, glue);
                    });
                }
            }
            host.with_zones_mut(|zones| {
                let zone = zones
                    .iter_mut()
                    .find(|z| z.origin() == &zone_origin)
                    .expect("zone created above");
                zone.add(Record::new(exact.clone(), 300, data.clone()));
                zone.add(Record::new(wildcard.clone(), 300, data.clone()));
            });
        }
    }

    /// Convenience: the venue server index discovered for a product, by
    /// searching the federation.
    pub fn find_product(
        &self,
        product_name: &str,
        near: openflame_geo::LatLng,
    ) -> Result<crate::client::FederatedSearchHit, ClientError> {
        let hits = self.client.federated_search(product_name, near, 5)?;
        hits.into_iter()
            .next()
            .ok_or_else(|| ClientError::NotFound(format!("product {product_name:?}")))
    }
}

/// The DNS-advertised service list for a server: its wire services
/// plus one `localize:<tech>` entry per localization technique.
fn advertised_services(server: &MapServer) -> Vec<String> {
    let hello = server.hello();
    hello
        .services
        .iter()
        .cloned()
        .chain(
            hello
                .localization_techs
                .iter()
                .map(|t| format!("localize:{t}")),
        )
        .collect()
}

/// Whether a node carries searchable content — the unit the fleet's
/// content sharding partitions.
fn has_searchable(tags: &Tags) -> bool {
    SEARCHABLE_VALUE_KEYS.iter().any(|k| tags.get(k).is_some())
}

/// A shard's copy of a venue map: structure, ways and geometry stay
/// whole (every replica can route and localize), but searchable keys
/// are stripped from content nodes the shard does not own, so they
/// vanish from this shard's search index while remaining routable.
fn shard_document(full: &MapDocument, owned: &HashSet<u64>) -> MapDocument {
    let mut doc = full.clone();
    let strip: Vec<(NodeId, Tags)> = doc
        .nodes()
        .filter(|n| has_searchable(&n.tags) && !owned.contains(&n.id.0))
        .map(|n| {
            let mut tags = n.tags.clone();
            for key in SEARCHABLE_VALUE_KEYS {
                tags.remove(key);
            }
            (n.id, tags)
        })
        .collect();
    for (id, tags) in strip {
        doc.set_node_tags(id, tags).expect("node exists");
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_worldgen::WorldConfig;

    #[test]
    fn deployment_builds_and_registers() {
        let dep = Deployment::build(
            World::generate(WorldConfig::default()),
            DeploymentConfig::default(),
        );
        assert_eq!(dep.venue_servers.len(), dep.world.venues.len());
        let records = dep.cell_dns.record_count();
        assert!(records > 0, "registrations must land in the cell zone");
    }

    #[test]
    fn tcp_deployment_builds_and_discovers_over_real_sockets() {
        let dep = Deployment::build(
            World::generate(WorldConfig {
                stores: 2,
                ..WorldConfig::default()
            }),
            DeploymentConfig {
                backend: openflame_netsim::BackendKind::Tcp,
                ..DeploymentConfig::default()
            },
        );
        assert_eq!(dep.transport.kind(), "tcp");
        let hint = dep.world.venues[0].hint;
        // Discovery walks the real-TCP DNS hierarchy.
        let found = dep.client.discovery().discover(hint, true).unwrap();
        assert!(found.iter().any(|s| s.server_id == "venue-0"));
        assert!(found.iter().any(|s| s.server_id == "world-map"));
        assert!(dep.transport.stats().messages > 0);
    }

    #[test]
    fn sharded_deployment_distributes_zones() {
        let dep = Deployment::build(
            World::generate(WorldConfig::default()),
            DeploymentConfig {
                dns_shards: 4,
                ..DeploymentConfig::default()
            },
        );
        assert_eq!(dep.shard_dns.len(), 3, "shard 0 is the parent server");
        // Discovery still works through delegations.
        let hint = dep.world.venues[0].hint;
        let found = dep.client.discovery().discover(hint, true).unwrap();
        assert!(found.iter().any(|s| s.server_id.starts_with("venue-0")));
    }

    #[test]
    fn fleet_deployment_spawns_shards_and_replicas() {
        let config = DeploymentConfig {
            replicas: 2,
            content_shards: 3,
            ..DeploymentConfig::default()
        };
        assert!(config.fleet_mode());
        let dep = Deployment::build(World::generate(WorldConfig::default()), config);
        assert!(dep.venue_servers.is_empty(), "fleet mode replaces venues");
        assert_eq!(
            dep.fleet_servers.len(),
            dep.world.venues.len() * 3 * 2,
            "every venue spawns shards × replicas members"
        );
        // Discovery surfaces the fleet advertisement, not per-replica
        // MAPSRV records.
        let hint = dep.world.venues[0].hint;
        let view = dep.client.discovery().discover_view(hint, true).unwrap();
        let fleet = view
            .fleets
            .iter()
            .find(|f| f.group_id == "venue-0")
            .expect("venue-0 fleet advertised");
        assert_eq!(fleet.shards.len(), 3);
        assert!(fleet.shards.iter().all(|s| s.replicas.len() == 2));
        assert!(
            !view
                .servers
                .iter()
                .any(|s| s.server_id.starts_with("venue")),
            "fleet members must not appear as plain MAPSRV servers"
        );
    }

    #[test]
    fn fleet_deployment_search_finds_sharded_content() {
        let dep = Deployment::build(
            World::generate(WorldConfig::default()),
            DeploymentConfig {
                replicas: 2,
                content_shards: 2,
                ..DeploymentConfig::default()
            },
        );
        // Every generated product is owned by exactly one content
        // shard; federated search must still surface it, attributed to
        // a member of the owning venue's fleet.
        for product in dep.world.products.iter().take(3) {
            let hint = dep.world.venues[product.venue].hint;
            let hit = dep.find_product(&product.name, hint).unwrap();
            assert_eq!(hit.result.label, product.name);
            assert!(
                hit.server_id
                    .starts_with(&format!("venue-{}/s", product.venue)),
                "hit {:?} must come from venue {}'s fleet",
                hit.server_id,
                product.venue
            );
        }
    }

    #[test]
    fn full_text_search_through_deployment() {
        let dep = Deployment::build(
            World::generate(WorldConfig::default()),
            DeploymentConfig::default(),
        );
        let product = &dep.world.products[0];
        let hint = dep.world.venues[product.venue].hint;
        let hit = dep.find_product(&product.name, hint).unwrap();
        assert_eq!(hit.result.label, product.name);
        assert_eq!(hit.server_id, format!("venue-{}", product.venue));
    }
}
