//! Contraction hierarchies: preprocessing-based fast shortest paths.
//!
//! The centralized map model (paper §4.1) preprocesses the routing graph with
//! contraction hierarchies "which makes routing queries faster to
//! compute" (citing Geisberger et al., ref. 11). This module implements
//! the algorithm from scratch:
//!
//! - **Preprocessing**: nodes are contracted in priority order (edge
//!   difference + contracted-neighbor count, with lazy re-evaluation).
//!   Contracting node `v` inserts a shortcut `u → w` for each pair of
//!   neighbors whose shortest connection runs through `v`, unless a
//!   bounded *witness search* finds an equally good detour.
//! - **Query**: a bidirectional Dijkstra where both searches only relax
//!   edges toward higher-ranked nodes; the meeting node with minimal
//!   combined distance yields the exact shortest path.
//! - **Unpacking**: shortcuts expand recursively into original edges so
//!   callers get the full node sequence.
//!
//! Witness searches are budgeted (settle limit), which can only cause
//! *extra* shortcuts — never an incorrect distance.

use crate::dijkstra::HeapEntry;
use crate::graph::{RoadGraph, Route};
use crate::RouteError;
use openflame_mapdata::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Budget for each witness search during preprocessing.
const WITNESS_SETTLE_LIMIT: usize = 64;

#[derive(Debug, Clone, Copy)]
struct ChEdge {
    to: usize,
    weight: f64,
}

/// A preprocessed contraction hierarchy over a road graph.
///
/// # Examples
///
/// ```
/// use openflame_geo::Point2;
/// use openflame_mapdata::{GeoReference, MapDocument, Tags};
/// use openflame_routing::{dijkstra, ContractionHierarchy, Profile, RoadGraph};
///
/// let mut map = MapDocument::new("g", "t", GeoReference::Unaligned { hint: None });
/// let a = map.add_node(Point2::new(0.0, 0.0), Tags::new());
/// let b = map.add_node(Point2::new(50.0, 0.0), Tags::new());
/// let c = map.add_node(Point2::new(100.0, 0.0), Tags::new());
/// map.add_way(vec![a, b, c], Tags::new().with("highway", "footway")).unwrap();
/// let graph = RoadGraph::from_map(&map, Profile::Walking);
/// let ch = ContractionHierarchy::build(&graph);
/// let fast = ch.query(a, c).unwrap();
/// let slow = dijkstra(&graph, a, c).unwrap();
/// assert!((fast.cost - slow.cost).abs() < 1e-9);
/// ```
pub struct ContractionHierarchy {
    graph: RoadGraph,
    rank: Vec<usize>,
    up_out: Vec<Vec<ChEdge>>,
    up_in: Vec<Vec<ChEdge>>,
    /// Directed shortcut expansion: `(from, to) → via`.
    unpack: HashMap<(usize, usize), usize>,
    shortcut_count: usize,
}

impl ContractionHierarchy {
    /// Preprocesses `graph` into a hierarchy. The graph is cloned so the
    /// hierarchy is self-contained.
    pub fn build(graph: &RoadGraph) -> Self {
        let n = graph.node_count();
        // Working adjacency: (to → (weight, via)) per node, both
        // directions, updated as shortcuts appear.
        let mut out: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
        let mut inn: Vec<HashMap<usize, f64>> = vec![HashMap::new(); n];
        let mut unpack: HashMap<(usize, usize), usize> = HashMap::new();
        for (u, out_u) in out.iter_mut().enumerate() {
            for e in graph.out_edges(u) {
                let w = out_u.entry(e.to).or_insert(f64::INFINITY);
                *w = w.min(e.weight);
                let r = inn[e.to].entry(u).or_insert(f64::INFINITY);
                *r = r.min(e.weight);
            }
        }
        let mut contracted = vec![false; n];
        let mut rank = vec![0usize; n];
        let mut deleted_neighbors = vec![0usize; n];
        let mut shortcut_count = 0usize;

        // Initial priorities.
        let mut queue: BinaryHeap<(Reverse<i64>, usize)> = (0..n)
            .map(|v| {
                (
                    Reverse(Self::priority(
                        v,
                        &out,
                        &inn,
                        &contracted,
                        &deleted_neighbors,
                    )),
                    v,
                )
            })
            .collect();

        let mut next_rank = 0usize;
        while let Some((Reverse(prio), v)) = queue.pop() {
            if contracted[v] {
                continue;
            }
            // Lazy update: if the recomputed priority is now worse than
            // the head of the queue, requeue.
            let fresh = Self::priority(v, &out, &inn, &contracted, &deleted_neighbors);
            if let Some(&(Reverse(top), _)) = queue.peek() {
                if fresh > top && fresh > prio {
                    queue.push((Reverse(fresh), v));
                    continue;
                }
            }
            // Contract v.
            contracted[v] = true;
            rank[v] = next_rank;
            next_rank += 1;
            let preds: Vec<(usize, f64)> = inn[v]
                .iter()
                .filter(|(u, _)| !contracted[**u])
                .map(|(u, w)| (*u, *w))
                .collect();
            let succs: Vec<(usize, f64)> = out[v]
                .iter()
                .filter(|(w, _)| !contracted[**w])
                .map(|(w, wt)| (*w, *wt))
                .collect();
            for &(u, w_uv) in &preds {
                deleted_neighbors[u] += 1;
                for &(w, w_vw) in &succs {
                    if u == w {
                        continue;
                    }
                    let through = w_uv + w_vw;
                    if Self::has_witness(u, w, v, through, &out, &contracted) {
                        continue;
                    }
                    // Insert / improve shortcut u → w.
                    let cur = out[u].entry(w).or_insert(f64::INFINITY);
                    if through < *cur {
                        *cur = through;
                        inn[w].insert(u, through);
                        unpack.insert((u, w), v);
                        shortcut_count += 1;
                    }
                }
            }
            for &(w, _) in &succs {
                deleted_neighbors[w] += 1;
            }
        }

        // Build the final upward graphs.
        let mut up_out = vec![Vec::new(); n];
        let mut up_in = vec![Vec::new(); n];
        for u in 0..n {
            for (&v, &w) in &out[u] {
                if rank[v] > rank[u] {
                    up_out[u].push(ChEdge { to: v, weight: w });
                }
            }
            for (&v, &w) in &inn[u] {
                // Original edge v → u; backward search goes u → v upward.
                if rank[v] > rank[u] {
                    up_in[u].push(ChEdge { to: v, weight: w });
                }
            }
        }
        Self {
            graph: graph.clone(),
            rank,
            up_out,
            up_in,
            unpack,
            shortcut_count,
        }
    }

    /// Number of shortcut edges added during preprocessing.
    pub fn shortcut_count(&self) -> usize {
        self.shortcut_count
    }

    /// The contraction rank of a graph index (higher = more important).
    pub fn rank_of(&self, idx: usize) -> usize {
        self.rank[idx]
    }

    fn priority(
        v: usize,
        out: &[HashMap<usize, f64>],
        inn: &[HashMap<usize, f64>],
        contracted: &[bool],
        deleted_neighbors: &[usize],
    ) -> i64 {
        let preds: Vec<(usize, f64)> = inn[v]
            .iter()
            .filter(|(u, _)| !contracted[**u])
            .map(|(u, w)| (*u, *w))
            .collect();
        let succs: Vec<(usize, f64)> = out[v]
            .iter()
            .filter(|(w, _)| !contracted[**w])
            .map(|(w, wt)| (*w, *wt))
            .collect();
        let mut shortcuts = 0i64;
        for &(u, w_uv) in &preds {
            for &(w, w_vw) in &succs {
                if u == w {
                    continue;
                }
                if !Self::has_witness(u, w, v, w_uv + w_vw, out, contracted) {
                    shortcuts += 1;
                }
            }
        }
        let removed = (preds.len() + succs.len()) as i64;
        // Classic blend: edge difference plus contracted-neighbor count
        // keeps contraction spatially uniform.
        shortcuts - removed + 2 * deleted_neighbors[v] as i64
    }

    /// Bounded Dijkstra: is there a path `u → w` avoiding `v` with cost
    /// ≤ `cap` among uncontracted nodes?
    fn has_witness(
        u: usize,
        w: usize,
        v: usize,
        cap: f64,
        out: &[HashMap<usize, f64>],
        contracted: &[bool],
    ) -> bool {
        if u == w {
            return true;
        }
        let mut dist: HashMap<usize, f64> = HashMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(u, 0.0);
        heap.push(HeapEntry { cost: 0.0, node: u });
        let mut settles = 0usize;
        while let Some(HeapEntry { cost, node }) = heap.pop() {
            if cost > *dist.get(&node).unwrap_or(&f64::INFINITY) {
                continue;
            }
            if cost > cap {
                return false;
            }
            if node == w {
                return cost <= cap;
            }
            settles += 1;
            if settles > WITNESS_SETTLE_LIMIT {
                // Budget exhausted: conservatively report no witness.
                return false;
            }
            for (&next, &weight) in &out[node] {
                if next == v || contracted[next] {
                    continue;
                }
                let nd = cost + weight;
                if nd < *dist.get(&next).unwrap_or(&f64::INFINITY) && nd <= cap {
                    dist.insert(next, nd);
                    heap.push(HeapEntry {
                        cost: nd,
                        node: next,
                    });
                }
            }
        }
        false
    }

    /// Exact shortest path between two map nodes.
    ///
    /// Flat-array bidirectional upward search: both directions run to
    /// exhaustion of their (small) upward search spaces with pruning
    /// against the best meeting found so far.
    pub fn query(&self, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
        let src = self
            .graph
            .index_of(from)
            .ok_or(RouteError::NodeNotInGraph(from.0))?;
        let dst = self
            .graph
            .index_of(to)
            .ok_or(RouteError::NodeNotInGraph(to.0))?;
        if src == dst {
            return Ok(self.graph.route_from_indices(&[src], 0.0, 0));
        }
        let n = self.graph.node_count();
        let mut dist_f = vec![f64::INFINITY; n];
        let mut dist_b = vec![f64::INFINITY; n];
        let mut prev_f = vec![usize::MAX; n];
        let mut prev_b = vec![usize::MAX; n];
        let mut best = f64::INFINITY;
        let mut meet = usize::MAX;
        let mut settled = 0usize;
        // Both upward searches, interleaved by cheapest frontier so the
        // meeting bound starts pruning as early as possible.
        let mut heap_f = BinaryHeap::new();
        let mut heap_b = BinaryHeap::new();
        dist_f[src] = 0.0;
        dist_b[dst] = 0.0;
        heap_f.push(HeapEntry {
            cost: 0.0,
            node: src,
        });
        heap_b.push(HeapEntry {
            cost: 0.0,
            node: dst,
        });
        while !heap_f.is_empty() || !heap_b.is_empty() {
            let top_f = heap_f.peek().map(|e| e.cost).unwrap_or(f64::INFINITY);
            let top_b = heap_b.peek().map(|e| e.cost).unwrap_or(f64::INFINITY);
            if top_f.min(top_b) > best {
                break;
            }
            let forward = top_f <= top_b;
            let (heap, dist, prev, other_dist, up) = if forward {
                (&mut heap_f, &mut dist_f, &mut prev_f, &dist_b, &self.up_out)
            } else {
                (&mut heap_b, &mut dist_b, &mut prev_b, &dist_f, &self.up_in)
            };
            let Some(HeapEntry { cost, node }) = heap.pop() else {
                continue;
            };
            if cost > dist[node] || cost > best {
                // Stale entry, or provably unable to improve the best
                // meeting (upward costs only grow).
                continue;
            }
            settled += 1;
            if other_dist[node].is_finite() && cost + other_dist[node] < best {
                best = cost + other_dist[node];
                meet = node;
            }
            for e in &up[node] {
                let nd = cost + e.weight;
                if nd < dist[e.to] {
                    dist[e.to] = nd;
                    prev[e.to] = node;
                    heap.push(HeapEntry {
                        cost: nd,
                        node: e.to,
                    });
                }
            }
        }
        if meet == usize::MAX {
            return Err(RouteError::NoPath);
        }
        // Upward chains: src → meet (forward), meet → dst (backward).
        let mut up_path = Vec::new();
        let mut cur = meet;
        while cur != src {
            let p = prev_f[cur];
            up_path.push((p, cur));
            cur = p;
        }
        up_path.reverse();
        let mut down_path = Vec::new();
        cur = meet;
        while cur != dst {
            // prev_b[x] = a means the backward search reached x from a,
            // i.e. the original-direction edge x → a is on the path.
            let p = prev_b[cur];
            down_path.push((cur, p));
            cur = p;
        }
        // Expand shortcuts into original node sequences.
        let mut indices = vec![src];
        for (a, b) in up_path.into_iter().chain(down_path) {
            self.expand(a, b, &mut indices);
        }
        Ok(self.graph.route_from_indices(&indices, best, settled))
    }

    /// Appends the expansion of edge `(a, b)` to `path` (excluding `a`,
    /// which is already present).
    fn expand(&self, a: usize, b: usize, path: &mut Vec<usize>) {
        if let Some(&via) = self.unpack.get(&(a, b)) {
            self.expand(a, via, path);
            self.expand(via, b, path);
        } else {
            path.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use crate::graph::Profile;
    use openflame_geo::Point2;
    use openflame_mapdata::{GeoReference, MapDocument, Tags};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_graph(n: usize) -> (RoadGraph, Vec<NodeId>) {
        let mut map = MapDocument::new("grid", "t", GeoReference::Unaligned { hint: None });
        let mut ids = Vec::new();
        for r in 0..n {
            for c in 0..n {
                ids.push(map.add_node(Point2::new(c as f64 * 10.0, r as f64 * 10.0), Tags::new()));
            }
        }
        for r in 0..n {
            let row: Vec<NodeId> = (0..n).map(|c| ids[r * n + c]).collect();
            map.add_way(row, Tags::new().with("highway", "footway"))
                .unwrap();
            let col: Vec<NodeId> = (0..n).map(|c| ids[c * n + r]).collect();
            map.add_way(col, Tags::new().with("highway", "footway"))
                .unwrap();
        }
        (RoadGraph::from_map(&map, Profile::Walking), ids)
    }

    #[test]
    fn ch_matches_dijkstra_on_grid() {
        let (g, ids) = grid_graph(7);
        let ch = ContractionHierarchy::build(&g);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..40 {
            let s = ids[rng.gen_range(0..ids.len())];
            let t = ids[rng.gen_range(0..ids.len())];
            let d = dijkstra(&g, s, t).unwrap();
            let c = ch.query(s, t).unwrap();
            assert!(
                (d.cost - c.cost).abs() < 1e-6,
                "{s:?}->{t:?}: dijkstra {} ch {}",
                d.cost,
                c.cost
            );
        }
    }

    #[test]
    fn ch_unpacked_path_is_contiguous_and_costs_match() {
        let (g, ids) = grid_graph(6);
        let ch = ContractionHierarchy::build(&g);
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let route = ch.query(s, t).unwrap();
        assert_eq!(route.nodes.first(), Some(&s));
        assert_eq!(route.nodes.last(), Some(&t));
        // Recompute cost from the unpacked edges; must equal the
        // reported cost (all edges exist in the original graph).
        let mut total = 0.0;
        for w in route.nodes.windows(2) {
            let a = g.index_of(w[0]).unwrap();
            let b = g.index_of(w[1]).unwrap();
            let edge = g
                .out_edges(a)
                .iter()
                .find(|e| e.to == b)
                .expect("edge exists");
            total += edge.weight;
        }
        assert!(
            (total - route.cost).abs() < 1e-6,
            "unpacked {total} vs {}",
            route.cost
        );
    }

    #[test]
    fn ch_on_random_graphs_matches_dijkstra() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..8 {
            let mut map = MapDocument::new("rand", "t", GeoReference::Unaligned { hint: None });
            let n = 30 + trial * 10;
            let ids: Vec<NodeId> = (0..n)
                .map(|_| {
                    map.add_node(
                        Point2::new(rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)),
                        Tags::new(),
                    )
                })
                .collect();
            // Random footway segments; some may be disconnected.
            for _ in 0..n * 2 {
                let a = ids[rng.gen_range(0..ids.len())];
                let b = ids[rng.gen_range(0..ids.len())];
                if a != b {
                    map.add_way(vec![a, b], Tags::new().with("highway", "footway"))
                        .unwrap();
                }
            }
            let g = RoadGraph::from_map(&map, Profile::Walking);
            let ch = ContractionHierarchy::build(&g);
            for _ in 0..20 {
                let s = ids[rng.gen_range(0..ids.len())];
                let t = ids[rng.gen_range(0..ids.len())];
                let d = dijkstra(&g, s, t);
                let c = ch.query(s, t);
                match (d, c) {
                    (Ok(d), Ok(c)) => assert!(
                        (d.cost - c.cost).abs() < 1e-6,
                        "trial {trial}: {} vs {}",
                        d.cost,
                        c.cost
                    ),
                    (Err(RouteError::NoPath), Err(RouteError::NoPath)) => {}
                    (Err(RouteError::NodeNotInGraph(_)), Err(RouteError::NodeNotInGraph(_))) => {}
                    (d, c) => panic!("trial {trial}: disagreement {d:?} vs {c:?}"),
                }
            }
        }
    }

    #[test]
    fn ch_settles_fewer_nodes_than_dijkstra() {
        let (g, ids) = grid_graph(14);
        let ch = ContractionHierarchy::build(&g);
        let s = ids[0];
        let t = ids[ids.len() - 1];
        let d = dijkstra(&g, s, t).unwrap();
        let c = ch.query(s, t).unwrap();
        assert!(
            c.settled < d.settled,
            "ch settled {} vs dijkstra {}",
            c.settled,
            d.settled
        );
    }

    #[test]
    fn ch_same_node_query() {
        let (g, ids) = grid_graph(3);
        let ch = ContractionHierarchy::build(&g);
        let r = ch.query(ids[4], ids[4]).unwrap();
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.nodes, vec![ids[4]]);
    }

    #[test]
    fn ch_oneway_correctness() {
        // Driving graph with a one-way loop: s→t short one-way, t→s must
        // go around.
        let mut map = MapDocument::new("ow", "t", GeoReference::Unaligned { hint: None });
        let a = map.add_node(Point2::new(0.0, 0.0), Tags::new());
        let b = map.add_node(Point2::new(100.0, 0.0), Tags::new());
        let c = map.add_node(Point2::new(100.0, 100.0), Tags::new());
        let d = map.add_node(Point2::new(0.0, 100.0), Tags::new());
        map.add_way(
            vec![a, b],
            Tags::new()
                .with("highway", "residential")
                .with("oneway", "yes"),
        )
        .unwrap();
        map.add_way(vec![b, c], Tags::new().with("highway", "residential"))
            .unwrap();
        map.add_way(vec![c, d], Tags::new().with("highway", "residential"))
            .unwrap();
        map.add_way(vec![d, a], Tags::new().with("highway", "residential"))
            .unwrap();
        let g = RoadGraph::from_map(&map, Profile::Driving);
        let ch = ContractionHierarchy::build(&g);
        let fwd = ch.query(a, b).unwrap();
        let back = ch.query(b, a).unwrap();
        assert!(
            back.length_m > fwd.length_m * 2.9,
            "return trip must loop around"
        );
        let d1 = dijkstra(&g, b, a).unwrap();
        assert!((back.cost - d1.cost).abs() < 1e-9);
    }

    #[test]
    fn shortcuts_are_reported() {
        let (g, _) = grid_graph(8);
        let ch = ContractionHierarchy::build(&g);
        // A grid needs some shortcuts; exact count depends on order.
        assert!(ch.shortcut_count() > 0);
    }
}
