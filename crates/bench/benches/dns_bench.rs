//! Criterion micro-benches for DNS zone lookups and resolution (backs
//! E2's latency columns — wall-clock of the *code*, not the simulated
//! network latency).

use criterion::{criterion_group, criterion_main, Criterion};
use openflame_core::{Deployment, DeploymentConfig};
use openflame_dns::{DomainName, Record, RecordData, RecordType, Zone};
use openflame_worldgen::{World, WorldConfig};
use std::time::Duration;

fn bench_dns(c: &mut Criterion) {
    // Zone query over a populated spatial zone.
    let mut zone = Zone::new(DomainName::parse("cell.flame.").unwrap());
    let dep = Deployment::build(
        World::generate(WorldConfig {
            stores: 12,
            ..WorldConfig::default()
        }),
        DeploymentConfig::default(),
    );
    dep.cell_dns.with_zones(|zones| {
        for r in zones[0].iter_records() {
            zone.add(r.clone());
        }
    });
    let query = openflame_mapserver::naming::query_name(dep.world.venues[0].hint);
    let mut group = c.benchmark_group("dns");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(1));
    group.bench_function("zone_query_wildcard", |b| {
        b.iter(|| zone.query(&query, RecordType::MapSrv))
    });
    group.bench_function("zone_add_remove", |b| {
        b.iter(|| {
            zone.add(Record::new(
                DomainName::parse("x.cell.flame.").unwrap(),
                60,
                RecordData::A(1),
            ));
            zone.remove(&DomainName::parse("x.cell.flame.").unwrap(), RecordType::A);
        })
    });
    // Full resolution path (walks the referral chain in-process).
    group.bench_function("resolve_cold", |b| {
        b.iter(|| {
            dep.resolver.flush_cache();
            dep.resolver.resolve(&query, RecordType::MapSrv).unwrap()
        })
    });
    group.bench_function("resolve_warm", |b| {
        b.iter(|| dep.resolver.resolve(&query, RecordType::MapSrv).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_dns);
criterion_main!(benches);
