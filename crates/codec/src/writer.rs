//! Append-only encoder for the wire format.

use bytes::{BufMut, Bytes, BytesMut};

/// An append-only byte writer producing wire-format encodings.
///
/// # Examples
///
/// ```
/// use openflame_codec::Writer;
///
/// let mut w = Writer::new();
/// w.put_varint(300);
/// w.put_str("hi");
/// let buf = w.finish();
/// assert_eq!(buf.len(), 2 + 1 + 2);
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            buf: BytesMut::with_capacity(128),
        }
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes the writer into an immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn put_zigzag(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends an 8-byte little-endian IEEE-754 double.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_u64_le(v.to_bits());
    }

    /// Appends a 4-byte little-endian IEEE-754 float.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_u32_le(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.put_slice(b);
    }

    /// Appends raw bytes with no length prefix (for framing layers that
    /// carry the length elsewhere).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.put_slice(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundary_lengths() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::MAX, 10),
        ];
        for &(v, len) in cases {
            let mut w = Writer::new();
            w.put_varint(v);
            assert_eq!(w.len(), len, "varint({v})");
        }
    }

    #[test]
    fn zigzag_small_magnitudes_one_byte() {
        for v in [-64i64, -1, 0, 1, 63] {
            let mut w = Writer::new();
            w.put_zigzag(v);
            assert_eq!(w.len(), 1, "zigzag({v})");
        }
    }

    #[test]
    fn str_is_length_prefixed() {
        let mut w = Writer::new();
        w.put_str("abc");
        let b = w.finish();
        assert_eq!(&b[..], &[3, b'a', b'b', b'c']);
    }

    #[test]
    fn raw_has_no_prefix() {
        let mut w = Writer::new();
        w.put_raw(&[1, 2, 3]);
        assert_eq!(&w.finish()[..], &[1, 2, 3]);
    }
}
