//! Wire-format encodings for map data, so documents and patches can
//! cross the simulated network with honest byte accounting.

use crate::element::{ElementId, Member, Node, NodeId, Relation, RelationId, Way, WayId};
use crate::{GeoReference, MapDocument, MapMeta, MapPatch, Tags};
use openflame_codec::{CodecError, Reader, Wire, Writer};
use openflame_geo::{LatLng, Point2};

/// Encodes a planar point (two f64s).
pub fn put_point(w: &mut Writer, p: Point2) {
    w.put_f64(p.x);
    w.put_f64(p.y);
}

/// Decodes a planar point.
pub fn read_point(r: &mut Reader<'_>) -> Result<Point2, CodecError> {
    Ok(Point2::new(r.read_f64()?, r.read_f64()?))
}

/// Encodes a geodetic coordinate (two f64s).
pub fn put_latlng(w: &mut Writer, p: LatLng) {
    w.put_f64(p.lat());
    w.put_f64(p.lng());
}

/// Decodes a geodetic coordinate, validating range.
pub fn read_latlng(r: &mut Reader<'_>) -> Result<LatLng, CodecError> {
    let lat = r.read_f64()?;
    let lng = r.read_f64()?;
    LatLng::new(lat, lng).map_err(|_| CodecError::InvalidTag {
        context: "LatLng",
        tag: 0,
    })
}

impl Wire for NodeId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NodeId(r.read_varint()?))
    }
}

impl Wire for WayId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(WayId(r.read_varint()?))
    }
}

impl Wire for RelationId {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RelationId(r.read_varint()?))
    }
}

impl Wire for ElementId {
    fn encode(&self, w: &mut Writer) {
        match self {
            ElementId::Node(id) => {
                w.put_u8(0);
                id.encode(w);
            }
            ElementId::Way(id) => {
                w.put_u8(1);
                id.encode(w);
            }
            ElementId::Relation(id) => {
                w.put_u8(2);
                id.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.read_u8()? {
            0 => Ok(ElementId::Node(NodeId::decode(r)?)),
            1 => Ok(ElementId::Way(WayId::decode(r)?)),
            2 => Ok(ElementId::Relation(RelationId::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                context: "ElementId",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for Tags {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for (k, v) in self.iter() {
            w.put_str(k);
            w.put_str(v);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.read_length()?;
        let mut tags = Tags::new();
        for _ in 0..n {
            let k = r.read_string()?;
            let v = r.read_string()?;
            tags.insert(k, v);
        }
        Ok(tags)
    }
}

impl Wire for Node {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_point(w, self.pos);
        self.tags.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Node {
            id: NodeId::decode(r)?,
            pos: read_point(r)?,
            tags: Tags::decode(r)?,
        })
    }
}

impl Wire for Way {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.nodes.encode(w);
        self.tags.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Way {
            id: WayId::decode(r)?,
            nodes: Vec::decode(r)?,
            tags: Tags::decode(r)?,
        })
    }
}

impl Wire for Member {
    fn encode(&self, w: &mut Writer) {
        self.element.encode(w);
        w.put_str(&self.role);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Member {
            element: ElementId::decode(r)?,
            role: r.read_string()?,
        })
    }
}

impl Wire for Relation {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.members.encode(w);
        self.tags.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Relation {
            id: RelationId::decode(r)?,
            members: Vec::decode(r)?,
            tags: Tags::decode(r)?,
        })
    }
}

impl Wire for GeoReference {
    fn encode(&self, w: &mut Writer) {
        match self {
            GeoReference::Anchored { origin } => {
                w.put_u8(0);
                put_latlng(w, *origin);
            }
            GeoReference::Unaligned { hint } => {
                w.put_u8(1);
                match hint {
                    Some(h) => {
                        w.put_u8(1);
                        put_latlng(w, *h);
                    }
                    None => w.put_u8(0),
                }
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.read_u8()? {
            0 => Ok(GeoReference::Anchored {
                origin: read_latlng(r)?,
            }),
            1 => {
                let hint = match r.read_u8()? {
                    0 => None,
                    1 => Some(read_latlng(r)?),
                    tag => {
                        return Err(CodecError::InvalidTag {
                            context: "GeoReference hint",
                            tag: tag as u64,
                        })
                    }
                };
                Ok(GeoReference::Unaligned { hint })
            }
            tag => Err(CodecError::InvalidTag {
                context: "GeoReference",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for MapMeta {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put_str(&self.provider);
        w.put_varint(self.version);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MapMeta {
            name: r.read_string()?,
            provider: r.read_string()?,
            version: r.read_varint()?,
        })
    }
}

impl Wire for MapDocument {
    fn encode(&self, w: &mut Writer) {
        self.meta().encode(w);
        self.georef().encode(w);
        w.put_varint(self.node_count() as u64);
        for n in self.nodes() {
            n.encode(w);
        }
        w.put_varint(self.way_count() as u64);
        for way in self.ways() {
            way.encode(w);
        }
        w.put_varint(self.relation_count() as u64);
        for rel in self.relations() {
            rel.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let meta = MapMeta::decode(r)?;
        let georef = GeoReference::decode(r)?;
        let mut doc = MapDocument::new(meta.name.clone(), meta.provider.clone(), georef);
        let invalid = |_| CodecError::InvalidTag {
            context: "MapDocument element",
            tag: 0,
        };
        let n_nodes = r.read_length()?;
        for _ in 0..n_nodes {
            doc.insert_node(Node::decode(r)?).map_err(invalid)?;
        }
        let n_ways = r.read_length()?;
        for _ in 0..n_ways {
            doc.insert_way(Way::decode(r)?).map_err(invalid)?;
        }
        let n_rels = r.read_length()?;
        for _ in 0..n_rels {
            doc.insert_relation(Relation::decode(r)?).map_err(invalid)?;
        }
        for _ in 0..meta.version {
            doc.bump_version();
        }
        Ok(doc)
    }
}

impl Wire for MapPatch {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.base_version);
        self.upsert_nodes.encode(w);
        self.upsert_ways.encode(w);
        self.upsert_relations.encode(w);
        self.remove_nodes.encode(w);
        self.remove_ways.encode(w);
        self.remove_relations.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(MapPatch {
            base_version: r.read_varint()?,
            upsert_nodes: Vec::decode(r)?,
            upsert_ways: Vec::decode(r)?,
            upsert_relations: Vec::decode(r)?,
            remove_nodes: Vec::decode(r)?,
            remove_ways: Vec::decode(r)?,
            remove_relations: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_codec::{from_bytes, to_bytes};

    fn sample_doc() -> MapDocument {
        let mut m = MapDocument::new(
            "wire-test",
            "tester",
            GeoReference::Anchored {
                origin: LatLng::new(40.44, -79.94).unwrap(),
            },
        );
        let a = m.add_node(Point2::new(0.0, 0.0), Tags::new().with("name", "A"));
        let b = m.add_node(Point2::new(10.0, 5.0), Tags::new().with("shop", "grocery"));
        let w = m
            .add_way(vec![a, b], Tags::new().with("highway", "service"))
            .unwrap();
        m.add_relation(
            vec![
                Member::new(ElementId::Way(w), "perimeter"),
                Member::new(ElementId::Node(a), "entrance"),
            ],
            Tags::new().with("type", "building"),
        )
        .unwrap();
        m.bump_version();
        m
    }

    #[test]
    fn node_round_trip() {
        let n = Node::new(
            NodeId(42),
            Point2::new(1.5, -2.5),
            Tags::new().with("a", "b"),
        );
        assert_eq!(from_bytes::<Node>(&to_bytes(&n)).unwrap(), n);
    }

    #[test]
    fn element_id_round_trip() {
        for id in [
            ElementId::Node(NodeId(1)),
            ElementId::Way(WayId(2)),
            ElementId::Relation(RelationId(3)),
        ] {
            assert_eq!(from_bytes::<ElementId>(&to_bytes(&id)).unwrap(), id);
        }
    }

    #[test]
    fn georef_round_trip() {
        let cases = [
            GeoReference::Anchored {
                origin: LatLng::new(1.0, 2.0).unwrap(),
            },
            GeoReference::Unaligned {
                hint: Some(LatLng::new(3.0, 4.0).unwrap()),
            },
            GeoReference::Unaligned { hint: None },
        ];
        for g in cases {
            assert_eq!(from_bytes::<GeoReference>(&to_bytes(&g)).unwrap(), g);
        }
    }

    #[test]
    fn latlng_decode_validates() {
        let mut w = Writer::new();
        w.put_f64(200.0); // invalid latitude
        w.put_f64(0.0);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(read_latlng(&mut r).is_err());
    }

    #[test]
    fn document_round_trip() {
        let doc = sample_doc();
        let encoded = to_bytes(&doc);
        let decoded = from_bytes::<MapDocument>(&encoded).unwrap();
        assert_eq!(decoded.meta(), doc.meta());
        assert_eq!(decoded.georef(), doc.georef());
        assert_eq!(decoded.node_count(), doc.node_count());
        assert_eq!(decoded.way_count(), doc.way_count());
        assert_eq!(decoded.relation_count(), doc.relation_count());
        assert!(decoded.validate().is_ok());
        // Spot-check an element survived with tags.
        let grocery = decoded.nodes().find(|n| n.tags.is("shop", "grocery"));
        assert!(grocery.is_some());
    }

    #[test]
    fn document_encoding_is_compact() {
        let doc = sample_doc();
        let encoded = to_bytes(&doc);
        // 4 elements with small tags should encode in well under a KiB.
        assert!(encoded.len() < 512, "encoded {} bytes", encoded.len());
    }

    #[test]
    fn patch_round_trip() {
        let mut p = MapPatch::new(7);
        p.upsert_nodes
            .push(Node::new(NodeId(1), Point2::new(1.0, 2.0), Tags::new()));
        p.remove_ways.push(WayId(3));
        let back = from_bytes::<MapPatch>(&to_bytes(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn corrupt_document_rejected_not_panicking() {
        let doc = sample_doc();
        let mut bytes = to_bytes(&doc).to_vec();
        // Flip bytes throughout and ensure decode never panics.
        for i in (0..bytes.len()).step_by(7) {
            bytes[i] ^= 0xA5;
            let _ = from_bytes::<MapDocument>(&bytes);
            bytes[i] ^= 0xA5;
        }
    }
}
