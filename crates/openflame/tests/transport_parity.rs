//! Backend parity: the federation behaves identically over the
//! deterministic network simulator and over real loopback TCP sockets.
//!
//! Three claims are enforced here:
//!
//! 1. **End-to-end equivalence** — the grocery scenario and the
//!    provider-parity service sweep run unchanged (same code, through
//!    `&dyn SpatialProvider`) on both backends.
//! 2. **Wire-discipline parity** — an identical warm-search workload
//!    costs exactly one batched envelope per discovered server (two
//!    messages: request + response) on BOTH backends, with identical
//!    message counts. This is `batch_bench`'s warm-search invariant,
//!    enforced across transports.
//! 3. **Failure parity** — endpoint-down and dropped-message injection
//!    surface as `ClientError::PartialFailure` with per-branch source
//!    errors preserved on both backends: never a panic, never a silent
//!    empty result.

use openflame_core::{
    run_grocery_scenario_on, CentralizedProvider, ClientError, Deployment, DeploymentConfig,
    LocalizeQuery, ProviderKind, RouteQuery, SearchQuery, SpatialProvider, TileQuery,
};
use openflame_localize::LocationCue;
use openflame_netsim::BackendKind;
use openflame_worldgen::{World, WorldConfig};
use std::error::Error;

const BACKENDS: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Tcp];

fn small_world() -> World {
    World::generate(WorldConfig {
        stores: 4,
        products_per_store: 10,
        ..WorldConfig::default()
    })
}

fn deployment_on(backend: BackendKind, world: World) -> Deployment {
    Deployment::build(
        world,
        DeploymentConfig {
            backend,
            ..DeploymentConfig::default()
        },
    )
}

#[test]
fn grocery_scenario_completes_on_both_backends() {
    let world = small_world();
    for backend in BACKENDS {
        let report =
            run_grocery_scenario_on(&world, ProviderKind::Federated, 3, 11, backend).unwrap();
        assert!(report.found_product, "{backend:?}: product must be found");
        assert!(
            report.route_reaches_shelf,
            "{backend:?}: route must reach the shelf"
        );
        assert!(report.route_length_m.unwrap() > 10.0, "{backend:?}");
        assert!(
            report.indoor_availability > 0.5,
            "{backend:?}: indoor localization mostly available"
        );
        assert!(report.messages > 0, "{backend:?}: traffic was counted");
    }
}

#[test]
fn every_service_runs_under_both_architectures_on_tcp() {
    // The provider-parity sweep, over real sockets: one federated and
    // one centralized provider, the same `&dyn SpatialProvider` flow.
    let world = World::generate(WorldConfig {
        stores: 1,
        products_per_store: 8,
        ..WorldConfig::default()
    });
    let dep = deployment_on(BackendKind::Tcp, world.clone());
    let omni = CentralizedProvider::omniscient_on(BackendKind::Tcp.build(5), &world);
    let product = world.products[0].clone();
    let near = world.venues[product.venue].hint;

    for provider in [&dep.client as &dyn SpatialProvider, &omni] {
        let id = provider.provider_id();
        let search = provider
            .search(SearchQuery {
                query: product.name.clone(),
                location: near,
                radius_m: 5_000.0,
                k: 3,
            })
            .unwrap();
        assert_eq!(search.hits[0].result.label, product.name, "{id}");
        assert!(search.stats.messages > 0, "{id}: real sockets were used");
        let route = provider
            .route(RouteQuery {
                from: near.destination(225.0, 80.0),
                target: search.hits[0].clone(),
            })
            .unwrap();
        assert!(route.route.total_length_m > 1.0, "{id}");
        let localize = provider
            .localize(LocalizeQuery {
                coarse: near,
                cues: vec![LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }],
            })
            .unwrap();
        assert!(
            localize
                .estimates
                .iter()
                .any(|e| e.estimate.technology == "gnss" && e.geo.is_some()),
            "{id}"
        );
        let tile = provider
            .tile(TileQuery {
                center: world.config.center,
                z: 16,
            })
            .unwrap();
        assert!(tile.tile.coverage() > 0.0, "{id}");
        let rev = provider
            .reverse_geocode(openflame_core::ReverseGeocodeQuery {
                location: world.config.center,
                radius_m: 100.0,
            })
            .unwrap();
        assert!(rev.hit.is_some(), "{id}");
    }
}

/// Warm-search wire cost on one backend: (transport messages, session
/// batch envelopes, discovered servers).
fn warm_search_cost(backend: BackendKind) -> (u64, u64, usize) {
    let dep = deployment_on(backend, small_world());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    // Warm the session: discovery and hellos are cached after this.
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let servers = dep.client.discover(near).unwrap();
    assert!(servers.len() >= 2, "need a federation to make the point");

    dep.transport.reset_stats();
    let batches_before = dep.client.session().stats().batches;
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let messages = dep.transport.stats().messages;
    let batches = dep.client.session().stats().batches - batches_before;
    (messages, batches, servers.len())
}

#[test]
fn identical_warm_search_costs_identical_messages_on_both_backends() {
    let (sim_msgs, sim_batches, sim_servers) = warm_search_cost(BackendKind::Sim);
    let (tcp_msgs, tcp_batches, tcp_servers) = warm_search_cost(BackendKind::Tcp);
    // Same world, same registrations: discovery agrees.
    assert_eq!(sim_servers, tcp_servers);
    // batch_bench's warm-search invariant, on each backend: exactly one
    // batched envelope per discovered server, two messages each, and
    // nothing else (no DNS, no hello traffic). Pipelining must reorder
    // waiting, never traffic.
    assert_eq!(sim_batches, sim_servers as u64);
    assert_eq!(tcp_batches, tcp_servers as u64);
    assert_eq!(sim_msgs, 2 * sim_servers as u64);
    assert_eq!(
        sim_msgs, tcp_msgs,
        "identical workload must cost identical message counts on both backends"
    );
}

#[test]
fn identical_cold_search_costs_identical_messages_on_both_backends() {
    // The cold path is where the pipelining lives: DNS referral walks
    // for primary + neighbor cells interleaved, the capability
    // handshake overlapped with the search round. None of that may
    // change WHAT goes on the wire — a fresh client's first search
    // must cost the same messages on the simulator and on real TCP.
    let cold_cost = |backend: BackendKind| {
        let dep = deployment_on(backend, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        dep.transport.reset_stats();
        dep.client.federated_search(&product.name, near, 3).unwrap();
        dep.transport.stats().messages
    };
    let sim = cold_cost(BackendKind::Sim);
    let tcp = cold_cost(BackendKind::Tcp);
    assert_eq!(
        sim, tcp,
        "cold search (DNS walks + hello round + search round) must cost \
         identical messages on both backends"
    );
    assert!(sim > 0);
}

/// Warm up a venue route, kill the venue server, route again: the
/// scatter round that needs the venue must report a PartialFailure
/// carrying the branch's source error.
fn endpoint_down_partial_failure(backend: BackendKind) -> ClientError {
    let dep = deployment_on(backend, small_world());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    let hit = dep
        .client
        .federated_search(&product.name, near, 3)
        .unwrap()
        .into_iter()
        .find(|h| h.result.label == product.name)
        .expect("product is stocked");
    let user = near.destination(225.0, 80.0);
    // Warm route: caches (hello, discovery) are hot afterwards.
    dep.client.federated_route(user, &hit).unwrap();
    // The venue dies; the client's caches still point at it.
    dep.transport
        .set_down(dep.venue_servers[product.venue].endpoint(), true);
    dep.client
        .federated_route(user, &hit)
        .expect_err("routing into a dead venue cannot succeed")
}

#[test]
fn endpoint_down_surfaces_as_partial_failure_on_both_backends() {
    for backend in BACKENDS {
        let err = endpoint_down_partial_failure(backend);
        let ClientError::PartialFailure {
            succeeded,
            ref failures,
        } = err
        else {
            panic!("{backend:?}: expected PartialFailure, got {err}");
        };
        // The outdoor branch of the matrix round still succeeded; the
        // venue branch failed with its source preserved.
        assert_eq!(succeeded, 1, "{backend:?}");
        assert_eq!(failures.len(), 1, "{backend:?}");
        assert!(
            err.source().is_some(),
            "{backend:?}: source chain must be preserved"
        );
        assert!(
            failures[0].1.to_string().contains("down"),
            "{backend:?}: source names the dead endpoint, got {}",
            failures[0].1
        );
    }
}

#[test]
fn dropped_messages_surface_as_partial_failure_not_silent_empty() {
    for backend in BACKENDS {
        let dep = deployment_on(backend, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        // Warm caches so the drop injection hits the search fan-out
        // itself, not discovery.
        dep.client.federated_search(&product.name, near, 3).unwrap();
        dep.transport.set_timeout_us(50_000);
        dep.transport.set_drop_probability(1.0);
        let err = dep
            .client
            .federated_search(&product.name, near, 3)
            .expect_err("total packet loss cannot look like an empty result");
        let ClientError::PartialFailure {
            succeeded,
            ref failures,
        } = err
        else {
            panic!("{backend:?}: expected PartialFailure, got {err}");
        };
        assert_eq!(succeeded, 0, "{backend:?}");
        assert!(!failures.is_empty(), "{backend:?}");
        assert!(
            failures
                .iter()
                .all(|(_, e)| e.to_string().contains("timed out")),
            "{backend:?}: branch errors must carry the timeout source"
        );
        // Localization under total loss is an outage too, not an
        // honest "no coverage here".
        let loc_err = dep
            .client
            .federated_localize(
                near,
                &[LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }],
            )
            .expect_err("total packet loss cannot look like missing coverage");
        assert!(
            matches!(loc_err, ClientError::PartialFailure { succeeded: 0, .. }),
            "{backend:?}: expected PartialFailure, got {loc_err}"
        );
        // Recovery: lifting the injection restores service.
        dep.transport.set_drop_probability(0.0);
        assert!(dep.client.federated_search(&product.name, near, 3).is_ok());
    }
}
