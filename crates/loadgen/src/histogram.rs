//! Log-scale latency histograms: constant memory, ~5% relative error,
//! mergeable across recorder threads.

/// Geometric bucket growth factor: each bucket's upper bound is 5%
/// above the previous one, bounding quantile error to ~5% relative —
/// the precision latency percentiles are quoted at.
const GROWTH: f64 = 1.05;

/// Bucket count: `1.05^512 µs ≈ 7×10^10 µs`, far past any latency this
/// harness can observe; the last bucket absorbs the (never-seen) tail.
const BUCKETS: usize = 512;

/// A fixed-size log-scale histogram of microsecond latencies.
///
/// Values are bucketed geometrically (5% bucket spacing), so p50 and
/// p999 are read with the same ~5% relative error from the same 4 KiB
/// of counters — no reservoir, no sorting, no per-sample allocation,
/// and recorder threads merge their local histograms at the end
/// instead of contending on a shared one.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: u128,
    max_us: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    fn bucket_for(us: u64) -> usize {
        if us <= 1 {
            return 0;
        }
        (((us as f64).ln() / GROWTH.ln()) as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample, microseconds.
    pub fn record(&mut self, us: u64) {
        self.counts[Self::bucket_for(us)] += 1;
        self.total += 1;
        self.sum_us += u128::from(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency, microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum_us / u128::from(self.total)) as u64
        }
    }

    /// Largest recorded sample, microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The latency at quantile `q` in `[0, 1]`, microseconds: the
    /// geometric midpoint of the bucket holding the `ceil(q·total)`-th
    /// sample, clamped to the observed maximum (0 when empty).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                let lo = GROWTH.powi(bucket as i32);
                let mid = (lo * GROWTH.sqrt()) as u64;
                return mid.max(1).min(self.max_us);
            }
        }
        self.max_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_track_known_distribution_within_bucket_error() {
        let mut h = LogHistogram::new();
        for us in 1..=10_000u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile_us(0.5);
        let p99 = h.quantile_us(0.99);
        let p999 = h.quantile_us(0.999);
        assert!((p50 as f64 - 5_000.0).abs() / 5_000.0 < 0.06, "p50 {p50}");
        assert!((p99 as f64 - 9_900.0).abs() / 9_900.0 < 0.06, "p99 {p99}");
        assert!(
            (p999 as f64 - 9_990.0).abs() / 9_990.0 < 0.06,
            "p999 {p999}"
        );
        assert!(p50 <= p99 && p99 <= p999, "quantiles are monotone");
        assert_eq!(h.max_us(), 10_000);
        assert!((h.mean_us() as f64 - 5_000.0).abs() < 10.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for us in [3u64, 40, 500, 6_000, 70_000, 800_000] {
            if us % 2 == 0 {
                a.record(us)
            } else {
                b.record(us)
            }
            whole.record(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.25, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_us(q), whole.quantile_us(q));
        }
        assert_eq!(a.max_us(), whole.max_us());
    }

    #[test]
    fn empty_and_extreme_samples_are_safe() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0);
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        let p100 = h.quantile_us(1.0);
        assert!(p100 >= 1 && p100 <= h.max_us(), "p100 {p100} within range");
    }
}
