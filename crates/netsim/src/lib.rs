//! Deterministic network simulation substrate.
//!
//! OpenFLAME's evaluation needs latencies, message counts and byte
//! volumes for protocols running between clients, DNS servers and map
//! servers. There is no async runtime in the approved dependency set —
//! and determinism is worth more than concurrency here — so the network
//! is a synchronous discrete-event simulation:
//!
//! - a single logical clock in microseconds ([`SimNet::now_us`]),
//! - registered [`RpcHandler`] endpoints addressed by [`EndpointId`],
//! - every [`SimNet::call`] advances the clock by a latency model
//!   (processing + distance propagation + serialization + seeded jitter)
//!   and charges bytes to both endpoints,
//! - [`SimNet::call_parallel`] models concurrent fan-out: branches start
//!   from the same instant and the clock ends at the slowest branch,
//! - failure injection: endpoints can be taken down and links can drop
//!   messages with a configured probability.
//!
//! Handlers may issue nested calls (e.g. a recursive DNS resolver
//! contacting authoritative servers), which accumulate clock time
//! exactly like sequential network round trips.

pub(crate) mod reactor;
pub mod stats;
pub mod tcp;
pub mod transport;
pub mod udp;

pub use stats::{EndpointLatency, EndpointStats, NetStats};
pub use tcp::TcpTransport;
pub use transport::{
    BackendKind, BusyReplyFn, CallHandle, ClassifyFn, CompletionSet, OverloadPolicy, PendingCall,
    SimTransport, Transfer, Transport, WireService,
};
pub use udp::{QuicLiteTransport, QuicStats};

use openflame_diag::{ranks, OrderedMutex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use openflame_geo::LatLng;

/// Decrements a shared worker-thread gauge when a worker exits: the
/// RAII guard every detached thread of the real-socket backends (TCP,
/// QuicLite) holds, so `worker_threads()` stays truthful on every exit
/// path including panics.
pub(crate) struct ThreadGuard(Arc<AtomicUsize>);

impl ThreadGuard {
    pub(crate) fn enter(counter: &Arc<AtomicUsize>) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        Self(counter.clone())
    }
}

impl Drop for ThreadGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Address of a simulated network endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EndpointId(pub u64);

/// Errors surfaced by simulated network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination endpoint is not registered.
    NoSuchEndpoint(EndpointId),
    /// Destination endpoint is administratively down.
    EndpointDown(EndpointId),
    /// The message (or its response) was dropped; the caller waited out
    /// its timeout.
    Timeout,
    /// A stream transport failed to connect or lost its connection
    /// mid-call (never produced by the simulator).
    Connection(String),
    /// The remote handler returned an application-level error.
    Service(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoSuchEndpoint(id) => write!(f, "no such endpoint {id:?}"),
            NetError::EndpointDown(id) => write!(f, "endpoint {id:?} is down"),
            NetError::Timeout => write!(f, "request timed out"),
            NetError::Connection(msg) => write!(f, "connection failed: {msg}"),
            NetError::Service(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

/// A server-side message handler.
///
/// Handlers receive the raw request payload and may issue nested calls
/// through the same [`SimNet`]. The returned bytes travel back to the
/// caller with response latency applied.
pub trait RpcHandler: Send + Sync {
    /// Handles one request.
    fn handle(&self, net: &SimNet, from: EndpointId, payload: &[u8]) -> Result<Vec<u8>, NetError>;
}

impl<F> RpcHandler for F
where
    F: Fn(&SimNet, EndpointId, &[u8]) -> Result<Vec<u8>, NetError> + Send + Sync,
{
    fn handle(&self, net: &SimNet, from: EndpointId, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self(net, from, payload)
    }
}

/// Latency model for one direction of one message.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Fixed per-message processing cost in microseconds.
    pub base_us: u64,
    /// Propagation cost per kilometer of great-circle distance between
    /// endpoint locations (microseconds).
    pub per_km_us: f64,
    /// Serialization cost per KiB of payload (microseconds).
    pub per_kib_us: u64,
    /// Maximum uniform jitter added per message (microseconds).
    pub jitter_us: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Rough WAN-flavored numbers: 200 µs processing, 5 µs/km
        // propagation, 8 µs per KiB (≈1 Gbit/s), up to 100 µs jitter.
        Self {
            base_us: 200,
            per_km_us: 5.0,
            per_kib_us: 8,
            jitter_us: 100,
        }
    }
}

struct Endpoint {
    name: String,
    handler: Option<Arc<dyn RpcHandler>>,
    location: Option<LatLng>,
    down: bool,
    stats: EndpointStats,
    latency: EndpointLatency,
}

struct NetInner {
    clock_us: u64,
    rng: StdRng,
    endpoints: HashMap<EndpointId, Endpoint>,
    next_id: u64,
    latency: LatencyModel,
    drop_probability: f64,
    timeout_us: u64,
    stats: NetStats,
}

/// The simulated network.
///
/// Cheap to clone (shared handle). All state sits behind one lock that is
/// never held across handler invocations, so nested calls are safe.
///
/// # Examples
///
/// ```
/// use openflame_netsim::{NetError, SimNet};
///
/// let net = SimNet::new(42);
/// let server = net.register("echo", None);
/// net.set_handler(
///     server,
///     |_net: &openflame_netsim::SimNet, _from, payload: &[u8]| Ok(payload.to_vec()),
/// );
/// let client = net.register("client", None);
/// let reply = net.call(client, server, b"hello".to_vec()).unwrap();
/// assert_eq!(reply, b"hello");
/// assert!(net.now_us() > 0);
/// ```
#[derive(Clone)]
pub struct SimNet {
    inner: Arc<OrderedMutex<NetInner>>,
}

impl SimNet {
    /// Creates a network with the default latency model and a
    /// deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_latency(seed, LatencyModel::default())
    }

    /// Creates a network with a custom latency model.
    pub fn with_latency(seed: u64, latency: LatencyModel) -> Self {
        Self {
            inner: Arc::new(OrderedMutex::new(
                ranks::SIM_NET,
                NetInner {
                    clock_us: 0,
                    rng: StdRng::seed_from_u64(seed),
                    endpoints: HashMap::new(),
                    next_id: 1,
                    latency,
                    drop_probability: 0.0,
                    timeout_us: 2_000_000,
                    stats: NetStats::default(),
                },
            )),
        }
    }

    /// Registers an endpoint (initially with no handler — a pure client).
    pub fn register(&self, name: impl Into<String>, location: Option<LatLng>) -> EndpointId {
        let mut inner = self.inner.lock();
        let id = EndpointId(inner.next_id);
        inner.next_id += 1;
        inner.endpoints.insert(
            id,
            Endpoint {
                name: name.into(),
                handler: None,
                location,
                down: false,
                stats: EndpointStats::default(),
                latency: EndpointLatency::default(),
            },
        );
        id
    }

    /// Installs the request handler for an endpoint.
    pub fn set_handler<H: RpcHandler + 'static>(&self, id: EndpointId, handler: H) {
        let mut inner = self.inner.lock();
        if let Some(ep) = inner.endpoints.get_mut(&id) {
            ep.handler = Some(Arc::new(handler));
        }
    }

    /// Marks an endpoint up or down (failure injection).
    pub fn set_down(&self, id: EndpointId, down: bool) {
        let mut inner = self.inner.lock();
        if let Some(ep) = inner.endpoints.get_mut(&id) {
            ep.down = down;
        }
    }

    /// Sets the probability in `[0, 1]` that any message is dropped.
    pub fn set_drop_probability(&self, p: f64) {
        self.inner.lock().drop_probability = p.clamp(0.0, 1.0);
    }

    /// Sets the timeout charged to dropped messages.
    pub fn set_timeout_us(&self, timeout_us: u64) {
        self.inner.lock().timeout_us = timeout_us;
    }

    /// Current simulated time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.inner.lock().clock_us
    }

    /// Advances the clock (e.g. a client thinking or a sensor sampling).
    pub fn advance_us(&self, dt: u64) {
        self.inner.lock().clock_us += dt;
    }

    /// Rewinds the clock to `t_us`. Used by the submit/completion wire
    /// layer: a submitted call executes eagerly from the submit instant
    /// and the clock is restored, so concurrent branches all start
    /// together; claiming the completion advances to the branch's end.
    pub(crate) fn set_clock_us(&self, t_us: u64) {
        self.inner.lock().clock_us = t_us;
    }

    /// Advances the clock to at least `t_us` (no-op if already past).
    pub(crate) fn advance_to_us(&self, t_us: u64) {
        let mut inner = self.inner.lock();
        if inner.clock_us < t_us {
            inner.clock_us = t_us;
        }
    }

    /// The registered name of an endpoint.
    pub fn endpoint_name(&self, id: EndpointId) -> Option<String> {
        self.inner.lock().endpoints.get(&id).map(|e| e.name.clone())
    }

    /// Global traffic statistics snapshot.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats.clone()
    }

    /// Per-endpoint statistics snapshot.
    pub fn endpoint_stats(&self, id: EndpointId) -> Option<EndpointStats> {
        self.inner
            .lock()
            .endpoints
            .get(&id)
            .map(|e| e.stats.clone())
    }

    /// Latency summary of completed calls *to* `id` (see
    /// [`EndpointLatency`]): samples are recorded when a call's
    /// completion is claimed, and [`SimNet::reset_stats`] clears them.
    pub fn endpoint_latency(&self, id: EndpointId) -> Option<EndpointLatency> {
        self.inner.lock().endpoints.get(&id).map(|e| e.latency)
    }

    /// Folds one completed-call latency sample into `to`'s summary.
    pub(crate) fn note_latency(&self, to: EndpointId, sample_us: u64) {
        let mut inner = self.inner.lock();
        if let Some(ep) = inner.endpoints.get_mut(&to) {
            ep.latency.observe(sample_us);
        }
    }

    /// Resets global and per-endpoint statistics (not the clock).
    /// Latency summaries reset too, so replica selection after a reset
    /// starts from the same blank book on every backend.
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = NetStats::default();
        for ep in inner.endpoints.values_mut() {
            ep.stats = EndpointStats::default();
            ep.latency = EndpointLatency::default();
        }
    }

    /// One latency sample for a message of `bytes` between two endpoints,
    /// advancing the clock and charging stats.
    fn message_hop(&self, from: EndpointId, to: EndpointId, bytes: usize) -> Result<(), NetError> {
        let mut inner = self.inner.lock();
        // Drop check.
        let p = inner.drop_probability;
        if p > 0.0 && inner.rng.gen_bool(p) {
            let timeout = inner.timeout_us;
            inner.clock_us += timeout;
            inner.stats.drops += 1;
            return Err(NetError::Timeout);
        }
        let distance_km = {
            let a = inner.endpoints.get(&from).and_then(|e| e.location);
            let b = inner.endpoints.get(&to).and_then(|e| e.location);
            match (a, b) {
                (Some(a), Some(b)) => a.haversine_distance(b) / 1000.0,
                _ => 0.0,
            }
        };
        let lm = inner.latency;
        let jitter = if lm.jitter_us > 0 {
            inner.rng.gen_range(0..=lm.jitter_us)
        } else {
            0
        };
        let latency = lm.base_us
            + (distance_km * lm.per_km_us) as u64
            + (bytes as u64).div_ceil(1024) * lm.per_kib_us
            + jitter;
        inner.clock_us += latency;
        inner.stats.messages += 1;
        inner.stats.bytes += bytes as u64;
        if let Some(src) = inner.endpoints.get_mut(&from) {
            src.stats.tx_msgs += 1;
            src.stats.tx_bytes += bytes as u64;
        }
        if let Some(dst) = inner.endpoints.get_mut(&to) {
            dst.stats.rx_msgs += 1;
            dst.stats.rx_bytes += bytes as u64;
        }
        Ok(())
    }

    /// Sends `payload` from `from` to `to` and returns the handler's
    /// response, advancing the simulated clock for both directions.
    pub fn call(
        &self,
        from: EndpointId,
        to: EndpointId,
        payload: Vec<u8>,
    ) -> Result<Vec<u8>, NetError> {
        let handler = {
            let inner = self.inner.lock();
            let ep = inner
                .endpoints
                .get(&to)
                .ok_or(NetError::NoSuchEndpoint(to))?;
            if ep.down {
                // A dead server looks like a timeout to the caller.
                drop(inner);
                let timeout = self.inner.lock().timeout_us;
                self.inner.lock().clock_us += timeout;
                return Err(NetError::EndpointDown(to));
            }
            ep.handler.clone().ok_or(NetError::NoSuchEndpoint(to))?
        };
        self.message_hop(from, to, payload.len())?;
        let response = handler.handle(self, from, &payload)?;
        self.message_hop(to, from, response.len())?;
        Ok(response)
    }

    /// Issues several calls concurrently: every branch starts at the
    /// current instant and the clock afterwards reflects the *slowest*
    /// branch, as a real fan-out would.
    pub fn call_parallel(
        &self,
        from: EndpointId,
        requests: Vec<(EndpointId, Vec<u8>)>,
    ) -> Vec<Result<Vec<u8>, NetError>> {
        self.call_parallel_traced(from, requests)
            .into_iter()
            .map(|(r, _)| r)
            .collect()
    }

    /// [`SimNet::call_parallel`] plus the per-branch latency in
    /// microseconds (each branch is timed from the shared start
    /// instant, as the transport layer's per-call stats require).
    pub fn call_parallel_traced(
        &self,
        from: EndpointId,
        requests: Vec<(EndpointId, Vec<u8>)>,
    ) -> Vec<(Result<Vec<u8>, NetError>, u64)> {
        let t0 = self.now_us();
        let mut t_end = t0;
        let mut results = Vec::with_capacity(requests.len());
        for (to, payload) in requests {
            {
                self.inner.lock().clock_us = t0;
            }
            let r = self.call(from, to, payload);
            let t = self.now_us();
            t_end = t_end.max(t);
            results.push((r, t - t0));
        }
        self.inner.lock().clock_us = t_end;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_net() -> (SimNet, EndpointId, EndpointId) {
        let net = SimNet::new(7);
        let server = net.register("echo", None);
        net.set_handler(server, |_: &SimNet, _from, payload: &[u8]| {
            Ok(payload.to_vec())
        });
        let client = net.register("client", None);
        (net, client, server)
    }

    #[test]
    fn echo_round_trip_advances_clock() {
        let (net, client, server) = echo_net();
        let t0 = net.now_us();
        let reply = net.call(client, server, vec![1, 2, 3]).unwrap();
        assert_eq!(reply, vec![1, 2, 3]);
        // Two hops, each at least base latency.
        assert!(net.now_us() >= t0 + 2 * 200);
    }

    #[test]
    fn unknown_endpoint_errors() {
        let (net, client, _) = echo_net();
        assert!(matches!(
            net.call(client, EndpointId(999), vec![]),
            Err(NetError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn handlerless_endpoint_errors() {
        let net = SimNet::new(1);
        let a = net.register("a", None);
        let b = net.register("b", None);
        assert!(matches!(
            net.call(a, b, vec![]),
            Err(NetError::NoSuchEndpoint(_))
        ));
    }

    #[test]
    fn down_endpoint_times_out() {
        let (net, client, server) = echo_net();
        net.set_down(server, true);
        let t0 = net.now_us();
        assert!(matches!(
            net.call(client, server, vec![1]),
            Err(NetError::EndpointDown(_))
        ));
        assert!(
            net.now_us() >= t0 + 2_000_000,
            "caller waited out the timeout"
        );
        net.set_down(server, false);
        assert!(net.call(client, server, vec![1]).is_ok());
    }

    #[test]
    fn larger_payloads_cost_more() {
        let (net, client, server) = echo_net();
        // Compare two identical nets with different payloads to avoid
        // jitter coupling: use zero-jitter model instead.
        let lm = LatencyModel {
            jitter_us: 0,
            ..LatencyModel::default()
        };
        let net_small = SimNet::with_latency(1, lm);
        let s1 = net_small.register("s", None);
        net_small.set_handler(s1, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
        let c1 = net_small.register("c", None);
        net_small.call(c1, s1, vec![0u8; 10]).unwrap();
        let small_t = net_small.now_us();

        let net_big = SimNet::with_latency(1, lm);
        let s2 = net_big.register("s", None);
        net_big.set_handler(s2, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
        let c2 = net_big.register("c", None);
        net_big.call(c2, s2, vec![0u8; 100 * 1024]).unwrap();
        assert!(net_big.now_us() > small_t);
        // Keep the first net alive for lint purposes.
        let _ = (net, client, server);
    }

    #[test]
    fn distance_adds_latency() {
        let lm = LatencyModel {
            jitter_us: 0,
            ..LatencyModel::default()
        };
        let near = SimNet::with_latency(1, lm);
        let a = near.register("a", Some(LatLng::new(40.0, -80.0).unwrap()));
        near.set_handler(a, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
        let b = near.register("b", Some(LatLng::new(40.001, -80.0).unwrap()));
        near.call(b, a, vec![1]).unwrap();
        let near_t = near.now_us();

        let far = SimNet::with_latency(1, lm);
        let a2 = far.register("a", Some(LatLng::new(40.0, -80.0).unwrap()));
        far.set_handler(a2, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
        let b2 = far.register("b", Some(LatLng::new(48.0, 2.0).unwrap()));
        far.call(b2, a2, vec![1]).unwrap();
        assert!(
            far.now_us() > near_t + 1000,
            "transatlantic link must cost more"
        );
    }

    #[test]
    fn drop_probability_one_always_times_out() {
        let (net, client, server) = echo_net();
        net.set_drop_probability(1.0);
        net.set_timeout_us(5_000);
        let t0 = net.now_us();
        assert_eq!(net.call(client, server, vec![1]), Err(NetError::Timeout));
        assert_eq!(net.now_us(), t0 + 5_000);
        assert_eq!(net.stats().drops, 1);
    }

    #[test]
    fn stats_account_both_directions() {
        let (net, client, server) = echo_net();
        net.call(client, server, vec![0u8; 100]).unwrap();
        let gs = net.stats();
        assert_eq!(gs.messages, 2);
        assert_eq!(gs.bytes, 200);
        let cs = net.endpoint_stats(client).unwrap();
        assert_eq!(cs.tx_msgs, 1);
        assert_eq!(cs.rx_msgs, 1);
        let ss = net.endpoint_stats(server).unwrap();
        assert_eq!(ss.rx_bytes, 100);
        assert_eq!(ss.tx_bytes, 100);
    }

    #[test]
    fn reset_stats_clears_counters_not_clock() {
        let (net, client, server) = echo_net();
        net.call(client, server, vec![1]).unwrap();
        let t = net.now_us();
        net.reset_stats();
        assert_eq!(net.stats().messages, 0);
        assert_eq!(net.endpoint_stats(client).unwrap().tx_msgs, 0);
        assert_eq!(net.now_us(), t);
    }

    #[test]
    fn parallel_fanout_costs_max_not_sum() {
        let lm = LatencyModel {
            base_us: 1_000,
            per_km_us: 0.0,
            per_kib_us: 0,
            jitter_us: 0,
        };
        let net = SimNet::with_latency(1, lm);
        let mut servers = Vec::new();
        for i in 0..8 {
            let s = net.register(format!("s{i}"), None);
            net.set_handler(s, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
            servers.push(s);
        }
        let client = net.register("c", None);
        let t0 = net.now_us();
        let results = net.call_parallel(client, servers.iter().map(|s| (*s, vec![1u8])).collect());
        assert_eq!(results.len(), 8);
        assert!(results.iter().all(|r| r.is_ok()));
        // Each call is exactly 2 ms; 8 sequential would be 16 ms.
        assert_eq!(net.now_us() - t0, 2_000);
        // Messages still counted individually.
        assert_eq!(net.stats().messages, 16);
    }

    #[test]
    fn nested_calls_accumulate_latency() {
        let lm = LatencyModel {
            base_us: 500,
            per_km_us: 0.0,
            per_kib_us: 0,
            jitter_us: 0,
        };
        let net = SimNet::new(1);
        {
            let mut inner = net.inner.lock();
            inner.latency = lm;
        }
        let backend = net.register("backend", None);
        net.set_handler(backend, |_: &SimNet, _f, _p: &[u8]| Ok(vec![9]));
        let frontend = net.register("frontend", None);
        let frontend_client = net.register("internal-client", None);
        net.set_handler(frontend, move |n: &SimNet, _f, _p: &[u8]| {
            // Proxy through to the backend.
            n.call(frontend_client, backend, vec![1])
        });
        let client = net.register("client", None);
        let t0 = net.now_us();
        let r = net.call(client, frontend, vec![1]).unwrap();
        assert_eq!(r, vec![9]);
        // Four hops of 500 µs.
        assert_eq!(net.now_us() - t0, 2_000);
    }

    #[test]
    fn determinism_same_seed_same_clock() {
        let run = |seed| {
            let net = SimNet::new(seed);
            let s = net.register("s", None);
            net.set_handler(s, |_: &SimNet, _f, p: &[u8]| Ok(p.to_vec()));
            let c = net.register("c", None);
            for i in 0..50 {
                let _ = net.call(c, s, vec![i as u8; (i * 13) % 200]);
            }
            net.now_us()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(
            run(42),
            run(43),
            "different seeds should jitter differently"
        );
    }
}
