//! Outdoor city generation: street grid, addresses, POIs.

use crate::names::{pick, AVENUE_NAMES, POI_KINDS, POI_NAMES, STREET_NAMES};
use crate::WorldConfig;
use openflame_geo::Point2;
use openflame_mapdata::{GeoReference, MapDocument, NodeId, Tags};
use rand::Rng;

/// Builds the geo-anchored outdoor map: a `blocks_x × blocks_y` street
/// grid centered on the configured city center, with named streets,
/// addressed buildings, and POIs.
///
/// The map plays the "large world-map provider" role from paper §5.2 (the
/// OpenStreetMap/Google of the simulation): public, outdoor, coarse.
pub fn build_outdoor<R: Rng>(config: &WorldConfig, rng: &mut R) -> MapDocument {
    let mut map = MapDocument::new(
        "city-outdoor",
        "world-map-provider",
        GeoReference::Anchored {
            origin: config.center,
        },
    );
    let w = config.blocks_x as f64 * config.block_m;
    let h = config.blocks_y as f64 * config.block_m;
    let origin = Point2::new(-w / 2.0, -h / 2.0);

    // Intersection grid, shared by all streets so the graph connects.
    let cols = config.blocks_x + 1;
    let rows = config.blocks_y + 1;
    let mut grid: Vec<Vec<NodeId>> = Vec::with_capacity(rows);
    for r in 0..rows {
        let mut row = Vec::with_capacity(cols);
        for c in 0..cols {
            let pos = origin + Point2::new(c as f64 * config.block_m, r as f64 * config.block_m);
            row.push(map.add_node(pos, Tags::new()));
        }
        grid.push(row);
    }

    // North-south streets.
    for c in 0..cols {
        let name = format!("{} St", STREET_NAMES[c % STREET_NAMES.len()]);
        let class = if c % 4 == 0 { "primary" } else { "residential" };
        let nodes: Vec<NodeId> = (0..rows).map(|r| grid[r][c]).collect();
        map.add_way(nodes, Tags::new().with("highway", class).with("name", name))
            .expect("grid nodes exist");
    }
    // East-west avenues.
    for r in 0..rows {
        let name = format!("{} Ave", AVENUE_NAMES[r % AVENUE_NAMES.len()]);
        let class = if r % 4 == 0 { "primary" } else { "residential" };
        let nodes: Vec<NodeId> = (0..cols).map(|c| grid[r][c]).collect();
        map.add_way(nodes, Tags::new().with("highway", class).with("name", name))
            .expect("grid nodes exist");
    }

    // Addressed buildings along each block's south side, and POIs inside
    // blocks.
    for br in 0..config.blocks_y {
        for bc in 0..config.blocks_x {
            let block_sw =
                origin + Point2::new(bc as f64 * config.block_m, br as f64 * config.block_m);
            let ave_name = format!("{} Ave", AVENUE_NAMES[br % AVENUE_NAMES.len()]);
            // Two address points per block face.
            for k in 0..2 {
                let number = 100 * (bc + 1) + 2 * k + 1;
                let pos = block_sw
                    + Point2::new(
                        config.block_m * (0.25 + 0.5 * k as f64),
                        config.block_m * 0.08,
                    );
                map.add_node(
                    pos,
                    Tags::new()
                        .with("building", "yes")
                        .with("addr:housenumber", number.to_string())
                        .with("addr:street", ave_name.clone())
                        .with("name", format!("{number} {ave_name}")),
                );
            }
            for _ in 0..config.pois_per_block {
                let (key, value, kind_label) = POI_KINDS[rng.gen_range(0..POI_KINDS.len())];
                let name = format!("{} {}", pick(rng, POI_NAMES), kind_label);
                let pos = block_sw
                    + Point2::new(
                        rng.gen_range(0.15..0.85) * config.block_m,
                        rng.gen_range(0.15..0.85) * config.block_m,
                    );
                map.add_node(pos, Tags::new().with(key, value).with("name", name));
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_routing_compat::routable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Local shim so these tests do not depend on the routing crate:
    /// counts ways usable on foot.
    mod openflame_routing_compat {
        use openflame_mapdata::MapDocument;

        pub fn routable(map: &MapDocument) -> usize {
            map.ways().filter(|w| w.tags.has("highway")).count()
        }
    }

    fn cfg() -> WorldConfig {
        WorldConfig {
            blocks_x: 4,
            blocks_y: 3,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn grid_dimensions() {
        let mut rng = StdRng::seed_from_u64(1);
        let map = build_outdoor(&cfg(), &mut rng);
        // 5 vertical + 4 horizontal streets.
        assert_eq!(routable(&map), 9);
        // 5×4 intersections plus addresses plus POIs.
        assert!(map.node_count() >= 20 + 4 * 3 * 2);
        assert!(map.validate().is_ok());
    }

    #[test]
    fn streets_are_named() {
        let mut rng = StdRng::seed_from_u64(1);
        let map = build_outdoor(&cfg(), &mut rng);
        assert!(map.ways().all(|w| w.tags.has("name")));
        assert!(map
            .ways()
            .any(|w| w.tags.get("name").unwrap().ends_with("St")));
        assert!(map
            .ways()
            .any(|w| w.tags.get("name").unwrap().ends_with("Ave")));
    }

    #[test]
    fn addresses_present() {
        let mut rng = StdRng::seed_from_u64(1);
        let map = build_outdoor(&cfg(), &mut rng);
        let addressed = map
            .nodes()
            .filter(|n| n.tags.has("addr:housenumber"))
            .count();
        assert_eq!(addressed, 4 * 3 * 2);
    }

    #[test]
    fn pois_have_names_and_kinds() {
        let mut rng = StdRng::seed_from_u64(1);
        let map = build_outdoor(&cfg(), &mut rng);
        let pois: Vec<_> = map
            .nodes()
            .filter(|n| n.tags.has("amenity") || n.tags.has("leisure") || n.tags.has("tourism"))
            .collect();
        assert_eq!(pois.len(), 4 * 3 * 2);
        assert!(pois.iter().all(|p| p.tags.has("name")));
    }

    #[test]
    fn city_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let map = build_outdoor(&cfg(), &mut rng);
        let (min, max) = map.local_bounds().unwrap();
        assert!((min.x + max.x).abs() < 60.0, "x roughly centered");
        assert!((min.y + max.y).abs() < 60.0, "y roughly centered");
    }
}
