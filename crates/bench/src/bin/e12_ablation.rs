//! E12 — ablations of two client-side design choices:
//! (a) neighbor-cell expansion during discovery (fuzzy boundaries, paper §3);
//! (b) the query-level/covering-level naming contract (paper §5.1).
//!
//! `cargo run --release -p openflame-bench --bin e12_ablation`

use openflame_bench::{header, row};
use openflame_core::{Deployment, DeploymentConfig};
use openflame_worldgen::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "E12",
        "ablations: neighbor expansion; query level vs covering level",
    );
    // ---- (a) neighbor expansion.
    println!("--- discovery recall near venue boundaries, neighbor expansion on/off ---\n");
    row(&["expansion".into(), "recall".into(), "lookups/disc".into()]);
    let world = World::generate(WorldConfig {
        stores: 12,
        ..WorldConfig::default()
    });
    for expand in [false, true] {
        // Coverings at the query level (14, ~600 m cells) with
        // urban-canyon coarse-location error up to 400 m: the regime
        // where the query cell often misses the venue's covering.
        let dep = Deployment::build(
            world.clone(),
            DeploymentConfig {
                covering_level: 14,
                ..DeploymentConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(61);
        let mut found = 0usize;
        let trials = 300usize;
        for _ in 0..trials {
            let vi = rng.gen_range(0..dep.world.venues.len());
            // A user physically at the venue whose *coarse* location is
            // off by up to 250 m — where the lookup most often lands in
            // a neighboring cell.
            let loc = dep.world.venues[vi]
                .hint
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..400.0));
            if let Ok(servers) = dep.client.discovery().discover(loc, expand) {
                if servers.iter().any(|s| s.server_id == format!("venue-{vi}")) {
                    found += 1;
                }
            }
        }
        let stats = dep.client.discovery().stats();
        row(&[
            format!("{expand}"),
            format!("{:.0}%", 100.0 * found as f64 / trials as f64),
            format!("{:.1}", stats.lookups as f64 / stats.discoveries as f64),
        ]);
    }

    // ---- (b) query level sweep against fixed covering level.
    println!("\n--- discovery success vs client query level (covering at level 13) ---\n");
    row(&["query level".into(), "success".into()]);
    let dep = Deployment::build(
        world.clone(),
        DeploymentConfig {
            covering_level: 13,
            ..DeploymentConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(62);
    for level in [11u8, 12, 13, 14, 15, 16] {
        let mut found = 0usize;
        let trials = 200usize;
        for _ in 0..trials {
            let vi = rng.gen_range(0..dep.world.venues.len());
            let loc = dep.world.venues[vi]
                .hint
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..20.0));
            if let Ok(servers) = dep.client.discovery().discover_at_level(loc, level, true) {
                if servers.iter().any(|s| s.server_id == format!("venue-{vi}")) {
                    found += 1;
                }
            }
        }
        row(&[
            format!("{level}"),
            format!("{:.0}%", 100.0 * found as f64 / trials as f64),
        ]);
    }
    println!(
        "\nexpected shape: (a) expansion recovers boundary-adjacent venues the\n\
         single-cell lookup misses, for ~5 lookups instead of 1; (b) queries\n\
         at or finer than the covering level succeed (wildcards match\n\
         descendants), queries coarser than the covering level fail — the\n\
         naming contract the paper §5.1 design must respect."
    );
}
