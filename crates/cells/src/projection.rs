//! Cube-face projection: sphere ↔ (face, u, v) ↔ (face, s, t).
//!
//! Follows the S2 construction: the unit sphere is centrally projected
//! onto the six faces of the circumscribed cube. Raw `(u, v)` face
//! coordinates in `[-1, 1]` are warped by the quadratic transform into
//! `(s, t)` in `[0, 1]` so that equal `(s, t)` areas correspond to
//! roughly equal sphere areas; quadtree cells of a given level then have
//! comparable ground sizes everywhere on Earth.

use openflame_geo::LatLng;

/// Projects a unit vector to `(face, u, v)` with `u, v ∈ [-1, 1]`.
pub fn xyz_to_face_uv(p: [f64; 3]) -> (u8, f64, f64) {
    let abs = [p[0].abs(), p[1].abs(), p[2].abs()];
    let axis = if abs[0] >= abs[1] && abs[0] >= abs[2] {
        0
    } else if abs[1] >= abs[2] {
        1
    } else {
        2
    };
    let face = if p[axis] < 0.0 {
        axis as u8 + 3
    } else {
        axis as u8
    };
    let (u, v) = match face {
        0 => (p[1] / p[0], p[2] / p[0]),
        1 => (-p[0] / p[1], p[2] / p[1]),
        2 => (-p[0] / p[2], -p[1] / p[2]),
        3 => (p[2] / p[0], p[1] / p[0]),
        4 => (p[2] / p[1], -p[0] / p[1]),
        _ => (-p[1] / p[2], -p[0] / p[2]),
    };
    (face, u, v)
}

/// Inverse of [`xyz_to_face_uv`]: returns an (unnormalized) direction
/// vector for face coordinates; `u, v` may lie outside `[-1, 1]`, which
/// is how the neighbor computation steps across face boundaries.
pub fn face_uv_to_xyz(face: u8, u: f64, v: f64) -> [f64; 3] {
    match face {
        0 => [1.0, u, v],
        1 => [-u, 1.0, v],
        2 => [-u, -v, 1.0],
        3 => [-1.0, -v, -u],
        4 => [v, -1.0, -u],
        _ => [v, u, -1.0],
    }
}

/// Quadratic area-equalizing transform from `u ∈ [-1, 1]` to
/// `s ∈ [0, 1]` (S2's `ST` coordinate).
pub fn uv_to_st(u: f64) -> f64 {
    if u >= 0.0 {
        0.5 * (1.0 + 3.0 * u).sqrt()
    } else {
        1.0 - 0.5 * (1.0 - 3.0 * u).sqrt()
    }
}

/// Inverse of [`uv_to_st`].
pub fn st_to_uv(s: f64) -> f64 {
    if s >= 0.5 {
        (1.0 / 3.0) * (4.0 * s * s - 1.0)
    } else {
        (1.0 / 3.0) * (1.0 - 4.0 * (1.0 - s) * (1.0 - s))
    }
}

/// Projects a geodetic coordinate to `(face, s, t)` with `s, t ∈ [0, 1]`.
pub fn latlng_to_face_st(p: LatLng) -> (u8, f64, f64) {
    let (face, u, v) = xyz_to_face_uv(p.to_unit_vector());
    (face, uv_to_st(u), uv_to_st(v))
}

/// Lifts `(face, s, t)` back to a geodetic coordinate.
pub fn face_st_to_latlng(face: u8, s: f64, t: f64) -> LatLng {
    let xyz = face_uv_to_xyz(face, st_to_uv(s), st_to_uv(t));
    let norm = (xyz[0] * xyz[0] + xyz[1] * xyz[1] + xyz[2] * xyz[2]).sqrt();
    LatLng::from_unit_vector([xyz[0] / norm, xyz[1] / norm, xyz[2] / norm])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_centers_project_to_origin() {
        // The +x axis is the center of face 0.
        let (face, u, v) = xyz_to_face_uv([1.0, 0.0, 0.0]);
        assert_eq!(face, 0);
        assert!(u.abs() < 1e-15 && v.abs() < 1e-15);
        let (face_neg, ..) = xyz_to_face_uv([-1.0, 0.0, 0.0]);
        assert_eq!(face_neg, 3);
    }

    #[test]
    fn all_faces_reachable() {
        let dirs: [[f64; 3]; 6] = [
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [-1.0, 0.0, 0.0],
            [0.0, -1.0, 0.0],
            [0.0, 0.0, -1.0],
        ];
        for (i, d) in dirs.iter().enumerate() {
            assert_eq!(xyz_to_face_uv(*d).0, i as u8);
        }
    }

    #[test]
    fn xyz_uv_round_trip_on_each_face() {
        for face in 0..6u8 {
            for &(u, v) in &[(0.0, 0.0), (0.5, -0.3), (-0.9, 0.9), (1.0, 1.0)] {
                let xyz = face_uv_to_xyz(face, u, v);
                let n = (xyz[0] * xyz[0] + xyz[1] * xyz[1] + xyz[2] * xyz[2]).sqrt();
                let unit = [xyz[0] / n, xyz[1] / n, xyz[2] / n];
                let (f2, u2, v2) = xyz_to_face_uv(unit);
                // Corner points (|u| = |v| = 1) may land on an adjacent
                // face; skip the face assertion there.
                if u.abs() < 1.0 && v.abs() < 1.0 {
                    assert_eq!(f2, face, "face {face} uv ({u},{v})");
                }
                assert!((u2 - u).abs() < 1e-12 || f2 != face);
                assert!((v2 - v).abs() < 1e-12 || f2 != face);
            }
        }
    }

    #[test]
    fn st_uv_round_trip() {
        for i in 0..=100 {
            let s = i as f64 / 100.0;
            let u = st_to_uv(s);
            assert!((-1.0..=1.0).contains(&u));
            assert!((uv_to_st(u) - s).abs() < 1e-12, "s = {s}");
        }
    }

    #[test]
    fn st_transform_monotone() {
        let mut prev = st_to_uv(0.0);
        for i in 1..=50 {
            let cur = st_to_uv(i as f64 / 50.0);
            assert!(cur > prev);
            prev = cur;
        }
    }

    #[test]
    fn latlng_round_trip() {
        for &(lat, lng) in &[
            (0.0, 0.0),
            (40.44, -79.94),
            (-33.86, 151.21),
            (75.0, 10.0),
            (-80.0, -170.0),
            (0.1, 179.9),
        ] {
            let p = LatLng::new(lat, lng).unwrap();
            let (f, s, t) = latlng_to_face_st(p);
            assert!((0.0..=1.0).contains(&s) && (0.0..=1.0).contains(&t));
            let q = face_st_to_latlng(f, s, t);
            assert!(p.haversine_distance(q) < 1e-6, "{p} vs {q}");
        }
    }
}
