//! Planar polylines: length, interpolation, projection, simplification.

use crate::{GeoError, Point2};

/// An ordered sequence of planar points describing an open path.
///
/// Used for road centerlines, walls, navigation paths, and GPS traces in
/// local metric coordinates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Polyline {
    points: Vec<Point2>,
}

/// The result of projecting a point onto a polyline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projection {
    /// The closest point on the polyline.
    pub point: Point2,
    /// Index of the segment `[i, i+1]` containing the closest point.
    pub segment: usize,
    /// Parameter in `[0, 1]` along that segment.
    pub t: f64,
    /// Distance from the query point to `point`.
    pub distance: f64,
    /// Arc length from the start of the polyline to `point`.
    pub along: f64,
}

impl Polyline {
    /// Creates a polyline; requires at least two points.
    pub fn new(points: Vec<Point2>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::InsufficientPoints {
                needed: 2,
                got: points.len(),
            });
        }
        Ok(Self { points })
    }

    /// The vertices of the polyline.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the polyline has no vertices (never true for constructed
    /// values; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arc length.
    pub fn length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// The point at arc-length `s` from the start, clamped to the ends.
    pub fn point_at(&self, s: f64) -> Point2 {
        if s <= 0.0 {
            return self.points[0];
        }
        let mut remaining = s;
        for w in self.points.windows(2) {
            let seg = w[0].distance(w[1]);
            if remaining <= seg {
                if seg < 1e-12 {
                    return w[0];
                }
                return w[0].lerp(w[1], remaining / seg);
            }
            remaining -= seg;
        }
        *self.points.last().expect("polyline has >= 2 points")
    }

    /// Projects `p` onto the polyline, returning the closest point and
    /// where it lies.
    pub fn project(&self, p: Point2) -> Projection {
        let mut best = Projection {
            point: self.points[0],
            segment: 0,
            t: 0.0,
            distance: p.distance(self.points[0]),
            along: 0.0,
        };
        let mut along_start = 0.0;
        for (i, w) in self.points.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            let ab = b - a;
            let seg_len_sq = ab.dot(ab);
            let t = if seg_len_sq < 1e-24 {
                0.0
            } else {
                ((p - a).dot(ab) / seg_len_sq).clamp(0.0, 1.0)
            };
            let q = a.lerp(b, t);
            let d = p.distance(q);
            if d < best.distance {
                best = Projection {
                    point: q,
                    segment: i,
                    t,
                    distance: d,
                    along: along_start + a.distance(q),
                };
            }
            along_start += a.distance(b);
        }
        best
    }

    /// Ramer-Douglas-Peucker simplification with tolerance `epsilon`.
    ///
    /// Returns a new polyline containing a subset of the original
    /// vertices whose maximum deviation from the original is at most
    /// `epsilon`.
    pub fn simplified(&self, epsilon: f64) -> Polyline {
        let mut keep = vec![false; self.points.len()];
        keep[0] = true;
        *keep.last_mut().expect("non-empty") = true;
        rdp_mark(&self.points, 0, self.points.len() - 1, epsilon, &mut keep);
        let points: Vec<Point2> = self
            .points
            .iter()
            .zip(keep.iter())
            .filter_map(|(p, &k)| if k { Some(*p) } else { None })
            .collect();
        Polyline { points }
    }

    /// Resamples the polyline at (approximately) uniform `step` spacing,
    /// always keeping the first and last vertices.
    pub fn resampled(&self, step: f64) -> Polyline {
        assert!(step > 0.0, "resample step must be positive");
        let total = self.length();
        if total < 1e-12 {
            return self.clone();
        }
        let n = (total / step).ceil().max(1.0) as usize;
        let mut pts = Vec::with_capacity(n + 1);
        for i in 0..=n {
            pts.push(self.point_at(total * i as f64 / n as f64));
        }
        Polyline { points: pts }
    }
}

/// Marks vertices to keep for RDP between `lo` and `hi` (exclusive ends
/// already marked).
///
/// Uses distance to the *segment* (not the infinite line), which gives
/// the stronger guarantee that every dropped vertex is within `epsilon`
/// of the simplified polyline itself.
fn rdp_mark(points: &[Point2], lo: usize, hi: usize, epsilon: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (a, b) = (points[lo], points[hi]);
    let mut max_d = -1.0;
    let mut max_i = lo;
    for (i, &p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = crate::polygon::segment_distance(p, a, b);
        if d > max_d {
            max_d = d;
            max_i = i;
        }
    }
    if max_d > epsilon {
        keep[max_i] = true;
        rdp_mark(points, lo, max_i, epsilon, keep);
        rdp_mark(points, max_i, hi, epsilon, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
        ])
        .unwrap()
    }

    #[test]
    fn new_requires_two_points() {
        assert!(Polyline::new(vec![]).is_err());
        assert!(Polyline::new(vec![Point2::ZERO]).is_err());
        assert!(Polyline::new(vec![Point2::ZERO, Point2::new(1.0, 0.0)]).is_ok());
    }

    #[test]
    fn length_of_l_shape() {
        assert!((l_shape().length() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_walks_the_path() {
        let l = l_shape();
        assert_eq!(l.point_at(-5.0), Point2::new(0.0, 0.0));
        assert_eq!(l.point_at(0.0), Point2::new(0.0, 0.0));
        assert_eq!(l.point_at(5.0), Point2::new(5.0, 0.0));
        assert_eq!(l.point_at(10.0), Point2::new(10.0, 0.0));
        assert_eq!(l.point_at(15.0), Point2::new(10.0, 5.0));
        assert_eq!(l.point_at(20.0), Point2::new(10.0, 10.0));
        assert_eq!(l.point_at(99.0), Point2::new(10.0, 10.0));
    }

    #[test]
    fn project_onto_interior() {
        let l = l_shape();
        let pr = l.project(Point2::new(5.0, 3.0));
        assert_eq!(pr.segment, 0);
        assert!((pr.point.x - 5.0).abs() < 1e-12 && pr.point.y.abs() < 1e-12);
        assert!((pr.distance - 3.0).abs() < 1e-12);
        assert!((pr.along - 5.0).abs() < 1e-12);
    }

    #[test]
    fn project_clamps_to_endpoints() {
        let l = l_shape();
        let pr = l.project(Point2::new(-4.0, -3.0));
        assert_eq!(pr.point, Point2::new(0.0, 0.0));
        assert!((pr.distance - 5.0).abs() < 1e-12);
        let pr2 = l.project(Point2::new(13.0, 14.0));
        assert_eq!(pr2.point, Point2::new(10.0, 10.0));
        assert!((pr2.distance - 5.0).abs() < 1e-12);
    }

    #[test]
    fn project_picks_nearest_segment() {
        let l = l_shape();
        let pr = l.project(Point2::new(9.0, 8.0));
        assert_eq!(pr.segment, 1);
        assert!((pr.along - (10.0 + 8.0)).abs() < 1e-9);
    }

    #[test]
    fn simplify_removes_collinear_points() {
        let l = Polyline::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.001),
            Point2::new(2.0, -0.001),
            Point2::new(3.0, 0.0),
        ])
        .unwrap();
        let s = l.simplified(0.01);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0], Point2::new(0.0, 0.0));
        assert_eq!(s.points()[1], Point2::new(3.0, 0.0));
    }

    #[test]
    fn simplify_keeps_corners() {
        let s = l_shape().simplified(0.5);
        assert_eq!(s.len(), 3, "the right-angle corner must survive");
    }

    #[test]
    fn resample_uniform_spacing() {
        let l = l_shape();
        let r = l.resampled(2.0);
        assert_eq!(r.points()[0], Point2::new(0.0, 0.0));
        assert_eq!(*r.points().last().unwrap(), Point2::new(10.0, 10.0));
        // Total length preserved within tolerance (corner cut slightly).
        assert!((r.length() - 20.0).abs() < 1.0);
        // Steps are close to the requested spacing.
        for w in r.points().windows(2) {
            assert!(w[0].distance(w[1]) <= 2.0 + 1e-9);
        }
    }
}
