//! Pipelining stress: many concurrent sessions scatter wide fan-outs
//! over ONE shared real-socket transport, and the transport's
//! worker-thread population stays bounded — it does not grow with
//! fan-out width, session count or call volume.
//!
//! This is the acceptance check for the submit/completion redesign:
//! the old backend spawned one OS thread per scatter *branch* (width ×
//! rounds × sessions threads over a run); the reactor model spawns two
//! workers per pooled connection on the client side, and per served
//! endpoint one accept loop, a bounded dispatch pool of `SERVE_POOL`
//! workers, and a reader + writer pair per server-side connection —
//! all reused round after round. The QuicLite datagram backend pins a
//! strictly lower ceiling: one shared client socket multiplexes every
//! destination, so there are no per-connection worker pairs at all.

use openflame_core::{ClientError, Session};
use openflame_mapserver::protocol::{Envelope, HelloInfo, Request, Response};
use openflame_mapserver::Principal;
use openflame_netsim::tcp::{TcpTransport, POOL_CAP, SERVE_POOL};
use openflame_netsim::udp::{QuicLiteTransport, SERVE_POOL as UDP_SERVE_POOL};
use openflame_netsim::{EndpointId, Transport};
use std::sync::Arc;

const SESSIONS: usize = 4;
const SERVERS: usize = 32;
const ROUNDS: usize = 8;

/// A minimal map-protocol stub: answers every batched request with a
/// `Hello`, like a server that only speaks capability discovery.
fn stub_service(id: usize) -> Arc<dyn openflame_netsim::WireService> {
    Arc::new(move |_from: EndpointId, payload: &[u8]| {
        let env: Envelope = openflame_codec::from_bytes(payload).expect("well-formed envelope");
        let Request::Batch(items) = env.request else {
            panic!("sessions always batch");
        };
        let answers: Vec<Response> = items
            .iter()
            .map(|_| {
                Response::Hello(HelloInfo {
                    server_id: format!("stub-{id}"),
                    map_name: "stress".into(),
                    services: vec!["hello".into()],
                    localization_techs: Vec::new(),
                    anchored: false,
                    anchor: None,
                    portals: Vec::new(),
                    version: 1,
                })
            })
            .collect();
        openflame_codec::to_bytes(&Response::Batch(answers)).to_vec()
    })
}

#[test]
fn worker_threads_bounded_under_concurrent_fanout() {
    let transport = TcpTransport::new(42);
    let shared: Arc<dyn Transport> = Arc::new(transport.clone());

    let servers: Vec<EndpointId> = (0..SERVERS)
        .map(|i| {
            let id = shared.register(&format!("stub-{i}"), None);
            shared.set_service(id, stub_service(i));
            id
        })
        .collect();

    let sessions: Vec<Session> = (0..SESSIONS)
        .map(|i| {
            let endpoint = shared.register(&format!("session-{i}"), None);
            Session::new(shared.clone(), endpoint, Principal::anonymous())
        })
        .collect();

    // Warm-up round: every session scatters once, dialing whatever
    // connections the pools will hold onto.
    for session in &sessions {
        for result in session.batch_parallel(
            servers
                .iter()
                .map(|s| (*s, vec![Request::Hello]))
                .collect::<Vec<_>>(),
        ) {
            result.expect("warm-up scatter succeeds");
        }
    }
    let after_warmup = transport.worker_threads();

    // The stress: all sessions scatter concurrently, round after round.
    std::thread::scope(|scope| {
        for session in &sessions {
            let servers = &servers;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let calls: Vec<(EndpointId, Vec<Request>)> = servers
                        .iter()
                        .map(|s| (*s, vec![Request::Hello, Request::Hello]))
                        .collect();
                    for (i, result) in session.batch_parallel(calls).into_iter().enumerate() {
                        let responses: Result<Vec<Response>, ClientError> = result;
                        let responses = responses
                            .unwrap_or_else(|e| panic!("round {round} branch {i} failed: {e}"));
                        assert_eq!(responses.len(), 2, "positional batch answers");
                        assert!(matches!(responses[0], Response::Hello(_)));
                    }
                }
            });
        }
    });

    // Thread population: bounded by pools, regardless of the
    // SESSIONS × ROUNDS × SERVERS branches just issued. Budget per
    // server: 1 accept loop + SERVE_POOL dispatch workers + POOL_CAP
    // client connections × (client writer + client reader +
    // server-side connection reader + server-side connection writer).
    let ceiling = SERVERS * (1 + SERVE_POOL + 4 * POOL_CAP);
    let now = transport.worker_threads();
    assert!(
        now <= ceiling,
        "worker threads {now} exceed the pool ceiling {ceiling}"
    );
    // And stable: steady-state scattering reuses the warm connections
    // instead of spawning per-branch threads (a small allowance covers
    // pools deepened by genuine concurrency after warm-up).
    let grow_cap = after_warmup + SERVERS * 4 * (POOL_CAP - 1);
    assert!(
        now <= grow_cap,
        "threads grew from {after_warmup} to {now}, cap {grow_cap}"
    );

    // Wire accounting is exact: every envelope is one request frame
    // plus one response frame, nothing else rode the sockets.
    let envelopes = (SESSIONS * (1 + ROUNDS) * SERVERS) as u64;
    assert_eq!(transport.stats().messages, 2 * envelopes);
    assert_eq!(
        transport.orphan_responses(),
        0,
        "no response went unmatched under pipelining"
    );

    // Every session kept the one-envelope-per-server discipline.
    for session in &sessions {
        let stats = session.stats();
        assert_eq!(stats.batches, ((1 + ROUNDS) * SERVERS) as u64);
    }
}

#[test]
fn quiclite_worker_threads_bounded_under_concurrent_fanout() {
    // The same stress on the datagram backend, whose thread story is
    // strictly better: ONE shared client socket (receiver + RTO timer)
    // multiplexes every destination, and each served endpoint runs one
    // receiver plus its dispatch pool — no per-connection worker pairs
    // at all, so the ceiling is a small constant per server instead of
    // TCP's `1 + SERVE_POOL + 4 * POOL_CAP`.
    let transport = QuicLiteTransport::new(42);
    let shared: Arc<dyn Transport> = Arc::new(transport.clone());

    let servers: Vec<EndpointId> = (0..SERVERS)
        .map(|i| {
            let id = shared.register(&format!("stub-{i}"), None);
            shared.set_service(id, stub_service(i));
            id
        })
        .collect();

    let sessions: Vec<Session> = (0..SESSIONS)
        .map(|i| {
            let endpoint = shared.register(&format!("session-{i}"), None);
            Session::new(shared.clone(), endpoint, Principal::anonymous())
        })
        .collect();

    // Warm-up: every session scatters once (cold connects pay their
    // handshake round here).
    for session in &sessions {
        for result in session.batch_parallel(
            servers
                .iter()
                .map(|s| (*s, vec![Request::Hello]))
                .collect::<Vec<_>>(),
        ) {
            result.expect("warm-up scatter succeeds");
        }
    }
    let after_warmup = transport.worker_threads();

    std::thread::scope(|scope| {
        for session in &sessions {
            let servers = &servers;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let calls: Vec<(EndpointId, Vec<Request>)> = servers
                        .iter()
                        .map(|s| (*s, vec![Request::Hello, Request::Hello]))
                        .collect();
                    for (i, result) in session.batch_parallel(calls).into_iter().enumerate() {
                        let responses: Result<Vec<Response>, ClientError> = result;
                        let responses = responses
                            .unwrap_or_else(|e| panic!("round {round} branch {i} failed: {e}"));
                        assert_eq!(responses.len(), 2, "positional batch answers");
                        assert!(matches!(responses[0], Response::Hello(_)));
                    }
                }
            });
        }
    });

    // Per served endpoint: 1 receiver + the dispatch pool. Plus the
    // shared client receiver and the RTO timer. Nothing scales with
    // fan-out width, session count or call volume.
    let ceiling = SERVERS * (1 + UDP_SERVE_POOL) + 2;
    let now = transport.worker_threads();
    assert!(
        now <= ceiling,
        "worker threads {now} exceed the QuicLite ceiling {ceiling}"
    );
    assert_eq!(
        now, after_warmup,
        "steady-state scattering must not spawn further workers"
    );

    // Wire accounting stays exact under concurrency and multiplexing:
    // one request + one response frame per envelope, nothing else.
    let envelopes = (SESSIONS * (1 + ROUNDS) * SERVERS) as u64;
    assert_eq!(transport.stats().messages, 2 * envelopes);
    assert_eq!(
        transport.orphan_responses(),
        0,
        "no response went unmatched under pipelining"
    );
    for session in &sessions {
        let stats = session.stats();
        assert_eq!(stats.batches, ((1 + ROUNDS) * SERVERS) as u64);
    }
}
