//! Planar affine transforms and least-squares fitting from point
//! correspondences.
//!
//! This is the workspace's implementation of the MapCruncher-style
//! alignment the paper proposes for stitching maps in different
//! coordinate frames (paper §5.2): given a handful of manually matched points
//! between two frames, fit the transform that best aligns them.

use crate::linalg::least_squares;
use crate::{GeoError, Point2};

/// A 2-D affine transform `q = A·p + t` stored as
/// `[a, b, c, d, tx, ty]` meaning `qx = a·px + b·py + tx`,
/// `qy = c·px + d·py + ty`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine2 {
    /// Row-major linear part and translation: `[a, b, c, d, tx, ty]`.
    pub m: [f64; 6],
}

impl Affine2 {
    /// The identity transform.
    pub const IDENTITY: Affine2 = Affine2 {
        m: [1.0, 0.0, 0.0, 1.0, 0.0, 0.0],
    };

    /// A pure translation.
    pub fn translation(t: Point2) -> Affine2 {
        Affine2 {
            m: [1.0, 0.0, 0.0, 1.0, t.x, t.y],
        }
    }

    /// A rotation by `angle_rad` counter-clockwise about the origin.
    pub fn rotation(angle_rad: f64) -> Affine2 {
        let (s, c) = angle_rad.sin_cos();
        Affine2 {
            m: [c, -s, s, c, 0.0, 0.0],
        }
    }

    /// A uniform scale about the origin.
    pub fn scale(factor: f64) -> Affine2 {
        Affine2 {
            m: [factor, 0.0, 0.0, factor, 0.0, 0.0],
        }
    }

    /// A similarity transform: rotate by `angle_rad`, scale by `s`, then
    /// translate by `t`.
    pub fn similarity(angle_rad: f64, s: f64, t: Point2) -> Affine2 {
        let (sin, cos) = angle_rad.sin_cos();
        Affine2 {
            m: [s * cos, -s * sin, s * sin, s * cos, t.x, t.y],
        }
    }

    /// Applies the transform to a point.
    pub fn apply(&self, p: Point2) -> Point2 {
        let [a, b, c, d, tx, ty] = self.m;
        Point2::new(a * p.x + b * p.y + tx, c * p.x + d * p.y + ty)
    }

    /// Composition: `self ∘ other`, i.e. apply `other` first.
    pub fn compose(&self, other: &Affine2) -> Affine2 {
        let [a1, b1, c1, d1, tx1, ty1] = self.m;
        let [a2, b2, c2, d2, tx2, ty2] = other.m;
        Affine2 {
            m: [
                a1 * a2 + b1 * c2,
                a1 * b2 + b1 * d2,
                c1 * a2 + d1 * c2,
                c1 * b2 + d1 * d2,
                a1 * tx2 + b1 * ty2 + tx1,
                c1 * tx2 + d1 * ty2 + ty1,
            ],
        }
    }

    /// The inverse transform, or an error if the linear part is singular.
    pub fn inverse(&self) -> Result<Affine2, GeoError> {
        let [a, b, c, d, tx, ty] = self.m;
        let det = a * d - b * c;
        if det.abs() < 1e-15 {
            return Err(GeoError::DegenerateFit("singular affine transform".into()));
        }
        let (ia, ib, ic, id) = (d / det, -b / det, -c / det, a / det);
        Ok(Affine2 {
            m: [ia, ib, ic, id, -(ia * tx + ib * ty), -(ic * tx + id * ty)],
        })
    }

    /// Determinant of the linear part (area scale factor).
    pub fn det(&self) -> f64 {
        self.m[0] * self.m[3] - self.m[1] * self.m[2]
    }

    /// Fits the full affine transform minimizing
    /// `Σ |apply(src_i) - dst_i|²`. Needs at least three non-collinear
    /// correspondences.
    pub fn fit_affine(pairs: &[(Point2, Point2)]) -> Result<Affine2, GeoError> {
        if pairs.len() < 3 {
            return Err(GeoError::InsufficientPoints {
                needed: 3,
                got: pairs.len(),
            });
        }
        // Two independent 3-unknown systems: one for x' and one for y'.
        let rows: Vec<Vec<f64>> = pairs.iter().map(|(s, _)| vec![s.x, s.y, 1.0]).collect();
        let xs: Vec<f64> = pairs.iter().map(|(_, d)| d.x).collect();
        let ys: Vec<f64> = pairs.iter().map(|(_, d)| d.y).collect();
        let px = least_squares(&rows, &xs, 3)?;
        let py = least_squares(&rows, &ys, 3)?;
        Ok(Affine2 {
            m: [px[0], px[1], py[0], py[1], px[2], py[2]],
        })
    }

    /// Fits a similarity transform (rotation + uniform scale +
    /// translation) minimizing the squared correspondence error. Needs at
    /// least two distinct correspondences.
    ///
    /// This is the right model when both frames are metric but one is
    /// rotated/offset — the common case for indoor maps surveyed in their
    /// own local frame (paper §3).
    pub fn fit_similarity(pairs: &[(Point2, Point2)]) -> Result<Affine2, GeoError> {
        if pairs.len() < 2 {
            return Err(GeoError::InsufficientPoints {
                needed: 2,
                got: pairs.len(),
            });
        }
        // Closed-form linear least squares over parameters (a, b, tx, ty)
        // with the transform [[a, -b], [b, a]].
        let n = pairs.len() as f64;
        let (mut sx, mut sy, mut dx, mut dy) = (0.0, 0.0, 0.0, 0.0);
        for (s, d) in pairs {
            sx += s.x;
            sy += s.y;
            dx += d.x;
            dy += d.y;
        }
        let (msx, msy, mdx, mdy) = (sx / n, sy / n, dx / n, dy / n);
        let (mut num_a, mut num_b, mut den) = (0.0, 0.0, 0.0);
        for (s, d) in pairs {
            let (ux, uy) = (s.x - msx, s.y - msy);
            let (vx, vy) = (d.x - mdx, d.y - mdy);
            num_a += ux * vx + uy * vy;
            num_b += ux * vy - uy * vx;
            den += ux * ux + uy * uy;
        }
        if den < 1e-18 {
            return Err(GeoError::DegenerateFit(
                "all source correspondence points coincide".into(),
            ));
        }
        let a = num_a / den;
        let b = num_b / den;
        let tx = mdx - a * msx + b * msy;
        let ty = mdy - b * msx - a * msy;
        Ok(Affine2 {
            m: [a, -b, b, a, tx, ty],
        })
    }

    /// Root-mean-square residual of the transform over correspondences.
    pub fn rms_error(&self, pairs: &[(Point2, Point2)]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let sum: f64 = pairs
            .iter()
            .map(|(s, d)| self.apply(*s).distance_sq(*d))
            .sum();
        (sum / pairs.len() as f64).sqrt()
    }

    /// The rotation angle (radians) implied by the linear part, assuming
    /// a similarity transform.
    pub fn rotation_angle(&self) -> f64 {
        self.m[2].atan2(self.m[0])
    }

    /// The uniform scale implied by the linear part, assuming a
    /// similarity transform.
    pub fn uniform_scale(&self) -> f64 {
        (self.m[0].hypot(self.m[2]) + self.m[1].hypot(self.m[3])) / 2.0
    }
}

impl Default for Affine2 {
    fn default() -> Self {
        Affine2::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Point2, b: Point2, eps: f64) -> bool {
        a.distance(b) < eps
    }

    #[test]
    fn identity_is_noop() {
        let p = Point2::new(3.0, -4.0);
        assert_eq!(Affine2::IDENTITY.apply(p), p);
    }

    #[test]
    fn translation_rotation_scale() {
        let p = Point2::new(1.0, 0.0);
        assert!(close(
            Affine2::translation(Point2::new(2.0, 3.0)).apply(p),
            Point2::new(3.0, 3.0),
            1e-12
        ));
        assert!(close(
            Affine2::rotation(std::f64::consts::FRAC_PI_2).apply(p),
            Point2::new(0.0, 1.0),
            1e-12
        ));
        assert!(close(
            Affine2::scale(2.5).apply(p),
            Point2::new(2.5, 0.0),
            1e-12
        ));
    }

    #[test]
    fn compose_order() {
        // compose applies `other` first: translate then rotate.
        let t = Affine2::translation(Point2::new(1.0, 0.0));
        let r = Affine2::rotation(std::f64::consts::FRAC_PI_2);
        let rt = r.compose(&t);
        let p = rt.apply(Point2::ZERO);
        assert!(close(p, Point2::new(0.0, 1.0), 1e-12), "{p}");
        let tr = t.compose(&r);
        assert!(close(tr.apply(Point2::ZERO), Point2::new(1.0, 0.0), 1e-12));
    }

    #[test]
    fn inverse_round_trips() {
        let m = Affine2::similarity(0.7, 1.8, Point2::new(-4.0, 9.0));
        let inv = m.inverse().unwrap();
        for &(x, y) in &[(0.0, 0.0), (10.0, -3.0), (-7.5, 2.25)] {
            let p = Point2::new(x, y);
            assert!(close(inv.apply(m.apply(p)), p, 1e-9));
        }
    }

    #[test]
    fn inverse_rejects_singular() {
        let degenerate = Affine2 {
            m: [1.0, 2.0, 2.0, 4.0, 0.0, 0.0],
        };
        assert!(degenerate.inverse().is_err());
    }

    #[test]
    fn fit_similarity_recovers_exact_transform() {
        let truth = Affine2::similarity(0.35, 1.25, Point2::new(12.0, -7.0));
        let srcs = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(3.0, 8.0),
            Point2::new(-5.0, 4.0),
        ];
        let pairs: Vec<_> = srcs.iter().map(|&s| (s, truth.apply(s))).collect();
        let fit = Affine2::fit_similarity(&pairs).unwrap();
        assert!(fit.rms_error(&pairs) < 1e-9);
        assert!((fit.rotation_angle() - 0.35).abs() < 1e-9);
        assert!((fit.uniform_scale() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn fit_similarity_with_two_points() {
        let truth = Affine2::similarity(-0.5, 2.0, Point2::new(1.0, 1.0));
        let pairs = vec![
            (Point2::new(0.0, 0.0), truth.apply(Point2::new(0.0, 0.0))),
            (Point2::new(4.0, 0.0), truth.apply(Point2::new(4.0, 0.0))),
        ];
        let fit = Affine2::fit_similarity(&pairs).unwrap();
        assert!(fit.rms_error(&pairs) < 1e-9);
    }

    #[test]
    fn fit_similarity_rejects_degenerate() {
        assert!(Affine2::fit_similarity(&[]).is_err());
        let same = Point2::new(1.0, 1.0);
        assert!(Affine2::fit_similarity(&[(same, Point2::ZERO), (same, Point2::ZERO)]).is_err());
    }

    #[test]
    fn fit_affine_recovers_shear() {
        // A non-similarity affine (shear) that only fit_affine can model.
        let truth = Affine2 {
            m: [1.0, 0.4, 0.0, 1.0, 5.0, -2.0],
        };
        let srcs = [
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(7.0, 3.0),
        ];
        let pairs: Vec<_> = srcs.iter().map(|&s| (s, truth.apply(s))).collect();
        let fit = Affine2::fit_affine(&pairs).unwrap();
        assert!(fit.rms_error(&pairs) < 1e-9);
        for (f, t) in fit.m.iter().zip(truth.m.iter()) {
            assert!((f - t).abs() < 1e-9);
        }
    }

    #[test]
    fn fit_affine_rejects_collinear() {
        let pairs: Vec<_> = (0..5)
            .map(|i| (Point2::new(i as f64, 0.0), Point2::new(i as f64, 1.0)))
            .collect();
        assert!(Affine2::fit_affine(&pairs).is_err());
    }

    #[test]
    fn noisy_fit_reduces_error_with_more_points() {
        // With symmetric noise, more correspondences give a better fit;
        // this backs experiment E7.
        let truth = Affine2::similarity(0.2, 1.0, Point2::new(3.0, 3.0));
        let noise = [0.5, -0.5, 0.3, -0.3, 0.2, -0.2, 0.1, -0.1];
        let mk_pairs = |n: usize| -> Vec<(Point2, Point2)> {
            (0..n)
                .map(|i| {
                    let s = Point2::new((i as f64 * 7.3) % 50.0, (i as f64 * 13.7) % 50.0);
                    let d = truth.apply(s) + Point2::new(noise[i % 8], noise[(i + 3) % 8]);
                    (s, d)
                })
                .collect()
        };
        let exact: Vec<(Point2, Point2)> = (0..32)
            .map(|i| {
                let s = Point2::new((i as f64 * 7.3) % 50.0, (i as f64 * 13.7) % 50.0);
                (s, truth.apply(s))
            })
            .collect();
        let fit4 = Affine2::fit_similarity(&mk_pairs(4)).unwrap();
        let fit24 = Affine2::fit_similarity(&mk_pairs(24)).unwrap();
        assert!(fit24.rms_error(&exact) <= fit4.rms_error(&exact) + 1e-9);
    }

    #[test]
    fn det_matches_scale_squared() {
        let m = Affine2::similarity(1.1, 3.0, Point2::ZERO);
        assert!((m.det() - 9.0).abs() < 1e-9);
    }
}
