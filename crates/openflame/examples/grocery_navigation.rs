//! The paper's §2 example application, narrated end to end: find a
//! specific flavor of seaweed and navigate to the exact shelf, with
//! localization switching from GPS to the store's beacons at the door.
//!
//! Run with: `cargo run --release --example grocery_navigation`

use openflame_core::{run_grocery_scenario, Deployment, DeploymentConfig, ProviderKind};
use openflame_routing::turn_instructions;
use openflame_worldgen::{World, WorldConfig};

fn main() {
    let world = World::generate(WorldConfig::default());
    // Find a seaweed product, like the paper's protagonist.
    let (idx, product) = world
        .products
        .iter()
        .enumerate()
        .find(|(_, p)| p.name.contains("seaweed"))
        .expect("every default world stocks seaweed somewhere");
    println!("user wants: {:?}", product.name);
    println!(
        "(stocked, unknown to the user, in {})\n",
        world.venues[product.venue].name
    );

    // ---- The federated flow, step by step.
    let dep = Deployment::build(world.clone(), DeploymentConfig::default());
    let store_hint = dep.world.venues[product.venue].hint;
    let user = store_hint.destination(225.0, 90.0);

    println!("1. discovery at the user's coarse GPS position:");
    for s in dep.client.discover(user).unwrap() {
        println!("   - {}", s.server_id);
    }

    println!("\n2. federated search for the product:");
    let hits = dep.client.federated_search(&product.name, user, 3).unwrap();
    for h in &hits {
        println!("   [{}] {}", h.server_id, h.result.label);
    }
    let target = &hits[0];

    println!("\n3. stitched route (outdoor → entrance → shelf):");
    let route = dep.client.federated_route(user, target).unwrap();
    for (i, leg) in route.legs.iter().enumerate() {
        println!(
            "   leg {} [{}]: {:.0} m",
            i + 1,
            leg.server_id,
            leg.route.length_m
        );
        let steps = turn_instructions(&leg.route.geometry);
        for step in steps.iter().take(6) {
            println!("      {:>6.1} m  {:?}", step.distance_m, step.maneuver);
        }
        if steps.len() > 6 {
            println!("      ... {} more steps", steps.len() - 6);
        }
    }
    println!(
        "   total: {:.0} m, {:.0} s on foot",
        route.total_length_m, route.total_cost
    );

    // ---- The comparison table (Figure 1 vs Figure 2, E1).
    println!("\n4. architecture comparison for this errand:");
    println!(
        "   {:<24} {:>7} {:>7} {:>10} {:>12} {:>10}",
        "provider", "found", "shelf", "route (m)", "indoor loc", "err (m)"
    );
    for kind in [
        ProviderKind::CentralizedPublic,
        ProviderKind::CentralizedOmniscient,
        ProviderKind::Federated,
    ] {
        let r = run_grocery_scenario(&world, kind, idx, 42).unwrap();
        println!(
            "   {:<24} {:>7} {:>7} {:>10} {:>11.0}% {:>10}",
            format!("{kind:?}"),
            r.found_product,
            r.route_reaches_shelf,
            r.route_length_m
                .map(|l| format!("{l:.0}"))
                .unwrap_or_else(|| "-".into()),
            r.indoor_availability * 100.0,
            r.indoor_median_err_m
                .map(|e| format!("{e:.1}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!("\nThe centralized public map cannot find the product; the omniscient");
    println!("variant finds and routes to it but still cannot localize indoors;");
    println!("only the federation completes the errand (paper §2 of the paper).");
}
