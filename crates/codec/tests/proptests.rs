//! Property-based round-trip and robustness tests for the wire codec.

use openflame_codec::{from_bytes, to_bytes, CodecError, Reader, Wire, Writer};
use proptest::prelude::*;

/// A representative composite message exercising nesting.
#[derive(Debug, Clone, PartialEq)]
struct Msg {
    id: u64,
    name: String,
    score: f64,
    tags: Vec<(String, String)>,
    parent: Option<i64>,
}

impl Wire for Msg {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        self.name.encode(w);
        self.score.encode(w);
        self.tags.encode(w);
        self.parent.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Msg {
            id: u64::decode(r)?,
            name: String::decode(r)?,
            score: f64::decode(r)?,
            tags: Vec::decode(r)?,
            parent: Option::decode(r)?,
        })
    }
}

fn arb_msg() -> impl Strategy<Value = Msg> {
    (
        any::<u64>(),
        ".{0,40}",
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
        proptest::collection::vec((".{0,10}", ".{0,10}"), 0..8),
        proptest::option::of(any::<i64>()),
    )
        .prop_map(|(id, name, score, tags, parent)| Msg {
            id,
            name,
            score,
            tags,
            parent,
        })
}

proptest! {
    #[test]
    fn u64_round_trip(v in any::<u64>()) {
        prop_assert_eq!(from_bytes::<u64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(from_bytes::<i64>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn f64_round_trip_bitwise(v in any::<f64>()) {
        let back = from_bytes::<f64>(&to_bytes(&v)).unwrap();
        prop_assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn string_round_trip(s in ".{0,200}") {
        prop_assert_eq!(from_bytes::<String>(&to_bytes(&s.clone())).unwrap(), s);
    }

    #[test]
    fn vec_round_trip(v in proptest::collection::vec(any::<u32>(), 0..100)) {
        prop_assert_eq!(from_bytes::<Vec<u32>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn composite_message_round_trip(m in arb_msg()) {
        prop_assert_eq!(from_bytes::<Msg>(&to_bytes(&m)).unwrap(), m);
    }

    #[test]
    fn truncation_never_panics(m in arb_msg(), cut in 0usize..64) {
        let buf = to_bytes(&m);
        let end = cut.min(buf.len());
        // Any prefix must decode cleanly or error — never panic.
        let _ = from_bytes::<Msg>(&buf[..end]);
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<Msg>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<(u64, String)>(&bytes);
    }

    #[test]
    fn varint_encoding_is_minimal(v in any::<u64>()) {
        let len = to_bytes(&v).len();
        let expected = if v == 0 { 1 } else { (64 - v.leading_zeros() as usize).div_ceil(7) };
        prop_assert_eq!(len, expected);
    }
}
