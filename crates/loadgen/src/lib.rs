//! `loadgen`: the city-scale open-loop load harness.
//!
//! Stands up a complete federated deployment (DNS hierarchy, outdoor
//! provider, one map server per venue) on a **real-socket** backend
//! (TCP or QuicLite), then replays a pre-generated open-loop trace
//! ([`openflame_worldgen::workload::generate_trace`]) against it:
//! Poisson arrivals at a fixed offered rate, Zipf-skewed venue
//! locality, a mixed search/route/localize/tile op class per arrival,
//! and a distinct principal per logical session (a thousand-plus of
//! them), so the servers' per-principal admission fairness is
//! exercised by the workload itself.
//!
//! # Open-loop discipline
//!
//! The submitter thread paces arrivals on the wall clock and submits
//! through the transport's **non-blocking** path
//! ([`openflame_netsim::Transport::submit`]), so a slow server cannot
//! throttle the generator — queueing shows up in the measured latency
//! instead of silently vanishing (the coordinated-omission trap).
//! Each op's recorded latency is `(actual submit − scheduled arrival)
//! + wire latency`: generator lag is charged to the measurement, never
//! hidden. A small collector pool claims completions and classifies
//! them — served, shed (`Response::Busy`, wire protocol spec §10), or
//! error — into per-op-class [`LogHistogram`]s.
//!
//! # What the report proves
//!
//! [`LoadReport`] (serialized by [`LoadReport::to_json`], the
//! schema-stable `BENCH_load.json` CI artifact) records per-op-class
//! p50/p99/p999/mean latency, throughput, shed and error counts, the
//! transport's shed counter and dispatch-depth high-water, and the
//! thread census — the evidence that a thousand concurrent sessions
//! ride on O(cores) transport threads while overload degrades into
//! fast retryable `Busy` rather than unbounded queueing.

pub mod harness;
pub mod histogram;

pub use harness::{run, LoadConfig, LoadReport, OpClassReport};
pub use histogram::LogHistogram;
