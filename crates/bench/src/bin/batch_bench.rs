//! Batch bench — what the batched, session-cached wire path buys.
//!
//! Sweeps the federation fan-out and compares, per federated search:
//!
//! - **cold**: a fresh client whose session knows nothing — it pays
//!   DNS discovery plus one hello round before the search round;
//! - **warm**: the same client a moment later — discovery and hellos
//!   come from the session cache and the search costs exactly one
//!   batched envelope per discovered server.
//!
//! `cargo run --release -p openflame-bench --bin batch_bench`

use openflame_bench::{header, mean, row};
use openflame_core::{Deployment, DeploymentConfig, OpenFlameClient};
use openflame_worldgen::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "BATCH",
        "cold vs warm session: messages, bytes and latency per federated search",
    );
    row(&[
        "servers".into(),
        "cold msgs".into(),
        "warm msgs".into(),
        "cold KiB".into(),
        "warm KiB".into(),
        "cold ms".into(),
        "warm ms".into(),
        "envelopes/search".into(),
    ]);
    for stores in [4usize, 8, 16, 32] {
        let world = World::generate(WorldConfig {
            stores,
            products_per_store: 12,
            blocks_x: 8,
            blocks_y: 8,
            ..WorldConfig::default()
        });
        let dep = Deployment::build(world, DeploymentConfig::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut cold_msgs = Vec::new();
        let mut warm_msgs = Vec::new();
        let mut cold_kib = Vec::new();
        let mut warm_kib = Vec::new();
        let mut cold_ms = Vec::new();
        let mut warm_ms = Vec::new();
        let mut envelopes = Vec::new();
        for _ in 0..20 {
            let product = &dep.world.products[rng.gen_range(0..dep.world.products.len())];
            let near = dep.world.venues[product.venue]
                .hint
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..100.0));
            // Cold: a fresh client with an empty session.
            let cold_client =
                OpenFlameClient::builder().build_on(dep.transport.clone(), dep.resolver.clone());
            dep.transport.reset_stats();
            let t0 = dep.transport.now_us();
            let _ = cold_client.federated_search(&product.name, near, 5);
            cold_msgs.push(dep.transport.stats().messages as f64);
            cold_kib.push(dep.transport.stats().bytes as f64 / 1024.0);
            cold_ms.push((dep.transport.now_us() - t0) as f64 / 1000.0);
            // Warm: the same client again, caches populated.
            dep.transport.reset_stats();
            let batches_before = cold_client.session().stats().batches;
            let t0 = dep.transport.now_us();
            let _ = cold_client.federated_search(&product.name, near, 5);
            warm_msgs.push(dep.transport.stats().messages as f64);
            warm_kib.push(dep.transport.stats().bytes as f64 / 1024.0);
            warm_ms.push((dep.transport.now_us() - t0) as f64 / 1000.0);
            envelopes.push((cold_client.session().stats().batches - batches_before) as f64);
        }
        row(&[
            format!("{}", stores + 1),
            format!("{:.0}", mean(&cold_msgs)),
            format!("{:.0}", mean(&warm_msgs)),
            format!("{:.1}", mean(&cold_kib)),
            format!("{:.1}", mean(&warm_kib)),
            format!("{:.2}", mean(&cold_ms)),
            format!("{:.2}", mean(&warm_ms)),
            format!("{:.0}", mean(&envelopes)),
        ]);
    }
    println!(
        "\nexpected shape: warm msgs == 2 x discovered servers (one batched\n\
         envelope per server, request + response), warm latency one RTT of\n\
         concurrent fan-out; cold pays DNS + hello on top, once per session\n\
         rather than once per operation."
    );
}
