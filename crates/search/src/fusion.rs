//! Client-side fusion of ranked result lists from many map servers.
//!
//! "The client would then rank results from multiple map servers and
//! present them to the application" (paper §5.2). Servers are heterogeneous —
//! their scores are not comparable — so fusion uses reciprocal-rank
//! fusion (RRF), which only relies on per-list ranks, plus label-based
//! deduplication for areas covered by overlapping maps (paper §3).

use crate::index::SearchResult;

/// RRF smoothing constant (the standard value from the literature).
const RRF_K: f64 = 60.0;

/// A fused result with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedResult {
    /// The underlying result (the best-ranked instance if duplicated).
    pub result: SearchResult,
    /// Index of the list (server) the kept instance came from.
    pub source: usize,
    /// Fused RRF score across all lists.
    pub fused_score: f64,
}

/// Fuses per-server ranked lists into one ranking.
///
/// Duplicate detection: two results with the same case-insensitive label
/// are treated as the same real-world entity when they come from
/// *different* servers (overlapping maps describing the same place);
/// within one server, equal labels are distinct items (two shelves of
/// the same product).
///
/// # Examples
///
/// ```
/// use openflame_geo::Point2;
/// use openflame_mapdata::{ElementId, NodeId};
/// use openflame_search::{fuse_ranked, SearchResult};
///
/// let mk = |label: &str| SearchResult {
///     element: ElementId::Node(NodeId(1)),
///     pos: Point2::ZERO,
///     text_score: 1.0,
///     distance_m: 0.0,
///     score: 1.0,
///     label: label.to_string(),
/// };
/// let fused = fuse_ranked(vec![
///     vec![mk("Cafe A"), mk("Cafe B")],
///     vec![mk("Cafe B"), mk("Cafe C")],
/// ], 10);
/// // Cafe B appears in both lists and wins.
/// assert_eq!(fused[0].result.label, "Cafe B");
/// ```
pub fn fuse_ranked(lists: Vec<Vec<SearchResult>>, k: usize) -> Vec<FusedResult> {
    struct Acc {
        best: SearchResult,
        source: usize,
        best_rank: usize,
        fused: f64,
    }
    let mut by_key: Vec<(String, Acc)> = Vec::new();
    for (list_idx, list) in lists.into_iter().enumerate() {
        // Within one list, disambiguate equal labels by occurrence.
        let mut seen_in_list: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        for (rank, result) in list.into_iter().enumerate() {
            let base = result.label.to_lowercase();
            let occurrence = seen_in_list.entry(base.clone()).or_insert(0);
            let key = format!("{base}#{occurrence}");
            *occurrence += 1;
            let contribution = 1.0 / (RRF_K + rank as f64 + 1.0);
            if let Some((_, acc)) = by_key.iter_mut().find(|(existing, _)| *existing == key) {
                acc.fused += contribution;
                if rank < acc.best_rank {
                    acc.best = result;
                    acc.best_rank = rank;
                    acc.source = list_idx;
                }
            } else {
                by_key.push((
                    key,
                    Acc {
                        best: result,
                        source: list_idx,
                        best_rank: rank,
                        fused: contribution,
                    },
                ));
            }
        }
    }
    let mut out: Vec<FusedResult> = by_key
        .into_iter()
        .map(|(_, acc)| FusedResult {
            result: acc.best,
            source: acc.source,
            fused_score: acc.fused,
        })
        .collect();
    // RRF ties are common when each server contributes one top hit;
    // break them by the servers' own scores (not comparable in general,
    // but a far better tiebreak than the alphabet), then by label for
    // determinism.
    out.sort_by(|a, b| {
        b.fused_score
            .total_cmp(&a.fused_score)
            .then_with(|| b.result.score.total_cmp(&a.result.score))
            .then_with(|| a.result.label.cmp(&b.result.label))
    });
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_geo::Point2;
    use openflame_mapdata::{ElementId, NodeId};

    fn r(label: &str, score: f64) -> SearchResult {
        SearchResult {
            element: ElementId::Node(NodeId(1)),
            pos: Point2::ZERO,
            text_score: score,
            distance_m: 0.0,
            score,
            label: label.to_string(),
        }
    }

    #[test]
    fn consensus_items_rank_first() {
        let fused = fuse_ranked(
            vec![
                vec![r("A", 0.9), r("B", 0.8), r("C", 0.7)],
                vec![r("B", 0.5), r("D", 0.4)],
                vec![r("B", 0.99), r("A", 0.1)],
            ],
            10,
        );
        assert_eq!(fused[0].result.label, "B", "B appears in all three lists");
        assert_eq!(fused[1].result.label, "A");
    }

    #[test]
    fn dedupe_is_case_insensitive_and_keeps_best_rank() {
        let fused = fuse_ranked(
            vec![
                vec![r("Cafe X", 0.9)],
                vec![r("cafe x", 0.2), r("Other", 0.1)],
            ],
            10,
        );
        assert_eq!(fused.len(), 2);
        // The kept instance is the rank-0 one from list 0.
        assert_eq!(fused[0].result.label, "Cafe X");
        assert_eq!(fused[0].source, 0);
    }

    #[test]
    fn same_label_within_one_server_not_merged() {
        // A store with two shelves of the same product.
        let fused = fuse_ranked(vec![vec![r("Seaweed", 0.9), r("Seaweed", 0.8)]], 10);
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn truncation_and_empty_inputs() {
        assert!(fuse_ranked(vec![], 10).is_empty());
        assert!(fuse_ranked(vec![vec![], vec![]], 10).is_empty());
        let fused = fuse_ranked(vec![vec![r("A", 1.0), r("B", 0.5), r("C", 0.2)]], 2);
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn single_list_preserves_order() {
        let fused = fuse_ranked(vec![vec![r("A", 0.9), r("B", 0.8), r("C", 0.7)]], 10);
        let labels: Vec<&str> = fused.iter().map(|f| f.result.label.as_str()).collect();
        assert_eq!(labels, vec!["A", "B", "C"]);
    }

    #[test]
    fn fused_scores_decrease_with_rank() {
        let fused = fuse_ranked(
            vec![
                vec![r("A", 0.9), r("B", 0.8)],
                vec![r("A", 0.9), r("B", 0.8)],
            ],
            10,
        );
        assert!(fused[0].fused_score > fused[1].fused_score);
    }
}
