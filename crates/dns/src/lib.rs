//! A DNS substrate: zones, authoritative servers and a caching
//! iterative resolver over the simulated network.
//!
//! The paper's key discovery insight (paper §5.1) is that the *already
//! federated* DNS can serve as the spatial database: spatial cells become
//! hierarchical names, map-server registrations become resource records,
//! and discovery becomes a domain lookup that benefits from DNS's
//! ubiquitous caching. This crate provides the DNS itself:
//!
//! - [`DomainName`] — label sequences with parsing and subdomain math,
//! - [`Record`] / [`RecordData`] — `A`-, `NS`-, `TXT`- and `MAPSRV`-type
//!   records (the latter carries a map server's endpoint and service
//!   advertisement),
//! - [`Zone`] — record storage with DNS-style wildcard matching and
//!   delegation cuts,
//! - [`AuthServer`] — an authoritative server bound to a
//!   [`SimNet`](openflame_netsim::SimNet) endpoint,
//! - [`Resolver`] — an iterative resolver with TTL + LRU caching and
//!   negative caching, the component whose cache behaviour experiment E2
//!   measures.

pub mod name;
pub mod record;
pub mod resolver;
pub mod server;
pub mod zone;

pub use name::DomainName;
pub use record::{FleetReplica, FleetShard, Record, RecordData, RecordType};
pub use resolver::{QueryOutcome, Resolver, ResolverConfig, ResolverStats};
pub use server::AuthServer;
pub use zone::Zone;

/// Errors produced by DNS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// A name failed to parse.
    BadName(String),
    /// The name definitely does not exist (authoritative NXDOMAIN).
    NxDomain(String),
    /// The server failed or the message could not be decoded.
    ServFail(String),
    /// Network-level failure (timeout, dead server).
    Network(String),
    /// Resolution exceeded the referral-depth limit.
    TooManyReferrals,
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::BadName(n) => write!(f, "malformed domain name {n:?}"),
            DnsError::NxDomain(n) => write!(f, "NXDOMAIN: {n}"),
            DnsError::ServFail(msg) => write!(f, "SERVFAIL: {msg}"),
            DnsError::Network(msg) => write!(f, "network failure: {msg}"),
            DnsError::TooManyReferrals => write!(f, "referral chain too deep"),
        }
    }
}

impl std::error::Error for DnsError {}
