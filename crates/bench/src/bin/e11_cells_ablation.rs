//! E11 — ablation of the spatial index choice: S2-style cube-face cells
//! vs classic geohash rectangles for zone coverings.
//!
//! `cargo run --release -p openflame-bench --bin e11_cells_ablation`

use openflame_bench::{header, mean, row};
use openflame_cells::{geohash, CellId, Region, RegionCoverer};
use openflame_geo::{BBox, LatLng};

fn main() {
    header(
        "E11",
        "covering efficiency: S2-style cells vs geohash, across latitudes",
    );
    println!("zone: 100 m-radius venue; covering must contain the whole zone\n");
    row(&[
        "latitude".into(),
        "index".into(),
        "unit".into(),
        "cells".into(),
        "covered km²".into(),
        "waste×".into(),
    ]);
    let zone_radius = 100.0;
    let zone_area_km2 = std::f64::consts::PI * (zone_radius / 1000.0) * (zone_radius / 1000.0);
    for lat in [0.0f64, 30.0, 50.0, 70.0] {
        let centers: Vec<LatLng> = (0..8)
            .map(|i| LatLng::new(lat, -100.0 + i as f64 * 3.0).unwrap())
            .collect();
        // S2-style covering at the level whose cells best match 100 m.
        let level = 16u8; // ~150 m cells
        let mut s2_cells = Vec::new();
        for c in &centers {
            let cover = RegionCoverer::default().covering_at_level(
                &Region::Cap {
                    center: *c,
                    radius_m: zone_radius,
                },
                level,
            );
            s2_cells.push(cover.len() as f64);
        }
        let s2_area = CellId::average_area_m2(level) / 1e6;
        row(&[
            format!("{lat:.0}°"),
            "s2-cells".into(),
            format!("L{level}"),
            format!("{:.1}", mean(&s2_cells)),
            format!("{:.3}", mean(&s2_cells) * s2_area),
            format!("{:.1}", mean(&s2_cells) * s2_area / zone_area_km2),
        ]);
        // Geohash covering at the length whose cells best match 100 m.
        let len = 7usize; // ~153 m × 153 m at the equator, matching L16
        let mut gh_counts = Vec::new();
        let mut gh_area = Vec::new();
        for c in &centers {
            let b = BBox::from_corners(*c, *c).padded(zone_radius);
            if let Ok(cover) = geohash::covering(&b, len, 4096) {
                gh_counts.push(cover.len() as f64);
                let (w, h) = geohash::cell_dimensions_m(len, c.lat());
                gh_area.push(cover.len() as f64 * w * h / 1e6);
            }
        }
        row(&[
            format!("{lat:.0}°"),
            "geohash".into(),
            format!("len{len}"),
            format!("{:.1}", mean(&gh_counts)),
            format!("{:.3}", mean(&gh_area)),
            format!("{:.1}", mean(&gh_area) / zone_area_km2),
        ]);
    }
    println!("\n--- cell shape distortion with latitude ---\n");
    row(&[
        "latitude".into(),
        "s2 aspect".into(),
        "geohash aspect".into(),
    ]);
    for lat in [0.0f64, 30.0, 50.0, 70.0] {
        let p = LatLng::new(lat, 10.0).unwrap();
        let cell = CellId::from_latlng(p, 16).unwrap();
        let bb = cell.bbox();
        let s2_aspect = (bb.width_m() / bb.height_m()).max(bb.height_m() / bb.width_m());
        let (w, h) = geohash::cell_dimensions_m(7, lat);
        let gh_aspect = (w / h).max(h / w);
        row(&[
            format!("{lat:.0}°"),
            format!("{s2_aspect:.2}"),
            format!("{gh_aspect:.2}"),
        ]);
    }
    println!(
        "\nablation rationale (paper §5.1 cites S2/H3): cube-face cells keep nearly\n\
         constant ground size and aspect at every latitude, so a venue costs\n\
         the same number of DNS records in Singapore and in Tromsø; geohash\n\
         rectangles flatten toward the poles, inflating record counts and\n\
         covered-area waste. Expected shape: geohash aspect ratio grows with\n\
         latitude while the cell index stays near square."
    );
}
