//! Approximating geographic regions by sets of cells.
//!
//! A map server's zone (paper §3) is registered in the discovery layer as a
//! covering: a small set of cells whose union contains the zone. The
//! coverer here mirrors the structure of S2's `RegionCoverer`: start from
//! the face cells, recursively refine cells that straddle the region
//! boundary, and stop when a budget or maximum level is reached.

use crate::cellid::{normalize_cells, CellId, MAX_LEVEL, NUM_FACES};
use openflame_geo::{BBox, LatLng};

/// A geographic region that can be covered by cells.
///
/// Tests are conservative with respect to the cell's bounding box, which
/// guarantees coverings *cover* (no false negatives) at the cost of an
/// occasional extra cell.
#[derive(Debug, Clone)]
pub enum Region {
    /// A spherical cap: all points within `radius_m` of `center`.
    Cap {
        /// Center of the cap.
        center: LatLng,
        /// Radius in meters.
        radius_m: f64,
    },
    /// A latitude/longitude rectangle.
    Rect(BBox),
}

impl Region {
    /// Whether the region definitely contains the point.
    pub fn contains_point(&self, p: LatLng) -> bool {
        match self {
            Region::Cap { center, radius_m } => center.haversine_distance(p) <= *radius_m,
            Region::Rect(b) => b.contains(p),
        }
    }

    /// Whether the region may intersect the cell (conservative: uses the
    /// cell's bounding box, so `true` can be spurious but `false` is
    /// definite).
    pub fn may_intersect_cell(&self, cell: CellId) -> bool {
        let bb = cell.bbox();
        match self {
            Region::Cap { center, radius_m } => bbox_min_distance(&bb, *center) <= *radius_m,
            Region::Rect(r) => r.intersects(&bb),
        }
    }

    /// Whether the region definitely contains the whole cell.
    pub fn contains_cell(&self, cell: CellId) -> bool {
        let bb = cell.bbox();
        match self {
            Region::Cap { center, radius_m } => {
                // Max distance to bbox corners bounds max distance to the
                // cell from above only if the cell is inside its bbox —
                // which it is by construction.
                bb.corners()
                    .iter()
                    .all(|c| center.haversine_distance(*c) <= *radius_m)
                    && center.haversine_distance(bb.center()) <= *radius_m
            }
            Region::Rect(r) => r.contains_bbox(&bb),
        }
    }

    /// A bounding box of the region.
    pub fn bbox(&self) -> BBox {
        match self {
            Region::Cap { center, radius_m } => {
                BBox::from_corners(*center, *center).padded(*radius_m)
            }
            Region::Rect(b) => *b,
        }
    }
}

/// Great-circle distance from `p` to the nearest point of `b` (zero if
/// inside).
fn bbox_min_distance(b: &BBox, p: LatLng) -> f64 {
    if b.contains(p) {
        return 0.0;
    }
    let clamped_lat = p.lat().clamp(b.lat_lo(), b.lat_hi());
    let clamped_lng = p.lng().clamp(b.lng_lo(), b.lng_hi());
    p.haversine_distance(LatLng::new_unchecked(clamped_lat, clamped_lng))
}

/// Produces cell coverings of regions.
///
/// # Examples
///
/// ```
/// use openflame_cells::{Region, RegionCoverer};
/// use openflame_geo::LatLng;
///
/// let coverer = RegionCoverer::new(8, 14, 32);
/// let region = Region::Cap {
///     center: LatLng::new(40.44, -79.94).unwrap(),
///     radius_m: 500.0,
/// };
/// let cells = coverer.covering(&region);
/// assert!(!cells.is_empty() && cells.len() <= 32);
/// ```
#[derive(Debug, Clone)]
pub struct RegionCoverer {
    min_level: u8,
    max_level: u8,
    max_cells: usize,
}

impl RegionCoverer {
    /// Creates a coverer producing cells between `min_level` and
    /// `max_level`, with at most `max_cells` cells (best effort: the
    /// covering may exceed the budget only when even `min_level` cells
    /// cannot stay within it).
    ///
    /// # Panics
    ///
    /// Panics if `min_level > max_level`, `max_level > 30`, or
    /// `max_cells == 0`.
    pub fn new(min_level: u8, max_level: u8, max_cells: usize) -> Self {
        assert!(min_level <= max_level && max_level <= MAX_LEVEL && max_cells > 0);
        Self {
            min_level,
            max_level,
            max_cells,
        }
    }

    /// A covering of `region`: a normalized set of cells whose union
    /// contains every point of the region.
    pub fn covering(&self, region: &Region) -> Vec<CellId> {
        // Phase 1: walk down from the faces to min_level, keeping only
        // cells that may intersect the region.
        let mut frontier: Vec<CellId> = (0..NUM_FACES)
            .map(|f| CellId::from_face(f).expect("valid face"))
            .filter(|c| region.may_intersect_cell(*c))
            .collect();
        let mut level = 0;
        while level < self.min_level {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for cell in &frontier {
                for child in cell.children().expect("below max level") {
                    if region.may_intersect_cell(child) {
                        next.push(child);
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        // Phase 2: refine boundary cells while the budget allows.
        // Interior cells (fully contained) are final. Splitting one cell
        // replaces it with up to 4, so require headroom before splitting.
        let mut result: Vec<CellId> = Vec::new();
        let mut queue: Vec<CellId> = frontier;
        while let Some(cell) = queue.pop() {
            let splittable = cell.level() < self.max_level
                && !region.contains_cell(cell)
                && result.len() + queue.len() + 4 <= self.max_cells;
            if splittable {
                let kids: Vec<CellId> = cell
                    .children()
                    .expect("below max level")
                    .into_iter()
                    .filter(|c| region.may_intersect_cell(*c))
                    .collect();
                if kids.is_empty() {
                    // Conservative parent test hit a false positive; keep
                    // the parent to preserve the covering guarantee.
                    result.push(cell);
                } else {
                    queue.extend(kids);
                }
            } else {
                result.push(cell);
            }
        }
        normalize_cells(result)
    }

    /// A covering where every cell is exactly `level` (no merging), the
    /// form used for DNS registration where each cell is one name.
    pub fn covering_at_level(&self, region: &Region, level: u8) -> Vec<CellId> {
        assert!(level <= MAX_LEVEL);
        let single = RegionCoverer::new(level, level, usize::MAX - 4);
        let mut cells = single.covering(region);
        // Normalization may have merged complete quads; re-expand them.
        let mut out = Vec::with_capacity(cells.len());
        while let Some(c) = cells.pop() {
            if c.level() == level {
                out.push(c);
            } else {
                cells.extend(c.children().expect("below target level"));
            }
        }
        out.sort();
        out
    }
}

impl Default for RegionCoverer {
    fn default() -> Self {
        RegionCoverer::new(4, 16, 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(radius_m: f64) -> Region {
        Region::Cap {
            center: LatLng::new(40.4433, -79.9436).unwrap(),
            radius_m,
        }
    }

    #[test]
    fn covering_covers_cap_samples() {
        let region = cap(800.0);
        let cells = RegionCoverer::new(8, 16, 48).covering(&region);
        assert!(!cells.is_empty());
        let center = LatLng::new(40.4433, -79.9436).unwrap();
        // Sample points throughout the cap must be covered.
        for bearing in (0..360).step_by(30) {
            for frac in [0.0, 0.5, 0.99] {
                let p = center.destination(bearing as f64, 800.0 * frac);
                assert!(
                    cells.iter().any(|c| c.contains_point(p)),
                    "uncovered point at bearing {bearing} frac {frac}"
                );
            }
        }
    }

    #[test]
    fn covering_respects_budget() {
        let region = cap(5_000.0);
        for budget in [4usize, 8, 16, 64] {
            let cells = RegionCoverer::new(4, 18, budget).covering(&region);
            assert!(
                cells.len() <= budget,
                "budget {budget}: got {}",
                cells.len()
            );
        }
    }

    #[test]
    fn smaller_region_needs_no_more_cells() {
        let big = RegionCoverer::new(6, 14, 64).covering(&cap(10_000.0));
        let small = RegionCoverer::new(6, 14, 64).covering(&cap(100.0));
        // Not strictly monotone in general, but a 100 m cap at level ≤ 14
        // is a handful of cells while 10 km needs many.
        assert!(small.len() <= big.len());
        assert!(small.len() <= 6);
    }

    #[test]
    fn covering_rect_covers_corners_and_center() {
        let b = BBox::new(40.40, 40.46, -79.99, -79.90).unwrap();
        let region = Region::Rect(b);
        let cells = RegionCoverer::new(6, 15, 64).covering(&region);
        for p in b.corners().into_iter().chain([b.center()]) {
            // Corners are on the boundary; nudge inside to dodge edge
            // ambiguity.
            let inside = LatLng::new_unchecked(
                p.lat().clamp(b.lat_lo() + 1e-6, b.lat_hi() - 1e-6),
                p.lng().clamp(b.lng_lo() + 1e-6, b.lng_hi() - 1e-6),
            );
            assert!(cells.iter().any(|c| c.contains_point(inside)));
        }
    }

    #[test]
    fn covering_at_level_uniform() {
        let region = cap(600.0);
        let cells = RegionCoverer::default().covering_at_level(&region, 13);
        assert!(!cells.is_empty());
        assert!(cells.iter().all(|c| c.level() == 13));
        // Sorted and unique.
        for w in cells.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn finer_level_uses_more_cells() {
        let region = cap(1_000.0);
        let coarse = RegionCoverer::default().covering_at_level(&region, 11);
        let fine = RegionCoverer::default().covering_at_level(&region, 14);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn covering_is_normalized() {
        let region = cap(3_000.0);
        let cells = RegionCoverer::new(6, 14, 64).covering(&region);
        let normalized = crate::cellid::normalize_cells(cells.clone());
        assert_eq!(cells, normalized);
    }

    #[test]
    fn cap_region_point_tests() {
        let r = cap(100.0);
        let c = LatLng::new(40.4433, -79.9436).unwrap();
        assert!(r.contains_point(c));
        assert!(r.contains_point(c.destination(45.0, 99.0)));
        assert!(!r.contains_point(c.destination(45.0, 101.0)));
    }

    #[test]
    fn whole_earth_rect_touches_all_faces() {
        let everything = Region::Rect(BBox::new(-89.0, 89.0, -179.9, 179.9).unwrap());
        let cells = RegionCoverer::new(0, 2, 6).covering(&everything);
        // With budget 6 the covering stays at the face level.
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.level() == 0));
    }
}
