//! Criterion micro-benches for the routing engines (backs E4a's
//! wall-clock columns).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use openflame_routing::{astar, bidirectional, dijkstra, ContractionHierarchy, Profile, RoadGraph};
use openflame_worldgen::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_routing(c: &mut Criterion) {
    let world = World::generate(WorldConfig {
        blocks_x: 30,
        blocks_y: 30,
        stores: 0,
        pois_per_block: 0,
        ..WorldConfig::default()
    });
    let graph = RoadGraph::from_map(&world.outdoor, Profile::Driving);
    let ch = ContractionHierarchy::build(&graph);
    let ids: Vec<_> = world.outdoor.nodes().map(|n| n.id).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let mut pair = || {
        (
            ids[rng.gen_range(0..ids.len())],
            ids[rng.gen_range(0..ids.len())],
        )
    };
    let pairs: Vec<_> = (0..64).map(|_| pair()).collect();
    let mut group = c.benchmark_group("routing_query_961n");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let mut i = 0usize;
    group.bench_function("dijkstra", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let _ = dijkstra(&graph, pairs[i].0, pairs[i].1);
        })
    });
    group.bench_function("bidirectional", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let _ = bidirectional(&graph, pairs[i].0, pairs[i].1);
        })
    });
    group.bench_function("astar", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let _ = astar(&graph, pairs[i].0, pairs[i].1);
        })
    });
    group.bench_function("ch", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            let _ = ch.query(pairs[i].0, pairs[i].1);
        })
    });
    group.finish();

    let mut prep = c.benchmark_group("routing_preprocess");
    prep.sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let small = World::generate(WorldConfig {
        blocks_x: 12,
        blocks_y: 12,
        stores: 0,
        pois_per_block: 0,
        ..WorldConfig::default()
    });
    let small_graph = RoadGraph::from_map(&small.outdoor, Profile::Driving);
    prep.bench_function("ch_build_169n", |b| {
        b.iter_batched(
            || small_graph.clone(),
            |g| ContractionHierarchy::build(&g),
            BatchSize::SmallInput,
        )
    });
    prep.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
