//! Property-based tests for search ranking and fusion.

use openflame_geo::Point2;
use openflame_mapdata::{ElementId, GeoReference, MapDocument, NodeId, Tags};
use openflame_search::{fuse_ranked, SearchIndex, SearchResult};
use proptest::prelude::*;

fn result(label: &str, score: f64) -> SearchResult {
    SearchResult {
        element: ElementId::Node(NodeId(1)),
        pos: Point2::ZERO,
        text_score: score,
        distance_m: 0.0,
        score,
        label: label.to_string(),
    }
}

proptest! {
    #[test]
    fn fusion_output_bounded_and_sorted(
        lists in proptest::collection::vec(
            proptest::collection::vec(("[a-z]{1,6}", 0.0f64..10.0), 0..8),
            0..6,
        ),
        k in 1usize..20,
    ) {
        let lists: Vec<Vec<SearchResult>> = lists
            .into_iter()
            .map(|l| l.into_iter().map(|(s, sc)| result(&s, sc)).collect())
            .collect();
        let fused = fuse_ranked(lists, k);
        prop_assert!(fused.len() <= k);
        for w in fused.windows(2) {
            prop_assert!(w[0].fused_score >= w[1].fused_score);
        }
    }

    #[test]
    fn fusion_consensus_never_hurts(label in "[a-z]{3,8}", others in proptest::collection::vec("[a-z]{3,8}", 1..5)) {
        // An item present in two lists must rank at least as high as the
        // same item present in one list, all else equal.
        prop_assume!(!others.contains(&label));
        let single = fuse_ranked(
            vec![vec![result(&label, 1.0)], others.iter().map(|o| result(o, 1.0)).collect()],
            20,
        );
        let double = fuse_ranked(
            vec![
                vec![result(&label, 1.0)],
                std::iter::once(result(&label, 1.0))
                    .chain(others.iter().map(|o| result(o, 1.0)))
                    .collect(),
            ],
            20,
        );
        let pos_single = single.iter().position(|f| f.result.label == label).unwrap();
        let pos_double = double.iter().position(|f| f.result.label == label).unwrap();
        prop_assert!(pos_double <= pos_single);
    }

    #[test]
    fn index_finds_every_inserted_product(
        names in proptest::collection::vec("[a-z]{4,10}", 1..20),
    ) {
        let mut map = MapDocument::new("p", "p", GeoReference::Unaligned { hint: None });
        for (i, name) in names.iter().enumerate() {
            map.add_node(
                Point2::new(i as f64, 0.0),
                Tags::new().with("product", name.clone()).with("name", format!("item {name}")),
            );
        }
        let index = SearchIndex::build(&map);
        for name in &names {
            let hits = index.query(name, None, f64::INFINITY, names.len());
            prop_assert!(
                hits.iter().any(|h| h.label.contains(name.as_str())),
                "product {name} not found"
            );
        }
    }

    #[test]
    fn radius_filter_monotone(
        r1 in 1.0f64..100.0,
        extra in 1.0f64..100.0,
    ) {
        let mut map = MapDocument::new("p", "p", GeoReference::Unaligned { hint: None });
        for i in 0..30 {
            map.add_node(
                Point2::new(i as f64 * 7.0, 0.0),
                Tags::new().with("product", "widget"),
            );
        }
        let index = SearchIndex::build(&map);
        let small = index.query("widget", Some(Point2::ZERO), r1, 100);
        let large = index.query("widget", Some(Point2::ZERO), r1 + extra, 100);
        prop_assert!(large.len() >= small.len());
    }
}
