//! E5 — paper §5.2: scatter/gather search with client-side rank fusion works
//! on federated maps: recall matches a centralized index, latency grows
//! gently with fan-out.
//!
//! `cargo run --release -p openflame-bench --bin e5_search`

use openflame_bench::{header, mean, row};
use openflame_core::{
    CentralizedProvider, Deployment, DeploymentConfig, SearchQuery, SpatialProvider,
};
use openflame_netsim::SimNet;
use openflame_worldgen::{World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "E5",
        "federated search: recall and latency vs number of map servers",
    );
    row(&[
        "servers".into(),
        "fed recall@1".into(),
        "fed recall@5".into(),
        "cen recall@1".into(),
        "lat ms".into(),
        "msgs/query".into(),
    ]);
    for stores in [5usize, 10, 20, 40] {
        let world = World::generate(WorldConfig {
            stores,
            products_per_store: 15,
            blocks_x: 8,
            blocks_y: 8,
            ..WorldConfig::default()
        });
        let dep = Deployment::build(world.clone(), DeploymentConfig::default());
        let omni_net = SimNet::new(2);
        let omni = CentralizedProvider::omniscient(&omni_net, &world);
        // Both architectures behind the same trait — the comparison is
        // the point of the experiment.
        let federated: &dyn SpatialProvider = &dep.client;
        let centralized: &dyn SpatialProvider = &omni;
        let mut rng = StdRng::seed_from_u64(31);
        let trials: Vec<usize> = (0..60)
            .map(|_| rng.gen_range(0..world.products.len()))
            .collect();
        let (mut fed1, mut fed5, mut cen1) = (0usize, 0usize, 0usize);
        let mut lat = Vec::new();
        let mut msgs = Vec::new();
        for &pi in &trials {
            let product = &world.products[pi];
            let near = world.venues[product.venue]
                .hint
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..120.0));
            if let Ok(outcome) = federated.search(SearchQuery {
                query: product.name.clone(),
                location: near,
                radius_m: 2_000.0,
                k: 5,
            }) {
                lat.push(outcome.stats.elapsed_us as f64 / 1000.0);
                msgs.push(outcome.stats.messages as f64);
                if outcome
                    .hits
                    .first()
                    .map(|h| h.result.label == product.name)
                    .unwrap_or(false)
                {
                    fed1 += 1;
                }
                if outcome.hits.iter().any(|h| h.result.label == product.name) {
                    fed5 += 1;
                }
            }
            if let Ok(outcome) = centralized.search(SearchQuery {
                query: product.name.clone(),
                location: near,
                radius_m: f64::INFINITY,
                k: 1,
            }) {
                if outcome
                    .hits
                    .first()
                    .map(|h| h.result.label == product.name)
                    .unwrap_or(false)
                {
                    cen1 += 1;
                }
            }
        }
        let n = trials.len();
        row(&[
            format!("{}", stores + 1),
            format!("{:.0}%", 100.0 * fed1 as f64 / n as f64),
            format!("{:.0}%", 100.0 * fed5 as f64 / n as f64),
            format!("{:.0}%", 100.0 * cen1 as f64 / n as f64),
            format!("{:.1}", mean(&lat)),
            format!("{:.0}", mean(&msgs)),
        ]);
    }
    println!(
        "\npaper claim (paper §5.2): the client asks each discovered server and ranks\n\
         the merged results. Expected shape: federated recall@1 tracks the\n\
         centralized index (duplicate product names across stores are legal\n\
         alternates); latency and message count grow with the number of\n\
         servers in the discovery radius, not with total world size."
    );
}
