//! Geocoding substrate: address ↔ location translation plus GPS map
//! matching.
//!
//! The paper defines forward geocode ("converting a text-based address
//! to a location on the map") and reverse geocode ("converts a
//! geographic location to a map node") as base services (paper §4), and calls
//! out snapping raw GPS coordinates to roads — map matching — as a
//! service built on reverse geocode (refs. 19, 21). This crate provides
//! all three against a single [`MapDocument`](openflame_mapdata::MapDocument);
//! the federated versions
//! that scatter across map servers live in `openflame-core`.
//!
//! - [`tokenize`] — shared text normalization,
//! - [`Geocoder`] — inverted-index forward geocoding over `name` and
//!   `addr:*` tags with TF-scored ranking,
//! - [`reverse_geocode`] — nearest named element and way snapping,
//! - [`mapmatch()`] — hidden-Markov-model (Viterbi) matching of GPS traces
//!   to way geometry.

pub mod forward;
pub mod mapmatch;
pub mod reverse;
pub mod text;

pub use forward::{GeocodeHit, Geocoder};
pub use mapmatch::{mapmatch, MatchedPoint};
pub use reverse::{reverse_geocode, snap_to_way, ReverseHit, SnapHit};
pub use text::tokenize;
