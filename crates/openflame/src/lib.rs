//! Umbrella crate for the OpenFLAME reproduction workspace.
//!
//! Re-exports every subsystem so examples and integration tests (and
//! downstream users who want the whole stack) can depend on one crate.
//! See the individual crates for focused APIs; the paper's contribution
//! lives in [`core`].
//!
//! The wire path (submit/completion transports, multiplexed TCP
//! pipelining, the QuicLite reliable-datagram backend with 0-RTT
//! resumption and loss recovery, concurrent server-side dispatch
//! answering in completion order, the session's scatter rounds and
//! bounded caches) is documented in [`core`]'s architecture section —
//! including a backend-selection matrix — and specified normatively in
//! `docs/wire-protocol.md` (spec §6 is the datagram binding).

pub use openflame_cells as cells;
pub use openflame_codec as codec;
pub use openflame_core as core;
pub use openflame_dns as dns;
pub use openflame_geo as geo;
pub use openflame_geocode as geocode;
pub use openflame_localize as localize;
pub use openflame_mapdata as mapdata;
pub use openflame_mapserver as mapserver;
pub use openflame_netsim as netsim;
pub use openflame_routing as routing;
pub use openflame_search as search;
pub use openflame_tiles as tiles;
pub use openflame_worldgen as worldgen;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compose() {
        // The whole stack is reachable through the umbrella.
        let world = crate::worldgen::World::generate(crate::worldgen::WorldConfig {
            stores: 1,
            ..Default::default()
        });
        let cell = crate::cells::CellId::from_latlng(world.config.center, 10).unwrap();
        assert_eq!(cell.level(), 10);
    }
}
