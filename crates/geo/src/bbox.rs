//! Axis-aligned bounding rectangles in geodetic coordinates.

use crate::{GeoError, LatLng};

/// An axis-aligned latitude/longitude rectangle.
///
/// `BBox` does not model antimeridian-crossing rectangles; the synthetic
/// worlds used throughout the workspace never straddle ±180°, and the
/// constructor rejects inverted bounds instead of silently wrapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    lat_lo: f64,
    lat_hi: f64,
    lng_lo: f64,
    lng_hi: f64,
}

impl BBox {
    /// Creates a bounding box from corner bounds.
    pub fn new(lat_lo: f64, lat_hi: f64, lng_lo: f64, lng_hi: f64) -> Result<Self, GeoError> {
        if !(lat_lo.is_finite() && lat_hi.is_finite() && lng_lo.is_finite() && lng_hi.is_finite()) {
            return Err(GeoError::InvalidCoordinate("non-finite bbox bound".into()));
        }
        if lat_lo > lat_hi || lng_lo > lng_hi {
            return Err(GeoError::InvalidCoordinate(format!(
                "inverted bbox [{lat_lo},{lat_hi}]x[{lng_lo},{lng_hi}]"
            )));
        }
        if !(-90.0..=90.0).contains(&lat_lo) || !(-90.0..=90.0).contains(&lat_hi) {
            return Err(GeoError::InvalidCoordinate(
                "bbox latitude out of range".into(),
            ));
        }
        Ok(Self {
            lat_lo,
            lat_hi,
            lng_lo,
            lng_hi,
        })
    }

    /// The tightest box containing both corner points.
    pub fn from_corners(a: LatLng, b: LatLng) -> Self {
        Self {
            lat_lo: a.lat().min(b.lat()),
            lat_hi: a.lat().max(b.lat()),
            lng_lo: a.lng().min(b.lng()),
            lng_hi: a.lng().max(b.lng()),
        }
    }

    /// The tightest box containing every point, or `None` for empty input.
    pub fn from_points<I: IntoIterator<Item = LatLng>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut b = Self::from_corners(first, first);
        for p in iter {
            b.expand_to(p);
        }
        Some(b)
    }

    /// Lowest latitude.
    pub fn lat_lo(&self) -> f64 {
        self.lat_lo
    }

    /// Highest latitude.
    pub fn lat_hi(&self) -> f64 {
        self.lat_hi
    }

    /// Lowest (westmost) longitude.
    pub fn lng_lo(&self) -> f64 {
        self.lng_lo
    }

    /// Highest (eastmost) longitude.
    pub fn lng_hi(&self) -> f64 {
        self.lng_hi
    }

    /// Center point of the box.
    pub fn center(&self) -> LatLng {
        LatLng::new_unchecked(
            (self.lat_lo + self.lat_hi) / 2.0,
            (self.lng_lo + self.lng_hi) / 2.0,
        )
    }

    /// Whether `p` lies inside the box (boundary inclusive).
    pub fn contains(&self, p: LatLng) -> bool {
        p.lat() >= self.lat_lo
            && p.lat() <= self.lat_hi
            && p.lng() >= self.lng_lo
            && p.lng() <= self.lng_hi
    }

    /// Whether `other` is entirely inside this box.
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        other.lat_lo >= self.lat_lo
            && other.lat_hi <= self.lat_hi
            && other.lng_lo >= self.lng_lo
            && other.lng_hi <= self.lng_hi
    }

    /// Whether the two boxes share any point (boundary inclusive).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.lat_lo <= other.lat_hi
            && other.lat_lo <= self.lat_hi
            && self.lng_lo <= other.lng_hi
            && other.lng_lo <= self.lng_hi
    }

    /// Grows the box in place so it contains `p`.
    pub fn expand_to(&mut self, p: LatLng) {
        self.lat_lo = self.lat_lo.min(p.lat());
        self.lat_hi = self.lat_hi.max(p.lat());
        self.lng_lo = self.lng_lo.min(p.lng());
        self.lng_hi = self.lng_hi.max(p.lng());
    }

    /// A new box padded by `margin_m` meters on every side.
    ///
    /// The longitude padding is scaled by the cosine of the center
    /// latitude so the margin is metric on both axes.
    pub fn padded(&self, margin_m: f64) -> BBox {
        let dlat = margin_m / 111_320.0;
        let cos_lat = self.center().lat_rad().cos().max(1e-6);
        let dlng = margin_m / (111_320.0 * cos_lat);
        BBox {
            lat_lo: (self.lat_lo - dlat).max(-90.0),
            lat_hi: (self.lat_hi + dlat).min(90.0),
            lng_lo: self.lng_lo - dlng,
            lng_hi: self.lng_hi + dlng,
        }
    }

    /// The union of the two boxes.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            lat_lo: self.lat_lo.min(other.lat_lo),
            lat_hi: self.lat_hi.max(other.lat_hi),
            lng_lo: self.lng_lo.min(other.lng_lo),
            lng_hi: self.lng_hi.max(other.lng_hi),
        }
    }

    /// Approximate width (east-west extent at center latitude) in meters.
    pub fn width_m(&self) -> f64 {
        let cos_lat = self.center().lat_rad().cos();
        (self.lng_hi - self.lng_lo) * 111_320.0 * cos_lat
    }

    /// Approximate height (north-south extent) in meters.
    pub fn height_m(&self) -> f64 {
        (self.lat_hi - self.lat_lo) * 111_320.0
    }

    /// The four corner points, counter-clockwise from the southwest.
    pub fn corners(&self) -> [LatLng; 4] {
        [
            LatLng::new_unchecked(self.lat_lo, self.lng_lo),
            LatLng::new_unchecked(self.lat_lo, self.lng_hi),
            LatLng::new_unchecked(self.lat_hi, self.lng_hi),
            LatLng::new_unchecked(self.lat_hi, self.lng_lo),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_box() -> BBox {
        BBox::new(10.0, 11.0, 20.0, 21.0).unwrap()
    }

    #[test]
    fn new_rejects_inverted_and_bad_bounds() {
        assert!(BBox::new(11.0, 10.0, 0.0, 1.0).is_err());
        assert!(BBox::new(0.0, 1.0, 5.0, 4.0).is_err());
        assert!(BBox::new(-91.0, 0.0, 0.0, 1.0).is_err());
        assert!(BBox::new(0.0, f64::NAN, 0.0, 1.0).is_err());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = unit_box();
        assert!(b.contains(LatLng::new(10.0, 20.0).unwrap()));
        assert!(b.contains(LatLng::new(11.0, 21.0).unwrap()));
        assert!(b.contains(LatLng::new(10.5, 20.5).unwrap()));
        assert!(!b.contains(LatLng::new(9.999, 20.5).unwrap()));
        assert!(!b.contains(LatLng::new(10.5, 21.001).unwrap()));
    }

    #[test]
    fn intersects_cases() {
        let b = unit_box();
        let overlapping = BBox::new(10.5, 12.0, 20.5, 22.0).unwrap();
        let touching = BBox::new(11.0, 12.0, 20.0, 21.0).unwrap();
        let disjoint = BBox::new(12.0, 13.0, 20.0, 21.0).unwrap();
        assert!(b.intersects(&overlapping));
        assert!(b.intersects(&touching));
        assert!(!b.intersects(&disjoint));
    }

    #[test]
    fn contains_bbox_cases() {
        let b = unit_box();
        let inner = BBox::new(10.2, 10.8, 20.2, 20.8).unwrap();
        assert!(b.contains_bbox(&inner));
        assert!(!inner.contains_bbox(&b));
        assert!(b.contains_bbox(&b));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            LatLng::new(1.0, 2.0).unwrap(),
            LatLng::new(-1.0, 5.0).unwrap(),
            LatLng::new(0.5, -3.0).unwrap(),
        ];
        let b = BBox::from_points(pts.clone()).unwrap();
        for p in pts {
            assert!(b.contains(p));
        }
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn padded_grows_metrically() {
        let b = BBox::new(40.0, 40.01, -80.0, -79.99).unwrap();
        let p = b.padded(100.0);
        assert!(p.contains_bbox(&b));
        // 100 m of latitude is about 0.0009 degrees.
        assert!((p.lat_lo() - (40.0 - 100.0 / 111_320.0)).abs() < 1e-9);
        // Longitude padding should be larger in degrees at 40°N.
        assert!((b.lng_lo() - p.lng_lo()) > 100.0 / 111_320.0);
    }

    #[test]
    fn extent_meters_reasonable() {
        // A 0.01° box at the equator is ~1.11 km on each side.
        let b = BBox::new(0.0, 0.01, 0.0, 0.01).unwrap();
        assert!((b.height_m() - 1113.2).abs() < 1.0);
        assert!((b.width_m() - 1113.2).abs() < 1.0);
    }

    #[test]
    fn union_and_center() {
        let a = BBox::new(0.0, 1.0, 0.0, 1.0).unwrap();
        let b = BBox::new(2.0, 3.0, 2.0, 3.0).unwrap();
        let u = a.union(&b);
        assert!(u.contains_bbox(&a) && u.contains_bbox(&b));
        let c = u.center();
        assert!((c.lat() - 1.5).abs() < 1e-12 && (c.lng() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn corners_are_contained() {
        let b = unit_box();
        for c in b.corners() {
            assert!(b.contains(c));
        }
    }
}
