//! Planar points and elementary vector operations.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in a planar metric coordinate frame, in meters.
///
/// Used for indoor maps expressed in a [`crate::LocalFrame`] and for all
/// rasterization and transform math.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// East / x component in meters.
    pub x: f64,
    /// North / y component in meters.
    pub y: f64,
}

impl Point2 {
    /// Origin of the frame.
    pub const ZERO: Point2 = Point2 { x: 0.0, y: 0.0 };

    /// Creates a point from components.
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(&self, other: Point2) -> f64 {
        (*self - other).norm()
    }

    /// Squared Euclidean distance to `other`, avoiding the square root.
    pub fn distance_sq(&self, other: Point2) -> f64 {
        let d = *self - other;
        d.x * d.x + d.y * d.y
    }

    /// Euclidean norm of the vector.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Dot product.
    pub fn dot(&self, other: Point2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    pub fn cross(&self, other: Point2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(&self, other: Point2, t: f64) -> Point2 {
        Point2::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Unit vector in the same direction, or `None` for (near-)zero input.
    pub fn normalized(&self) -> Option<Point2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(*self / n)
        }
    }

    /// The vector rotated by `angle_rad` counter-clockwise.
    pub fn rotated(&self, angle_rad: f64) -> Point2 {
        let (s, c) = angle_rad.sin_cos();
        Point2::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Perpendicular vector (rotated 90° counter-clockwise).
    pub fn perp(&self) -> Point2 {
        Point2::new(-self.y, self.x)
    }
}

impl Add for Point2 {
    type Output = Point2;
    fn add(self, rhs: Point2) -> Point2 {
        Point2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point2 {
    type Output = Point2;
    fn sub(self, rhs: Point2) -> Point2 {
        Point2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point2 {
    type Output = Point2;
    fn mul(self, rhs: f64) -> Point2 {
        Point2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point2 {
    type Output = Point2;
    fn div(self, rhs: f64) -> Point2 {
        Point2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point2 {
    type Output = Point2;
    fn neg(self) -> Point2 {
        Point2::new(-self.x, -self.y)
    }
}

impl std::fmt::Display for Point2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_ops() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(3.0, -1.0);
        assert_eq!(a + b, Point2::new(4.0, 1.0));
        assert_eq!(a - b, Point2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point2::new(1.5, -0.5));
        assert_eq!(-a, Point2::new(-1.0, -2.0));
    }

    #[test]
    fn norm_and_distance() {
        let a = Point2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.distance(Point2::ZERO) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(Point2::ZERO) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point2::new(1.0, 0.0);
        let b = Point2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn normalized_handles_zero() {
        assert!(Point2::ZERO.normalized().is_none());
        let n = Point2::new(10.0, 0.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_quarter_turn() {
        let a = Point2::new(1.0, 0.0);
        let r = a.rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        assert_eq!(a.perp(), Point2::new(0.0, 1.0));
    }

    #[test]
    fn lerp_midpoint() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.5), Point2::new(1.0, 2.0));
    }
}
