//! Localization substrate.
//!
//! Localization is "the service that informs a device of its location
//! and orientation with respect to a map" (paper §4). In the federated design
//! (paper §5.2) the *client* collects location cues — GNSS fixes, beacon
//! signal strengths, fiducial tag scans — and sends them to discovered
//! map servers; each server localizes the device *within its own map*
//! and the client selects the most plausible result by comparing
//! against its inertial dead reckoning.
//!
//! This crate provides every piece of that pipeline:
//!
//! - [`LocationCue`] — the cue vocabulary exchanged with servers,
//! - [`gnss`] — a noise-modelled outdoor-only GNSS fix source,
//! - [`radio`] — log-distance path-loss beacon simulation plus
//!   fingerprint-database (k-NN) indoor localization,
//! - [`fiducial`] — exact tag-based localization,
//! - [`deadreckon`] — IMU-style odometry with drift,
//! - [`fusion`] — a particle filter fusing odometry with server
//!   estimates, and the plausibility scoring used to pick among
//!   candidate results from overlapping servers.

pub mod cues;
pub mod deadreckon;
pub mod fiducial;
pub mod fusion;
pub mod gnss;
pub mod radio;

pub use cues::{Estimate, LocationCue};
pub use deadreckon::DeadReckoner;
pub use fiducial::TagRegistry;
pub use fusion::{plausibility, ParticleFilter};
pub use gnss::GnssModel;
pub use radio::{Beacon, RadioMap};
