//! Traffic counters for the simulated network.

/// Global traffic statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered (both directions of an RPC count separately).
    pub messages: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
    /// Messages dropped by failure injection.
    pub drops: u64,
}

/// Per-endpoint traffic statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Messages received.
    pub rx_msgs: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Messages sent.
    pub tx_msgs: u64,
    /// Bytes sent.
    pub tx_bytes: u64,
}

impl EndpointStats {
    /// Total messages in either direction.
    pub fn total_msgs(&self) -> u64 {
        self.rx_msgs + self.tx_msgs
    }

    /// Total bytes in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.rx_bytes + self.tx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_directions() {
        let s = EndpointStats {
            rx_msgs: 2,
            rx_bytes: 10,
            tx_msgs: 3,
            tx_bytes: 20,
        };
        assert_eq!(s.total_msgs(), 5);
        assert_eq!(s.total_bytes(), 30);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(
            NetStats::default(),
            NetStats {
                messages: 0,
                bytes: 0,
                drops: 0
            }
        );
    }
}
