//! The serving fleet: replicated + sharded per-cell map serving.
//!
//! A venue that outgrows one map server advertises a **fleet** instead
//! of a single `MAPSRV` record: one `FLEETSRV` record carrying the
//! venue's replica set and its **shard map** — a spatial split of the
//! venue's documents at a sub-cell level, skew-aware so hot sub-areas
//! (a busy aisle, a crowded wing) get their own shard. The client then
//! does three things a single-server federation never had to:
//!
//! - **Shard-aware scatter**: a spatial query consults only the shards
//!   whose advertised extent intersects the query footprint — wire cost
//!   scales with shards *consulted*, not fleet size.
//! - **Replica selection**: within a shard, the client picks one
//!   replica by power-of-two-choices over the per-endpoint latency
//!   summaries the transport already collects
//!   ([`Transport::endpoint_latency`]).
//! - **Failover**: when a consulted replica fails at the wire, the
//!   client retries the branch on a sibling replica — for *idempotent*
//!   requests only (`docs/wire-protocol.md` spec §7) — and marks the dead
//!   endpoint so it is not re-consulted until its dead-list entry ages
//!   out. Only a fully-down shard surfaces
//!   [`ClientError::PartialFailure`](crate::ClientError::PartialFailure),
//!   with the per-replica source errors preserved.
//!
//! The types here are the *client-side view* of an advertisement
//! ([`DiscoveryView`], [`FleetView`], [`FleetShardView`]) plus the
//! selector ([`FleetSelector`]) and the deployment-side shard planner
//! ([`plan_venue_shards`]). Everything is backend-agnostic: selection
//! is deterministic given identical latency books, so the fleet wire
//! discipline holds identically on the simulator, TCP and QuicLite
//! (the fleet parity test pins this).

use crate::discovery::DiscoveredServer;
use openflame_cells::{CellId, Region};
use openflame_diag::{ranks, OrderedMutex};
use openflame_geo::LatLng;
use openflame_netsim::{EndpointId, Transport};
use openflame_worldgen::World;
use std::collections::HashMap;

/// How long a replica that failed at the wire stays off the candidate
/// list before the selector will consider it again (transport clock).
/// Deliberately much shorter than the 300 s discovery TTL: a crashed
/// replica that restarts should resume taking traffic without waiting
/// for the naming layer to age out.
pub const DEAD_TTL_US: u64 = 30 * 1_000_000;

/// One content shard of a fleet, as the client sees it: the sub-cell
/// extent it owns and the replicas serving it (advertisement order is
/// stable — it is part of the DNS record — so every client derives the
/// same candidate order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetShardView {
    /// Fine cells whose content this shard owns.
    pub extents: Vec<CellId>,
    /// Replicas serving this shard (each carries the group's services).
    pub replicas: Vec<DiscoveredServer>,
}

impl FleetShardView {
    /// Whether this shard's extent may intersect a query cap. The test
    /// is conservative (cell-level `may_intersect`): a shard is never
    /// wrongly skipped, it can only be consulted unnecessarily.
    pub fn intersects(&self, center: LatLng, radius_m: f64) -> bool {
        let cap = Region::Cap { center, radius_m };
        self.extents.iter().any(|c| cap.may_intersect_cell(*c))
    }
}

/// A discovered fleet: one group (typically one venue) split into
/// shards, each replicated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetView {
    /// Stable group id (e.g. `"venue-3"`).
    pub group_id: String,
    /// Advertised services, shared by every replica of the group.
    pub services: Vec<String>,
    /// The shard map, in advertisement order.
    pub shards: Vec<FleetShardView>,
}

/// Everything one discovery round learned about a location: plain
/// single-server providers plus fleet groups. Cached shard-stably in
/// the session's discovery cache — repeated queries against the same
/// cell reuse the same shard map, so replica choice (and therefore the
/// hello cache) stays warm across requests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiscoveryView {
    /// Plain (non-fleet) servers, e.g. the outdoor world-map provider.
    pub servers: Vec<DiscoveredServer>,
    /// Fleet groups advertising at this location.
    pub fleets: Vec<FleetView>,
}

impl DiscoveryView {
    /// A view holding only plain servers (the pre-fleet shape).
    pub fn from_servers(servers: Vec<DiscoveredServer>) -> Self {
        Self {
            servers,
            fleets: Vec::new(),
        }
    }

    /// Whether the round discovered nothing at all.
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty() && self.fleets.iter().all(|f| f.shards.is_empty())
    }
}

/// Client-side replica selection state: a dead-list of endpoints that
/// failed at the wire, consulted by the power-of-two-choices pick.
/// Latency knowledge itself lives in the transport
/// ([`Transport::endpoint_latency`]); this struct only remembers who
/// recently failed.
pub struct FleetSelector {
    /// endpoint → transport-clock instant at which it may be retried.
    dead: OrderedMutex<HashMap<EndpointId, u64>>,
}

impl Default for FleetSelector {
    fn default() -> Self {
        Self {
            dead: OrderedMutex::new(ranks::FLEET_DEAD, HashMap::new()),
        }
    }
}

impl FleetSelector {
    /// A selector with an empty dead-list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a wire failure: `endpoint` is skipped by selection until
    /// [`DEAD_TTL_US`] of transport time passes.
    pub fn mark_dead(&self, transport: &dyn Transport, endpoint: EndpointId) {
        self.dead
            .lock()
            .insert(endpoint, transport.now_us().saturating_add(DEAD_TTL_US));
    }

    /// Whether `endpoint` is currently on the dead-list (expired
    /// entries are pruned on probe).
    pub fn is_dead(&self, transport: &dyn Transport, endpoint: EndpointId) -> bool {
        let now = transport.now_us();
        let mut dead = self.dead.lock();
        match dead.get(&endpoint) {
            Some(&until) if until > now => true,
            Some(_) => {
                dead.remove(&endpoint);
                false
            }
            None => false,
        }
    }

    /// Number of endpoints currently dead-listed.
    pub fn dead_len(&self, transport: &dyn Transport) -> usize {
        let now = transport.now_us();
        let mut dead = self.dead.lock();
        dead.retain(|_, &mut until| until > now);
        dead.len()
    }

    /// Picks the replica to consult for `shard`: power-of-two-choices
    /// over the transport's per-endpoint latency EWMA.
    ///
    /// Two candidate indices are derived from a deterministic hash of
    /// the replica set, then the one with the lower latency score wins;
    /// a replica with no samples scores worst (so an incumbent with
    /// measured latency is sticky — keeping its hello cache warm — and
    /// a fresh book falls back to the lower candidate index, making the
    /// pick identical across backends and runs). Dead-listed replicas
    /// are excluded. Returns `None` only when every replica is
    /// dead-listed — callers typically fall back to `replicas[0]` then,
    /// letting the wire surface the truth.
    pub fn choose<'a>(
        &self,
        transport: &dyn Transport,
        shard: &'a FleetShardView,
    ) -> Option<&'a DiscoveredServer> {
        let alive: Vec<&DiscoveredServer> = shard
            .replicas
            .iter()
            .filter(|r| !self.is_dead(transport, r.endpoint))
            .collect();
        match alive.len() {
            0 => None,
            1 => Some(alive[0]),
            n => {
                let h = fingerprint(shard);
                let c1 = (h % n as u64) as usize;
                // Second candidate from the high bits, shifted past the
                // first so the two are always distinct.
                let mut c2 = ((h >> 32) % (n as u64 - 1)) as usize;
                if c2 >= c1 {
                    c2 += 1;
                }
                let score = |r: &DiscoveredServer| {
                    transport
                        .endpoint_latency(r.endpoint)
                        .filter(|l| l.count > 0)
                        .map(|l| l.ewma_us)
                        .unwrap_or(u64::MAX)
                };
                // Strict `<` on the swapped compare: ties (both
                // unsampled) go to the lower index, deterministically.
                let (lo, hi) = if c1 < c2 { (c1, c2) } else { (c2, c1) };
                if score(alive[hi]) < score(alive[lo]) {
                    Some(alive[hi])
                } else {
                    Some(alive[lo])
                }
            }
        }
    }

    /// The failover sibling: the first replica (advertisement order)
    /// that is neither dead-listed nor in `tried`. Advertisement order
    /// keeps the retry deterministic across backends.
    pub fn sibling<'a>(
        &self,
        transport: &dyn Transport,
        shard: &'a FleetShardView,
        tried: &[EndpointId],
    ) -> Option<&'a DiscoveredServer> {
        shard
            .replicas
            .iter()
            .find(|r| !tried.contains(&r.endpoint) && !self.is_dead(transport, r.endpoint))
    }
}

/// FNV-1a over the shard's replica endpoints: a stable fingerprint that
/// spreads different shards across different candidate pairs without
/// any per-process randomness.
fn fingerprint(shard: &FleetShardView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in &shard.replicas {
        for byte in r.endpoint.0.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

// --------------------------------------------------------------------
// Deployment-side shard planning.
// --------------------------------------------------------------------

/// The spatial plan for one content shard of a venue: which fine cells
/// it owns and which content nodes land in it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Deduplicated fine cells owned by this shard (the advertised
    /// extent).
    pub extents: Vec<CellId>,
    /// Venue-map node ids whose searchable content this shard serves.
    pub members: Vec<u64>,
}

/// Splits venue `venue_idx`'s searchable content into `shards`
/// spatial shards, **skew-aware**: content nodes are geo-positioned
/// through the world's ground-truth transform, mapped to fine cells
/// (a level chosen from the venue radius), ordered along the
/// space-filling curve the cell ids encode, and cut into equal-*count*
/// contiguous runs. Equal counts — not equal areas — is what makes the
/// split skew-aware: a hot sub-area holding half the documents gets
/// half the shards, an empty corner costs none.
///
/// `is_content` decides which nodes count as shardable content
/// (typically: nodes carrying searchable tags); structural nodes,
/// beacons and ways are replicated into every shard by the deployment.
pub fn plan_venue_shards(
    world: &World,
    venue_idx: usize,
    shards: usize,
    is_content: impl Fn(u64) -> bool,
) -> Vec<ShardPlan> {
    let venue = &world.venues[venue_idx];
    let fine_level = fine_level_for(venue.radius_m);
    // (curve position, node id) for every content node.
    let mut ordered: Vec<(u64, u64, CellId)> = venue
        .map
        .nodes()
        .filter(|n| is_content(n.id.0))
        .filter_map(|n| {
            let geo = world.venue_point_to_geo(venue_idx, n.pos);
            let cell = CellId::from_latlng(geo, fine_level).ok()?;
            Some((cell.raw(), n.id.0, cell))
        })
        .collect();
    // Cell ids order points along the face's space-filling curve, so a
    // contiguous run of this sort is spatially contiguous; node id
    // breaks ties deterministically.
    ordered.sort_unstable();
    let k = shards.max(1).min(ordered.len().max(1));
    let mut plans = Vec::with_capacity(k);
    let per = ordered.len().div_ceil(k.max(1)).max(1);
    for chunk in ordered.chunks(per) {
        let mut extents: Vec<CellId> = chunk.iter().map(|(_, _, c)| *c).collect();
        extents.dedup();
        plans.push(ShardPlan {
            extents,
            members: chunk.iter().map(|(_, id, _)| *id).collect(),
        });
    }
    // Degenerate worlds (fewer content nodes than shards): pad with
    // empty shards so the advertised shard count matches the config.
    while plans.len() < shards.max(1) {
        plans.push(ShardPlan {
            extents: Vec::new(),
            members: Vec::new(),
        });
    }
    plans
}

/// The fine cell level used for shard extents: the coarsest level whose
/// cells are comfortably smaller than the venue, clamped to stay
/// meaningful for tiny venues.
fn fine_level_for(radius_m: f64) -> u8 {
    for level in 14..=24u8 {
        if CellId::approx_side_length_m(level) <= (radius_m / 3.0).max(1.0) {
            return level;
        }
    }
    24
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_netsim::{SimNet, SimTransport};
    use openflame_worldgen::WorldConfig;

    fn server(id: u64) -> DiscoveredServer {
        DiscoveredServer {
            server_id: format!("r{id}"),
            endpoint: EndpointId(id),
            services: vec!["search".into()],
        }
    }

    fn shard(ids: &[u64]) -> FleetShardView {
        FleetShardView {
            extents: Vec::new(),
            replicas: ids.iter().map(|&i| server(i)).collect(),
        }
    }

    #[test]
    fn choose_is_deterministic_on_a_fresh_latency_book() {
        let net = SimNet::new(1);
        let transport = SimTransport::shared(&net);
        let selector = FleetSelector::new();
        let s = shard(&[10, 11, 12]);
        let first = selector.choose(transport.as_ref(), &s).unwrap().endpoint;
        for _ in 0..5 {
            assert_eq!(
                selector.choose(transport.as_ref(), &s).unwrap().endpoint,
                first,
                "fresh-book pick must be stable"
            );
        }
    }

    #[test]
    fn dead_list_excludes_and_expires() {
        let net = SimNet::new(1);
        let transport = SimTransport::shared(&net);
        let selector = FleetSelector::new();
        let s = shard(&[20, 21]);
        let victim = selector.choose(transport.as_ref(), &s).unwrap().endpoint;
        selector.mark_dead(transport.as_ref(), victim);
        let other = selector.choose(transport.as_ref(), &s).unwrap().endpoint;
        assert_ne!(other, victim, "dead replica must not be chosen");
        assert_eq!(selector.dead_len(transport.as_ref()), 1);
        selector.mark_dead(transport.as_ref(), other);
        assert!(
            selector.choose(transport.as_ref(), &s).is_none(),
            "all dead → no candidate"
        );
        // The dead-list ages out on the transport clock.
        transport.advance_us(DEAD_TTL_US + 1);
        assert!(!selector.is_dead(transport.as_ref(), victim));
        assert!(selector.choose(transport.as_ref(), &s).is_some());
    }

    #[test]
    fn sibling_skips_tried_and_dead() {
        let net = SimNet::new(1);
        let transport = SimTransport::shared(&net);
        let selector = FleetSelector::new();
        let s = shard(&[30, 31, 32]);
        selector.mark_dead(transport.as_ref(), EndpointId(31));
        let sib = selector
            .sibling(transport.as_ref(), &s, &[EndpointId(30)])
            .unwrap();
        assert_eq!(sib.endpoint, EndpointId(32));
        assert!(selector
            .sibling(transport.as_ref(), &s, &[EndpointId(30), EndpointId(32)])
            .is_none());
    }

    #[test]
    fn shard_plan_is_equal_count_and_spatially_disjoint() {
        let world = World::generate(WorldConfig {
            stores: 1,
            ..WorldConfig::default()
        });
        let content: Vec<u64> = world.venues[0]
            .map
            .nodes()
            .filter(|n| n.tags.get("product").is_some())
            .map(|n| n.id.0)
            .collect();
        assert!(content.len() >= 8, "worldgen stocks shelves");
        let plans = plan_venue_shards(&world, 0, 4, |id| content.contains(&id));
        assert_eq!(plans.len(), 4);
        let total: usize = plans.iter().map(|p| p.members.len()).sum();
        assert_eq!(total, content.len(), "every content node lands somewhere");
        // Equal-count cuts: no shard holds more than ceil(n/k) nodes.
        let cap = content.len().div_ceil(4);
        for p in &plans {
            assert!(p.members.len() <= cap, "skew-aware cut exceeded: {p:?}");
        }
        // Membership is a partition (no node in two shards).
        let mut seen = std::collections::HashSet::new();
        for p in &plans {
            for m in &p.members {
                assert!(seen.insert(*m), "node {m} assigned twice");
            }
        }
    }

    #[test]
    fn narrow_cap_intersects_fewer_shards_than_fleet_size() {
        let world = World::generate(WorldConfig {
            stores: 1,
            ..WorldConfig::default()
        });
        let plans = plan_venue_shards(&world, 0, 4, |_| true);
        let views: Vec<FleetShardView> = plans
            .iter()
            .map(|p| FleetShardView {
                extents: p.extents.clone(),
                replicas: Vec::new(),
            })
            .collect();
        // A cap tight around one shard's first cell must miss at least
        // one other shard — the consulted-shards < K invariant.
        let center = views[0].extents[0].center();
        let consulted = views.iter().filter(|v| v.intersects(center, 3.0)).count();
        assert!(
            consulted < views.len(),
            "narrow query consulted every shard ({consulted}/{})",
            views.len()
        );
        assert!(consulted >= 1);
        // A city-sized cap consults everything.
        let wide = views
            .iter()
            .filter(|v| v.intersects(center, 10_000.0))
            .count();
        assert_eq!(wide, views.len());
    }
}
