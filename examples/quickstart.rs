//! Quickstart: generate a world, stand up the federation, and use every
//! location-based service once.
//!
//! Run with: `cargo run --release --example quickstart`

use openflame_core::{Deployment, DeploymentConfig};
use openflame_localize::LocationCue;
use openflame_worldgen::{World, WorldConfig};

fn main() {
    // 1. A synthetic city: street grid, POIs, and eight grocery stores,
    //    each with a private indoor map in its own coordinate frame.
    let world = World::generate(WorldConfig::default());
    println!(
        "world: {} outdoor nodes, {} venues, {} products",
        world.outdoor.node_count(),
        world.venues.len(),
        world.products.len()
    );

    // 2. The OpenFLAME deployment: DNS hierarchy, resolver, one map
    //    server per venue plus the outdoor world-map provider, all
    //    registered in the spatial namespace.
    let dep = Deployment::build(world, DeploymentConfig::default());
    println!(
        "deployment: {} venue servers, {} DNS records in the cell zone",
        dep.venue_servers.len(),
        dep.cell_dns.record_count()
    );

    // 3. Discovery: coarse location → map servers (a DNS lookup, §5.1).
    let here = dep.world.venues[0].hint;
    let servers = dep.client.discover(here).unwrap();
    println!("\ndiscovered at {here}:");
    for s in &servers {
        println!("  {} ({} services)", s.server_id, s.services.len());
    }

    // 4. Federated search (§5.2): scatter, gather, fuse.
    let product = dep.world.products[0].clone();
    let hits = dep.client.federated_search(&product.name, here, 3).unwrap();
    println!("\nsearch {:?}:", product.name);
    for h in &hits {
        println!(
            "  [{}] {} (score {:.3})",
            h.server_id, h.result.label, h.result.score
        );
    }

    // 5. Federated routing (§5.2): outdoor leg + indoor leg stitched at
    //    the store entrance.
    let start = here.destination(225.0, 100.0);
    let route = dep.client.federated_route(start, &hits[0]).unwrap();
    println!(
        "\nroute: {:.0} m across {} legs",
        route.total_length_m,
        route.legs.len()
    );
    for leg in &route.legs {
        println!(
            "  [{}] {:.0} m, {:.0} s ({} nodes)",
            leg.server_id,
            leg.route.length_m,
            leg.route.cost,
            leg.route.nodes.len()
        );
    }

    // 6. Federated localization (§5.2): the venue's beacons answer
    //    indoors where GPS cannot.
    let cue = LocationCue::Gnss {
        fix: start,
        accuracy_m: 4.0,
    };
    let estimates = dep.client.federated_localize(start, &[cue]).unwrap();
    let (sid, best) = &estimates[0];
    println!(
        "\noutdoor localization: {} via {} (±{:.1} m)",
        sid, best.technology, best.error_m
    );

    // 7. Tiles: composed from every provider that can draw this area.
    let tile = dep
        .client
        .federated_tile(dep.world.config.center, 16)
        .unwrap();
    println!(
        "tile at city center: {:.1}% painted",
        tile.coverage() * 100.0
    );

    println!(
        "\nsimulated time elapsed: {:.1} ms",
        dep.net.now_us() as f64 / 1000.0
    );
    println!("messages exchanged: {}", dep.net.stats().messages);
}
