//! Resource records and the on-wire DNS message format.

use crate::name::DomainName;
use crate::DnsError;
use openflame_codec::{CodecError, Reader, Wire, Writer};

/// Record types supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// Address record: resolves a host name to a network endpoint.
    A,
    /// Delegation: names the authoritative server of a child zone.
    Ns,
    /// Free-form text.
    Txt,
    /// Map-server advertisement: the OpenFLAME-specific record carrying
    /// a map server's endpoint and service catalogue (paper §5.1).
    MapSrv,
    /// Fleet advertisement: a serving group's replica set and content
    /// shard map for one cell (see docs/wire-protocol.md spec §9). Where a
    /// `MapSrv` record names one server, a `FleetSrv` record names the
    /// whole replicated + sharded fleet serving the same content.
    FleetSrv,
}

impl RecordType {
    fn tag(&self) -> u8 {
        match self {
            RecordType::A => 0,
            RecordType::Ns => 1,
            RecordType::Txt => 2,
            RecordType::MapSrv => 3,
            RecordType::FleetSrv => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(RecordType::A),
            1 => Ok(RecordType::Ns),
            2 => Ok(RecordType::Txt),
            3 => Ok(RecordType::MapSrv),
            4 => Ok(RecordType::FleetSrv),
            t => Err(CodecError::InvalidTag {
                context: "RecordType",
                tag: t as u64,
            }),
        }
    }
}

/// One replica server inside a fleet shard: interchangeable with its
/// siblings for every idempotent request (same content, same services).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReplica {
    /// Network endpoint of this replica.
    pub endpoint: u64,
    /// Stable identifier (e.g. `"grocer-1/s0r1"`), used for hello
    /// caching and failure reporting.
    pub server_id: String,
}

/// One content shard of a fleet: a spatial slice of the cell's
/// documents plus the replica set that serves it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetShard {
    /// Raw cell ids (sub-cells of the advertised cell) covering this
    /// shard's content. Skew-aware splits give hot sub-areas their own
    /// shard, so extents are narrower where content is dense.
    pub extents: Vec<u64>,
    /// Replicas serving this shard, all interchangeable.
    pub replicas: Vec<FleetReplica>,
}

/// Payload of a resource record.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordData {
    /// Network endpoint id (the simulation's stand-in for an IP address).
    A(u64),
    /// Authoritative server host name for a delegated child zone.
    Ns(DomainName),
    /// Free-form text.
    Txt(String),
    /// A map-server advertisement.
    MapSrv {
        /// Network endpoint of the map server.
        endpoint: u64,
        /// Stable identifier of the map server (e.g. `"grocer-shadyside"`).
        server_id: String,
        /// Advertised service names (e.g. `"search"`, `"routing"`,
        /// `"localize:beacon"`).
        services: Vec<String>,
    },
    /// A fleet advertisement: one serving group's replica set and
    /// content shard map for the owning cell.
    FleetSrv {
        /// Stable identifier of the serving group (e.g. `"grocer-1"`).
        group_id: String,
        /// Advertised service names, shared by every replica.
        services: Vec<String>,
        /// The content shards; shard order is part of the advertisement
        /// and stable across queries (shard-stable caching keys off it).
        shards: Vec<FleetShard>,
    },
}

impl RecordData {
    /// The record type of this payload.
    pub fn rtype(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Txt(_) => RecordType::Txt,
            RecordData::MapSrv { .. } => RecordType::MapSrv,
            RecordData::FleetSrv { .. } => RecordType::FleetSrv,
        }
    }
}

/// A resource record: name, TTL and payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Owner name.
    pub name: DomainName,
    /// Time to live, seconds.
    pub ttl_s: u32,
    /// Payload.
    pub data: RecordData,
}

impl Record {
    /// Creates a record.
    pub fn new(name: DomainName, ttl_s: u32, data: RecordData) -> Self {
        Self { name, ttl_s, data }
    }
}

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// Success (possibly with an empty answer section).
    NoError,
    /// The queried name does not exist in the zone.
    NxDomain,
    /// Server-side failure.
    ServFail,
}

impl Rcode {
    fn tag(&self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::NxDomain => 1,
            Rcode::ServFail => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(Rcode::NoError),
            1 => Ok(Rcode::NxDomain),
            2 => Ok(Rcode::ServFail),
            t => Err(CodecError::InvalidTag {
                context: "Rcode",
                tag: t as u64,
            }),
        }
    }
}

/// A DNS query message.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMsg {
    /// Queried name.
    pub name: DomainName,
    /// Queried record type.
    pub rtype: RecordType,
}

/// A DNS response message.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseMsg {
    /// Outcome code.
    pub rcode: Rcode,
    /// Matching records.
    pub answers: Vec<Record>,
    /// Referral records (NS) when the server is not authoritative for
    /// the full name.
    pub authority: Vec<Record>,
    /// Glue records resolving names mentioned in `authority`.
    pub additional: Vec<Record>,
}

impl ResponseMsg {
    /// A response carrying only an rcode.
    pub fn empty(rcode: Rcode) -> Self {
        Self {
            rcode,
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }
}

impl Wire for DomainName {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.label_count() as u64);
        for l in self.labels() {
            w.put_str(l);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.read_length()?;
        let mut labels = Vec::with_capacity(n.min(16));
        for _ in 0..n {
            labels.push(r.read_string()?);
        }
        DomainName::from_labels(labels).map_err(|_| CodecError::InvalidTag {
            context: "DomainName",
            tag: 0,
        })
    }
}

impl Wire for RecordData {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.rtype().tag());
        match self {
            RecordData::A(ep) => w.put_varint(*ep),
            RecordData::Ns(host) => host.encode(w),
            RecordData::Txt(s) => w.put_str(s),
            RecordData::MapSrv {
                endpoint,
                server_id,
                services,
            } => {
                w.put_varint(*endpoint);
                w.put_str(server_id);
                services.encode(w);
            }
            RecordData::FleetSrv {
                group_id,
                services,
                shards,
            } => {
                w.put_str(group_id);
                services.encode(w);
                shards.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match RecordType::from_tag(r.read_u8()?)? {
            RecordType::A => Ok(RecordData::A(r.read_varint()?)),
            RecordType::Ns => Ok(RecordData::Ns(DomainName::decode(r)?)),
            RecordType::Txt => Ok(RecordData::Txt(r.read_string()?)),
            RecordType::MapSrv => Ok(RecordData::MapSrv {
                endpoint: r.read_varint()?,
                server_id: r.read_string()?,
                services: Vec::decode(r)?,
            }),
            RecordType::FleetSrv => Ok(RecordData::FleetSrv {
                group_id: r.read_string()?,
                services: Vec::decode(r)?,
                shards: Vec::decode(r)?,
            }),
        }
    }
}

impl Wire for FleetReplica {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.endpoint);
        w.put_str(&self.server_id);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(FleetReplica {
            endpoint: r.read_varint()?,
            server_id: r.read_string()?,
        })
    }
}

impl Wire for FleetShard {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.extents.len() as u64);
        for e in &self.extents {
            w.put_varint(*e);
        }
        self.replicas.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.read_length()?;
        let mut extents = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            extents.push(r.read_varint()?);
        }
        Ok(FleetShard {
            extents,
            replicas: Vec::decode(r)?,
        })
    }
}

impl Wire for Record {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.put_varint(self.ttl_s as u64);
        self.data.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Record {
            name: DomainName::decode(r)?,
            ttl_s: r.read_varint()? as u32,
            data: RecordData::decode(r)?,
        })
    }
}

impl Wire for QueryMsg {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.put_u8(self.rtype.tag());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(QueryMsg {
            name: DomainName::decode(r)?,
            rtype: RecordType::from_tag(r.read_u8()?)?,
        })
    }
}

impl Wire for ResponseMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.rcode.tag());
        self.answers.encode(w);
        self.authority.encode(w);
        self.additional.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ResponseMsg {
            rcode: Rcode::from_tag(r.read_u8()?)?,
            answers: Vec::decode(r)?,
            authority: Vec::decode(r)?,
            additional: Vec::decode(r)?,
        })
    }
}

/// Converts an rcode into a resolver-level error for a queried name.
pub fn rcode_to_error(rcode: Rcode, name: &DomainName) -> Option<DnsError> {
    match rcode {
        Rcode::NoError => None,
        Rcode::NxDomain => Some(DnsError::NxDomain(name.to_string())),
        Rcode::ServFail => Some(DnsError::ServFail(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_codec::{from_bytes, to_bytes};

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn record_data_round_trips() {
        let cases = vec![
            RecordData::A(42),
            RecordData::Ns(name("ns1.flame.")),
            RecordData::Txt("hello world".into()),
            RecordData::MapSrv {
                endpoint: 7,
                server_id: "grocer-1".into(),
                services: vec!["search".into(), "routing".into()],
            },
            RecordData::FleetSrv {
                group_id: "grocer-1".into(),
                services: vec!["search".into()],
                shards: vec![
                    FleetShard {
                        extents: vec![0x89c2_5a31, 0x89c2_5a33],
                        replicas: vec![
                            FleetReplica {
                                endpoint: 11,
                                server_id: "grocer-1/s0r0".into(),
                            },
                            FleetReplica {
                                endpoint: 12,
                                server_id: "grocer-1/s0r1".into(),
                            },
                        ],
                    },
                    FleetShard {
                        extents: vec![],
                        replicas: vec![],
                    },
                ],
            },
        ];
        for d in cases {
            assert_eq!(from_bytes::<RecordData>(&to_bytes(&d)).unwrap(), d);
        }
    }

    #[test]
    fn message_round_trips() {
        let q = QueryMsg {
            name: name("2.f1.cell.flame."),
            rtype: RecordType::MapSrv,
        };
        assert_eq!(from_bytes::<QueryMsg>(&to_bytes(&q)).unwrap(), q);
        let resp = ResponseMsg {
            rcode: Rcode::NoError,
            answers: vec![Record::new(q.name.clone(), 300, RecordData::A(9))],
            authority: vec![Record::new(
                name("f1.cell.flame."),
                600,
                RecordData::Ns(name("ns.f1.cell.flame.")),
            )],
            additional: vec![Record::new(
                name("ns.f1.cell.flame."),
                600,
                RecordData::A(3),
            )],
        };
        assert_eq!(from_bytes::<ResponseMsg>(&to_bytes(&resp)).unwrap(), resp);
    }

    #[test]
    fn rtype_of_data() {
        assert_eq!(RecordData::A(1).rtype(), RecordType::A);
        assert_eq!(RecordData::Txt(String::new()).rtype(), RecordType::Txt);
    }

    #[test]
    fn rcode_error_mapping() {
        let n = name("x.flame.");
        assert!(rcode_to_error(Rcode::NoError, &n).is_none());
        assert!(matches!(
            rcode_to_error(Rcode::NxDomain, &n),
            Some(DnsError::NxDomain(_))
        ));
        assert!(matches!(
            rcode_to_error(Rcode::ServFail, &n),
            Some(DnsError::ServFail(_))
        ));
    }

    #[test]
    fn corrupt_messages_do_not_panic() {
        let q = QueryMsg {
            name: name("a.b."),
            rtype: RecordType::A,
        };
        let mut bytes = to_bytes(&q).to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x5A;
            let _ = from_bytes::<QueryMsg>(&bytes);
            bytes[i] ^= 0x5A;
        }
    }
}
