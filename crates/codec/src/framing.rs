//! Length-prefixed framing for wire envelopes on stream transports.
//!
//! The simulated network delivers each envelope as one discrete
//! message, but a byte-stream transport (TCP today, QUIC later) needs
//! explicit message boundaries — and, since one connection multiplexes
//! many in-flight requests, a way to match responses to requests that
//! may complete out of order. Every frame is (version 2):
//!
//! ```text
//! +-------------+----------------+----------------+---------------------+---------------+
//! | version: u8 | length: u32 LE | sender: u64 LE | correlation: u64 LE | payload bytes |
//! +-------------+----------------+----------------+---------------------+---------------+
//! ```
//!
//! `version` is [`FRAME_VERSION`]; readers reject anything else, so a
//! desynchronized or hostile stream fails fast instead of being parsed
//! as garbage lengths. `length` counts only the payload. `sender`
//! carries the endpoint id of the writing side (requests: the client
//! endpoint, so servers can attribute traffic; responses: the server
//! endpoint). `correlation` is chosen by the requester and echoed
//! verbatim in the response, which is what lets one connection carry
//! many pipelined requests with out-of-order completion. The format is
//! symmetric so one codec serves both directions.
//!
//! Lengths above [`crate::MAX_LENGTH`] are rejected on both ends,
//! preventing a corrupt or hostile length prefix from triggering a
//! giant allocation. The full layout, correlation semantics and
//! pipelining rules are specified in `docs/wire-protocol.md`.

use std::io::{self, Read, Write};

/// The frame format version this codec speaks (see module docs for the
/// v2 layout; v1 had no version byte and no correlation id).
pub const FRAME_VERSION: u8 = 2;

/// Bytes of framing overhead per message
/// (`u8` version + `u32` length + `u64` sender + `u64` correlation).
pub const FRAME_HEADER_LEN: usize = 21;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Endpoint id of the writing side.
    pub sender: u64,
    /// Request/response matching id, echoed verbatim by responders.
    pub correlation: u64,
    /// The envelope bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame and flushes the stream.
pub fn write_frame<W: Write>(
    w: &mut W,
    sender: u64,
    correlation: u64,
    payload: &[u8],
) -> io::Result<()> {
    if payload.len() as u64 > crate::MAX_LENGTH {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds limit", payload.len()),
        ));
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0] = FRAME_VERSION;
    header[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[5..13].copy_from_slice(&sender.to_le_bytes());
    header[13..21].copy_from_slice(&correlation.to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame.
///
/// Errors with [`io::ErrorKind::InvalidData`] when the version byte is
/// not [`FRAME_VERSION`] or the length prefix exceeds
/// [`crate::MAX_LENGTH`]; other errors are the underlying stream's
/// (including clean EOF as [`io::ErrorKind::UnexpectedEof`]).
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[0] != FRAME_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported frame version {}", header[0]),
        ));
    }
    let len = u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as u64;
    let sender = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
    let correlation = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
    if len > crate::MAX_LENGTH {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length prefix {len} exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Frame {
        sender,
        correlation,
        payload,
    })
}

/// Incremental frame decoder for non-blocking readers.
///
/// [`read_frame`] blocks until a whole frame is available, which suits
/// one-thread-per-connection readers. An event-loop reader instead
/// receives the stream in arbitrary chunks — a partial header, a
/// payload split across reads, several back-to-back frames in one
/// read — and must resume decoding exactly where the last chunk
/// stopped. Feed every received chunk to [`FrameDecoder::extend`] and
/// drain complete frames with [`FrameDecoder::next_frame`]; the frame
/// sequence is identical to calling [`read_frame`] on the same byte
/// stream (the codec proptests pin this equivalence down).
///
/// Malformed input fails fast: a wrong version byte is rejected as
/// soon as it is visible and an oversized length prefix as soon as the
/// prefix is complete, without waiting for the rest of the header —
/// on a live socket the connection should be cut immediately, not
/// after the peer happens to send 21 bytes. Once `next_frame` has
/// returned an error the decoder is poisoned and returns the same
/// error kind forever; a desynchronized stream cannot be resumed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames.
    start: usize,
    poisoned: Option<io::ErrorKind>,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes received from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact lazily: drop the consumed prefix before growing, so
        // a long-lived connection does not accrete every frame it ever
        // decoded.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame. Non-zero at
    /// EOF means the stream stopped mid-frame (the blocking path's
    /// [`io::ErrorKind::UnexpectedEof`]).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, or `Ok(None)` when more bytes
    /// are needed. Errors mirror [`read_frame`]:
    /// [`io::ErrorKind::InvalidData`] for a bad version byte or an
    /// oversized length prefix.
    pub fn next_frame(&mut self) -> io::Result<Option<Frame>> {
        if let Some(kind) = self.poisoned {
            return Err(io::Error::new(kind, "frame stream is desynchronized"));
        }
        let avail = &self.buf[self.start..];
        let Some(&version) = avail.first() else {
            return Ok(None);
        };
        if version != FRAME_VERSION {
            self.poisoned = Some(io::ErrorKind::InvalidData);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported frame version {version}"),
            ));
        }
        if avail.len() < 5 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[1..5].try_into().expect("4 bytes")) as u64;
        if len > crate::MAX_LENGTH {
            self.poisoned = Some(io::ErrorKind::InvalidData);
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length prefix {len} exceeds limit"),
            ));
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let sender = u64::from_le_bytes(avail[5..13].try_into().expect("8 bytes"));
        let correlation = u64::from_le_bytes(avail[13..21].try_into().expect("8 bytes"));
        let payload = avail[FRAME_HEADER_LEN..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(Frame {
            sender,
            correlation,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, 7001, b"hello").unwrap();
        write_frame(&mut buf, 7, 7002, b"").unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Frame {
                sender: 42,
                correlation: 7001,
                payload: b"hello".to_vec()
            }
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Frame {
                sender: 7,
                correlation: 7002,
                payload: Vec::new()
            }
        );
    }

    #[test]
    fn header_len_matches_layout() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 2, b"xyz").unwrap();
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 3);
        assert_eq!(buf[0], FRAME_VERSION);
    }

    #[test]
    fn truncated_stream_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 9, 3, b"payload").unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = vec![FRAME_VERSION];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_version_byte_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, 2, b"ok").unwrap();
        buf[0] = 1; // the pre-correlation v1 layout
        let mut cursor = io::Cursor::new(buf);
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn incremental_decoder_survives_byte_at_a_time_delivery() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, 7001, b"hello").unwrap();
        write_frame(&mut buf, 7, 7002, b"").unwrap();
        let mut decoder = FrameDecoder::new();
        let mut frames = Vec::new();
        for byte in buf {
            decoder.extend(&[byte]);
            while let Some(frame) = decoder.next_frame().unwrap() {
                frames.push(frame);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].correlation, 7001);
        assert_eq!(frames[0].payload, b"hello");
        assert_eq!(frames[1].correlation, 7002);
        assert!(frames[1].payload.is_empty());
        assert_eq!(decoder.pending_bytes(), 0);
    }

    #[test]
    fn incremental_decoder_drains_back_to_back_frames_from_one_chunk() {
        let mut buf = Vec::new();
        for corr in 0..5u64 {
            write_frame(&mut buf, 1, corr, &[corr as u8]).unwrap();
        }
        let mut decoder = FrameDecoder::new();
        decoder.extend(&buf);
        for corr in 0..5u64 {
            let frame = decoder.next_frame().unwrap().expect("complete frame");
            assert_eq!(frame.correlation, corr);
        }
        assert!(decoder.next_frame().unwrap().is_none());
    }

    #[test]
    fn incremental_decoder_rejects_bad_version_immediately_and_stays_poisoned() {
        let mut decoder = FrameDecoder::new();
        decoder.extend(&[1]); // v1-era stream: no version byte
        assert_eq!(
            decoder.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        // Feeding more bytes cannot resurrect a desynchronized stream.
        decoder.extend(&[FRAME_VERSION]);
        assert_eq!(
            decoder.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn incremental_decoder_rejects_oversized_length_prefix() {
        let mut decoder = FrameDecoder::new();
        let mut bytes = vec![FRAME_VERSION];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        decoder.extend(&bytes);
        assert_eq!(
            decoder.next_frame().unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn oversized_payload_refused_on_write() {
        struct NullSink;
        impl io::Write for NullSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Don't allocate 64 MiB in a unit test: the limit check runs on
        // the length, so a zero-copy slice of a static would do — but a
        // Vec keeps it simple and the allocation is virtual until
        // touched.
        let payload = vec![0u8; crate::MAX_LENGTH as usize + 1];
        let err = write_frame(&mut NullSink, 1, 2, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
