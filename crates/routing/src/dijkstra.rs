//! Dijkstra and bidirectional Dijkstra shortest-path engines.

use crate::graph::{RoadGraph, Route};
use crate::RouteError;
use openflame_mapdata::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry ordered by cost.
#[derive(Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub cost: f64,
    pub node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; total_cmp handles all float values.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Classic single-source Dijkstra from `from` to `to`.
pub fn dijkstra(graph: &RoadGraph, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
    let src = graph
        .index_of(from)
        .ok_or(RouteError::NodeNotInGraph(from.0))?;
    let dst = graph.index_of(to).ok_or(RouteError::NodeNotInGraph(to.0))?;
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    let mut heap = BinaryHeap::new();
    let mut settled = 0usize;
    dist[src] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        settled += 1;
        if node == dst {
            return Ok(build_route(graph, &prev, src, dst, cost, settled));
        }
        for e in graph.out_edges(node) {
            let nd = cost + e.weight;
            if nd < dist[e.to] {
                dist[e.to] = nd;
                prev[e.to] = node;
                heap.push(HeapEntry {
                    cost: nd,
                    node: e.to,
                });
            }
        }
    }
    Err(RouteError::NoPath)
}

/// One-to-many Dijkstra: costs from `from` to every node in `targets`.
///
/// Returns `f64::INFINITY` for unreachable targets. Used by map servers
/// to produce portal cost matrices for stitching (paper §5.2).
pub fn dijkstra_many(graph: &RoadGraph, from: NodeId, targets: &[NodeId]) -> Vec<f64> {
    let Some(src) = graph.index_of(from) else {
        return vec![f64::INFINITY; targets.len()];
    };
    let target_idx: Vec<Option<usize>> = targets.iter().map(|t| graph.index_of(*t)).collect();
    let mut remaining: usize = target_idx.iter().flatten().count();
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    let mut found = vec![false; n];
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        if !found[node] && target_idx.contains(&Some(node)) {
            found[node] = true;
            remaining =
                remaining.saturating_sub(target_idx.iter().filter(|t| **t == Some(node)).count());
            if remaining == 0 {
                break;
            }
        }
        for e in graph.out_edges(node) {
            let nd = cost + e.weight;
            if nd < dist[e.to] {
                dist[e.to] = nd;
                heap.push(HeapEntry {
                    cost: nd,
                    node: e.to,
                });
            }
        }
    }
    target_idx
        .iter()
        .map(|t| t.map(|i| dist[i]).unwrap_or(f64::INFINITY))
        .collect()
}

/// Bidirectional Dijkstra: simultaneous forward and backward searches
/// meeting in the middle; settles far fewer nodes than unidirectional on
/// road networks.
pub fn bidirectional(graph: &RoadGraph, from: NodeId, to: NodeId) -> Result<Route, RouteError> {
    let src = graph
        .index_of(from)
        .ok_or(RouteError::NodeNotInGraph(from.0))?;
    let dst = graph.index_of(to).ok_or(RouteError::NodeNotInGraph(to.0))?;
    if src == dst {
        return Ok(graph.route_from_indices(&[src], 0.0, 0));
    }
    let n = graph.node_count();
    let mut dist_f = vec![f64::INFINITY; n];
    let mut dist_b = vec![f64::INFINITY; n];
    let mut prev_f = vec![usize::MAX; n];
    let mut prev_b = vec![usize::MAX; n];
    let mut heap_f = BinaryHeap::new();
    let mut heap_b = BinaryHeap::new();
    dist_f[src] = 0.0;
    dist_b[dst] = 0.0;
    heap_f.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    heap_b.push(HeapEntry {
        cost: 0.0,
        node: dst,
    });
    let mut best = f64::INFINITY;
    let mut meet = usize::MAX;
    let mut settled = 0usize;
    // Alternate the smaller frontier; stop when the sum of the two
    // frontier minima can no longer improve the best meeting.
    loop {
        let top_f = heap_f.peek().map(|e| e.cost).unwrap_or(f64::INFINITY);
        let top_b = heap_b.peek().map(|e| e.cost).unwrap_or(f64::INFINITY);
        if top_f + top_b >= best || (heap_f.is_empty() && heap_b.is_empty()) {
            break;
        }
        let forward = top_f <= top_b;
        let (heap, dist, prev, other_dist) = if forward {
            (&mut heap_f, &mut dist_f, &mut prev_f, &dist_b)
        } else {
            (&mut heap_b, &mut dist_b, &mut prev_b, &dist_f)
        };
        let Some(HeapEntry { cost, node }) = heap.pop() else {
            continue;
        };
        if cost > dist[node] {
            continue;
        }
        settled += 1;
        if other_dist[node].is_finite() && cost + other_dist[node] < best {
            best = cost + other_dist[node];
            meet = node;
        }
        let edges = if forward {
            graph.out_edges(node)
        } else {
            graph.in_edges(node)
        };
        for e in edges {
            let nd = cost + e.weight;
            if nd < dist[e.to] {
                dist[e.to] = nd;
                prev[e.to] = node;
                heap.push(HeapEntry {
                    cost: nd,
                    node: e.to,
                });
            }
        }
    }
    if meet == usize::MAX {
        return Err(RouteError::NoPath);
    }
    // Reconstruct: src → meet from the forward tree, meet → dst from the
    // backward tree.
    let mut forward_part = trace(&prev_f, src, meet);
    let mut cur = prev_b[meet];
    while cur != usize::MAX {
        forward_part.push(cur);
        if cur == dst {
            break;
        }
        cur = prev_b[cur];
    }
    Ok(graph.route_from_indices(&forward_part, best, settled))
}

fn trace(prev: &[usize], src: usize, end: usize) -> Vec<usize> {
    let mut path = vec![end];
    let mut cur = end;
    while cur != src {
        cur = prev[cur];
        debug_assert!(cur != usize::MAX, "broken predecessor chain");
        path.push(cur);
    }
    path.reverse();
    path
}

fn build_route(
    graph: &RoadGraph,
    prev: &[usize],
    src: usize,
    dst: usize,
    cost: f64,
    settled: usize,
) -> Route {
    let path = trace(prev, src, dst);
    graph.route_from_indices(&path, cost, settled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Profile;
    use openflame_geo::Point2;
    use openflame_mapdata::{GeoReference, MapDocument, Tags};

    /// A 4×4 grid of footways with 10 m spacing.
    fn grid_map() -> (MapDocument, Vec<Vec<NodeId>>) {
        let mut map = MapDocument::new("grid", "t", GeoReference::Unaligned { hint: None });
        let mut ids = vec![vec![]; 4];
        for (r, row) in ids.iter_mut().enumerate() {
            for c in 0..4 {
                row.push(map.add_node(Point2::new(c as f64 * 10.0, r as f64 * 10.0), Tags::new()));
            }
        }
        for row in &ids {
            map.add_way(row.clone(), Tags::new().with("highway", "footway"))
                .unwrap();
        }
        for c in 0..4 {
            let col: Vec<NodeId> = ids.iter().map(|row| row[c]).collect();
            map.add_way(col, Tags::new().with("highway", "footway"))
                .unwrap();
        }
        (map, ids)
    }

    #[test]
    fn dijkstra_straight_line() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        let r = dijkstra(&g, ids[0][0], ids[0][3]).unwrap();
        assert!((r.length_m - 30.0).abs() < 1e-9);
        assert_eq!(r.nodes.len(), 4);
        assert!((r.cost - 30.0 / 1.4).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_manhattan_distance_on_grid() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        let r = dijkstra(&g, ids[0][0], ids[3][3]).unwrap();
        assert!(
            (r.length_m - 60.0).abs() < 1e-9,
            "grid shortest path is manhattan"
        );
    }

    #[test]
    fn dijkstra_same_node() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        let r = dijkstra(&g, ids[1][1], ids[1][1]).unwrap();
        assert_eq!(r.nodes, vec![ids[1][1]]);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn dijkstra_unknown_node_errors() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        assert!(matches!(
            dijkstra(&g, NodeId(99999), ids[0][0]),
            Err(RouteError::NodeNotInGraph(99999))
        ));
    }

    #[test]
    fn disconnected_components_no_path() {
        let mut map = MapDocument::new("d", "t", GeoReference::Unaligned { hint: None });
        let a = map.add_node(Point2::new(0.0, 0.0), Tags::new());
        let b = map.add_node(Point2::new(10.0, 0.0), Tags::new());
        let c = map.add_node(Point2::new(100.0, 0.0), Tags::new());
        let d = map.add_node(Point2::new(110.0, 0.0), Tags::new());
        map.add_way(vec![a, b], Tags::new().with("highway", "footway"))
            .unwrap();
        map.add_way(vec![c, d], Tags::new().with("highway", "footway"))
            .unwrap();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        assert_eq!(dijkstra(&g, a, d), Err(RouteError::NoPath));
        assert_eq!(bidirectional(&g, a, d), Err(RouteError::NoPath));
    }

    #[test]
    fn bidirectional_matches_dijkstra_cost() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        for (s, t) in [
            (ids[0][0], ids[3][3]),
            (ids[1][2], ids[2][0]),
            (ids[0][3], ids[3][0]),
        ] {
            let d = dijkstra(&g, s, t).unwrap();
            let b = bidirectional(&g, s, t).unwrap();
            assert!((d.cost - b.cost).abs() < 1e-9, "{s:?}->{t:?}");
            // The path itself must be valid and connect s to t.
            assert_eq!(b.nodes.first(), Some(&s));
            assert_eq!(b.nodes.last(), Some(&t));
        }
    }

    #[test]
    fn bidirectional_settles_fewer_on_long_paths() {
        // A long chain: bidirectional should explore roughly half.
        let mut map = MapDocument::new("chain", "t", GeoReference::Unaligned { hint: None });
        let ids: Vec<NodeId> = (0..200)
            .map(|i| map.add_node(Point2::new(i as f64 * 5.0, 0.0), Tags::new()))
            .collect();
        map.add_way(ids.clone(), Tags::new().with("highway", "footway"))
            .unwrap();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        let d = dijkstra(&g, ids[0], ids[199]).unwrap();
        let b = bidirectional(&g, ids[0], ids[199]).unwrap();
        assert!((d.cost - b.cost).abs() < 1e-9);
        assert!(
            b.settled <= d.settled,
            "bidir {} vs dijkstra {}",
            b.settled,
            d.settled
        );
    }

    #[test]
    fn oneway_affects_driving_direction() {
        let mut map = MapDocument::new("ow", "t", GeoReference::Unaligned { hint: None });
        let a = map.add_node(Point2::new(0.0, 0.0), Tags::new());
        let b = map.add_node(Point2::new(100.0, 0.0), Tags::new());
        map.add_way(
            vec![a, b],
            Tags::new()
                .with("highway", "residential")
                .with("oneway", "yes"),
        )
        .unwrap();
        let g = RoadGraph::from_map(&map, Profile::Driving);
        assert!(dijkstra(&g, a, b).is_ok());
        assert_eq!(dijkstra(&g, b, a), Err(RouteError::NoPath));
    }

    #[test]
    fn dijkstra_many_costs() {
        let (map, ids) = grid_map();
        let g = RoadGraph::from_map(&map, Profile::Walking);
        let targets = [ids[0][3], ids[3][3], NodeId(98765), ids[0][0]];
        let costs = dijkstra_many(&g, ids[0][0], &targets);
        assert!((costs[0] - 30.0 / 1.4).abs() < 1e-9);
        assert!((costs[1] - 60.0 / 1.4).abs() < 1e-9);
        assert!(costs[2].is_infinite(), "unknown target is unreachable");
        assert_eq!(costs[3], 0.0);
    }
}
