//! The paper's core claim as tests: the federation serves the *same*
//! services as a centralized map, behind the same `SpatialProvider`
//! trait — plus the wire-discipline guarantees of the batched session
//! layer (exactly one `Request::Batch` envelope per discovered server
//! per scatter round).

use openflame_core::{
    CentralizedProvider, Deployment, DeploymentConfig, GeocodeQuery, LocalizeQuery, RouteQuery,
    SearchQuery, SpatialProvider, TileQuery,
};
use openflame_localize::LocationCue;
use openflame_netsim::SimNet;
use openflame_worldgen::{World, WorldConfig};

fn one_venue_world() -> World {
    World::generate(WorldConfig {
        stores: 1,
        products_per_store: 8,
        ..WorldConfig::default()
    })
}

/// An outdoor address that exists in the public world map.
fn some_address(world: &World) -> String {
    world
        .outdoor
        .nodes()
        .find_map(|n| {
            n.tags
                .has("addr:housenumber")
                .then(|| n.tags.get("name").unwrap().to_string())
        })
        .expect("world has addresses")
}

#[test]
fn federated_and_omniscient_geocode_agree_on_one_venue_world() {
    let world = one_venue_world();
    let address = some_address(&world);
    let dep = Deployment::build(world.clone(), DeploymentConfig::default());
    let omni_net = SimNet::new(9);
    let omni = CentralizedProvider::omniscient(&omni_net, &world);

    let federated: &dyn SpatialProvider = &dep.client;
    let centralized: &dyn SpatialProvider = &omni;
    let query = GeocodeQuery {
        query: address.clone(),
        k: 3,
    };
    let fed = federated.geocode(query.clone()).unwrap();
    let cen = centralized.geocode(query).unwrap();

    // Identical top answer: same label, same place on the globe.
    let fed_top = &fed.hits[0];
    let cen_top = &cen.hits[0];
    assert_eq!(fed_top.hit.label, cen_top.hit.label, "address {address:?}");
    assert!((fed_top.hit.score - cen_top.hit.score).abs() < 1e-9);
    let (fed_geo, cen_geo) = (fed_top.geo.unwrap(), cen_top.geo.unwrap());
    assert!(
        fed_geo.haversine_distance(cen_geo) < 0.5,
        "geocoded positions diverge: {fed_geo} vs {cen_geo}"
    );
    // Both calls actually crossed the wire and said who answered.
    assert!(fed.stats.messages > 0 && cen.stats.messages > 0);
    assert_eq!(fed_top.server_id, "world");
    assert_eq!(cen_top.server_id, "central-omniscient");
}

#[test]
fn every_service_runs_under_both_architectures() {
    let world = one_venue_world();
    let dep = Deployment::build(world.clone(), DeploymentConfig::default());
    let omni_net = SimNet::new(5);
    let omni = CentralizedProvider::omniscient(&omni_net, &world);
    let product = world.products[0].clone();
    let near = world.venues[product.venue].hint;

    for provider in [&dep.client as &dyn SpatialProvider, &omni] {
        let id = provider.provider_id();
        let search = provider
            .search(SearchQuery {
                query: product.name.clone(),
                location: near,
                radius_m: 5_000.0,
                k: 3,
            })
            .unwrap();
        assert_eq!(search.hits[0].result.label, product.name, "{id}");
        let route = provider
            .route(RouteQuery {
                from: near.destination(225.0, 80.0),
                target: search.hits[0].clone(),
            })
            .unwrap();
        assert!(route.route.total_length_m > 1.0, "{id}");
        let localize = provider
            .localize(LocalizeQuery {
                coarse: near,
                cues: vec![LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }],
            })
            .unwrap();
        assert!(
            localize
                .estimates
                .iter()
                .any(|e| e.estimate.technology == "gnss" && e.geo.is_some()),
            "{id}"
        );
        let tile = provider
            .tile(TileQuery {
                center: world.config.center,
                z: 16,
            })
            .unwrap();
        assert!(tile.tile.coverage() > 0.0, "{id}");
        let rev = provider
            .reverse_geocode(openflame_core::ReverseGeocodeQuery {
                location: world.config.center,
                radius_m: 100.0,
            })
            .unwrap();
        assert!(rev.hit.is_some(), "{id}");
    }
}

#[test]
fn warm_search_issues_exactly_one_batch_envelope_per_server() {
    let world = World::generate(WorldConfig {
        stores: 4,
        products_per_store: 10,
        ..WorldConfig::default()
    });
    let dep = Deployment::build(world, DeploymentConfig::default());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    // Warm the session: discovery and hellos are cached after this.
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let servers = dep.client.discover(near).unwrap();
    assert!(servers.len() >= 2, "need a federation to make the point");

    dep.transport.reset_stats();
    let batches_before = dep.client.session().stats().batches;
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let stats = dep.transport.stats();
    let batches = dep.client.session().stats().batches - batches_before;
    // One batch envelope per discovered server...
    assert_eq!(batches, servers.len() as u64);
    // ...and nothing else on the wire: request + response per server,
    // no DNS, no hello traffic.
    assert_eq!(stats.messages, 2 * servers.len() as u64);
}

#[test]
fn warm_geocode_issues_exactly_one_batch_envelope_per_server() {
    let world = one_venue_world();
    let address = some_address(&world);
    let dep = Deployment::build(world, DeploymentConfig::default());
    let world_ep = dep.outdoor_server.endpoint();
    // Warm: coarse hit location discovered, hellos cached.
    dep.client.federated_geocode(&address, world_ep, 3).unwrap();
    // The refinement fan-out happens at the coarse hit's location.
    let coarse = dep.client.federated_geocode(&address, world_ep, 1).unwrap();
    let _ = coarse;

    dep.transport.reset_stats();
    let batches_before = dep.client.session().stats().batches;
    dep.client.federated_geocode(&address, world_ep, 3).unwrap();
    let batches = dep.client.session().stats().batches - batches_before;
    let stats = dep.transport.stats();
    // One envelope to the world provider plus one per refining server;
    // every envelope is exactly one request + one response message.
    assert_eq!(stats.messages, 2 * batches);
    assert!(batches >= 2, "coarse + at least one refiner");
}

#[test]
fn session_discovery_cache_short_circuits_repeat_lookups() {
    let world = one_venue_world();
    let dep = Deployment::build(world, DeploymentConfig::default());
    let near = dep.world.venues[0].hint;
    dep.client.discover(near).unwrap();
    let resolver_queries = dep.client.discovery().resolver().stats().queries;
    dep.transport.reset_stats();
    dep.client.discover(near).unwrap();
    // No resolver traffic, no network traffic: pure cache hit.
    assert_eq!(
        dep.client.discovery().resolver().stats().queries,
        resolver_queries
    );
    assert_eq!(dep.transport.stats().messages, 0);
    assert!(dep.client.session().stats().discovery_hits >= 1);
}

#[test]
fn partial_failure_carries_item_errors_and_successes() {
    use openflame_core::ClientError;
    use std::error::Error;

    let world = one_venue_world();
    let dep = Deployment::build(world, DeploymentConfig::default());
    // NearestNode on a venue server with an out-of-graph id mixed with
    // a valid request: the matrix helper demands all items, so the
    // partial failure surfaces with the successes counted.
    let venue = dep.venue_servers[0].endpoint();
    let bogus = openflame_mapdata::NodeId(u64::MAX);
    let err = dep
        .client
        .route_on(venue, bogus, bogus)
        .expect_err("bogus nodes cannot route");
    // Whatever the exact failure shape, it must be displayable and—
    // when a batch is involved—preserve its source chain.
    if let ClientError::PartialFailure { failures, .. } = &err {
        assert!(!failures.is_empty());
        assert!(err.source().is_some());
    }
    let _ = err.to_string();
}
