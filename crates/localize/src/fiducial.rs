//! Fiducial-tag localization: exact position lookup from tag scans.

use crate::cues::{Estimate, LocationCue};
use openflame_geo::Point2;
use std::collections::HashMap;

/// Positions of fiducial tags (QR codes, AprilTags) installed in a
/// venue, keyed by tag id.
///
/// Scanning a tag localizes the device to the tag's surveyed position
/// with sub-meter error — the highest-precision, lowest-availability
/// cue in the paper §5.2 taxonomy.
#[derive(Debug, Clone, Default)]
pub struct TagRegistry {
    tags: HashMap<u64, Point2>,
}

/// Scan-distance error assumed for tag sightings.
const TAG_ERROR_M: f64 = 0.5;

impl TagRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tag at a position (replacing any previous position).
    pub fn install(&mut self, tag_id: u64, pos: Point2) {
        self.tags.insert(tag_id, pos);
    }

    /// Number of installed tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The position of a tag, if installed.
    pub fn position(&self, tag_id: u64) -> Option<Point2> {
        self.tags.get(&tag_id).copied()
    }

    /// Localizes a tag-scan cue.
    pub fn localize(&self, cue: &LocationCue) -> Option<Estimate> {
        let LocationCue::FiducialTag { tag_id } = cue else {
            return None;
        };
        self.tags.get(tag_id).map(|&pos| Estimate {
            pos,
            error_m: TAG_ERROR_M,
            technology: "tag".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_localize() {
        let mut reg = TagRegistry::new();
        assert!(reg.is_empty());
        reg.install(7, Point2::new(3.0, 4.0));
        assert_eq!(reg.len(), 1);
        let est = reg
            .localize(&LocationCue::FiducialTag { tag_id: 7 })
            .unwrap();
        assert_eq!(est.pos, Point2::new(3.0, 4.0));
        assert!(est.error_m <= 1.0);
        assert_eq!(est.technology, "tag");
    }

    #[test]
    fn unknown_tag_or_wrong_cue() {
        let mut reg = TagRegistry::new();
        reg.install(1, Point2::ZERO);
        assert!(reg
            .localize(&LocationCue::FiducialTag { tag_id: 2 })
            .is_none());
        assert!(reg
            .localize(&LocationCue::BeaconRssi {
                readings: vec![(1, -40.0)]
            })
            .is_none());
    }

    #[test]
    fn reinstall_replaces() {
        let mut reg = TagRegistry::new();
        reg.install(1, Point2::ZERO);
        reg.install(1, Point2::new(9.0, 9.0));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.position(1), Some(Point2::new(9.0, 9.0)));
    }
}
