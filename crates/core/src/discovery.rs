//! Map-server discovery through the DNS (paper §5.1).
//!
//! "The discovery query would involve the coarse location of the device
//! obtained from ubiquitous sources like the GPS. The discovery system
//! would then respond to the query with a list of map providers for the
//! region."
//!
//! The client converts its coarse location to the canonical query cell,
//! resolves that cell's `MAPSRV` records through a caching resolver, and
//! — because map boundaries are fuzzy (paper §3) — optionally repeats the
//! lookup for the cell's edge neighbors, deduplicating the result.

use crate::fleet::{DiscoveryView, FleetShardView, FleetView};
use crate::ClientError;
use openflame_cells::CellId;
use openflame_diag::{ranks, OrderedMutex};
use openflame_dns::{DnsError, DomainName, RecordData, RecordType, Resolver};
use openflame_geo::LatLng;
use openflame_mapserver::naming::{cell_to_name, QUERY_LEVEL};
use openflame_netsim::EndpointId;
use std::sync::Arc;

/// A discovered map server.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredServer {
    /// Stable server id.
    pub server_id: String,
    /// Network endpoint.
    pub endpoint: EndpointId,
    /// Advertised service names (includes `localize:<tech>` entries).
    pub services: Vec<String>,
}

impl DiscoveredServer {
    /// Whether the server advertises a localization technology.
    pub fn accepts_cue(&self, technology: &str) -> bool {
        self.services
            .iter()
            .any(|s| s == &format!("localize:{technology}"))
    }
}

/// Counters for discovery behaviour (experiment E2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Discovery operations performed.
    pub discoveries: u64,
    /// DNS lookups issued (primary + neighbor cells).
    pub lookups: u64,
    /// Lookups answered from the resolver cache.
    pub cache_hits: u64,
    /// Lookups that returned no servers.
    pub empty: u64,
}

/// The discovery layer: location → map servers.
pub struct DiscoveryClient {
    resolver: Arc<Resolver>,
    stats: OrderedMutex<DiscoveryStats>,
}

impl DiscoveryClient {
    /// Creates a discovery client over a DNS resolver.
    pub fn new(resolver: Arc<Resolver>) -> Self {
        Self {
            resolver,
            stats: OrderedMutex::new(ranks::DISCOVERY_STATS, DiscoveryStats::default()),
        }
    }

    /// The underlying resolver.
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DiscoveryStats {
        self.stats.lock().clone()
    }

    /// Discovers the map servers covering `location`.
    ///
    /// With `expand_neighbors`, the four edge-neighbor cells of the
    /// query cell are also resolved, absorbing boundary fuzziness at the
    /// cost of extra lookups (ablation E12 measures this trade-off).
    pub fn discover(
        &self,
        location: LatLng,
        expand_neighbors: bool,
    ) -> Result<Vec<DiscoveredServer>, ClientError> {
        self.discover_at_level(location, QUERY_LEVEL, expand_neighbors)
    }

    /// [`DiscoveryClient::discover`] with an explicit query cell level.
    ///
    /// The naming contract requires queries at or below (finer than) the
    /// registration covering level — wildcards only match descendants —
    /// which ablation E12 demonstrates by sweeping this parameter.
    pub fn discover_at_level(
        &self,
        location: LatLng,
        level: u8,
        expand_neighbors: bool,
    ) -> Result<Vec<DiscoveredServer>, ClientError> {
        Ok(self
            .discover_view_at_level(location, level, expand_neighbors)?
            .servers)
    }

    /// Fleet-aware discovery: resolves both `MAPSRV` (plain servers)
    /// and `FLEETSRV` (replica-set + shard-map advertisements) for the
    /// query cells, in **one** pipelined resolver round — two record
    /// types per cell cost one walk's latency, not two.
    ///
    /// In deployments without fleets the `FLEETSRV` lookups come back
    /// empty and the view degenerates to the plain server list, so this
    /// is the single discovery path for every client.
    pub fn discover_view(
        &self,
        location: LatLng,
        expand_neighbors: bool,
    ) -> Result<DiscoveryView, ClientError> {
        self.discover_view_at_level(location, QUERY_LEVEL, expand_neighbors)
    }

    /// [`DiscoveryClient::discover_view`] with an explicit query cell
    /// level.
    pub fn discover_view_at_level(
        &self,
        location: LatLng,
        level: u8,
        expand_neighbors: bool,
    ) -> Result<DiscoveryView, ClientError> {
        self.stats.lock().discoveries += 1;
        let cell = CellId::from_latlng(location, level)
            .map_err(|e| ClientError::Protocol(format!("bad location: {e}")))?;
        let mut cells = vec![cell];
        if expand_neighbors {
            cells.extend(cell.edge_neighbors());
        }
        // All lookups (primary + neighbors, both record types) walk the
        // DNS in one pipelined round: ten queries cost one walk's
        // latency, not ten. Results come back positionally, so dedup
        // order — and therefore the discovered-server order every layer
        // above relies on — is identical to the sequential walk's.
        let queries: Vec<(DomainName, RecordType)> = cells
            .iter()
            .flat_map(|c| {
                let name = cell_to_name(*c);
                [
                    (name.clone(), RecordType::MapSrv),
                    (name, RecordType::FleetSrv),
                ]
            })
            .collect();
        self.stats.lock().lookups += queries.len() as u64;
        let outcomes = self.resolver.resolve_many(&queries);
        let mut view = DiscoveryView::default();
        for ((name, _), outcome) in queries.into_iter().zip(outcomes) {
            match outcome {
                Ok(outcome) => {
                    if outcome.from_cache {
                        self.stats.lock().cache_hits += 1;
                    }
                    if outcome.records.is_empty() {
                        self.stats.lock().empty += 1;
                    }
                    for record in outcome.records {
                        Self::absorb_record(&mut view, record.data);
                    }
                }
                Err(DnsError::NxDomain(_)) => {
                    self.stats.lock().empty += 1;
                }
                Err(e) => {
                    return Err(ClientError::Network(format!(
                        "discovery lookup {name}: {e}"
                    )))
                }
            }
        }
        Ok(view)
    }

    /// Folds one resource record into the view, deduplicating servers
    /// by id and fleets by group id (neighbor cells re-advertise the
    /// same providers).
    fn absorb_record(view: &mut DiscoveryView, data: RecordData) {
        match data {
            RecordData::MapSrv {
                endpoint,
                server_id,
                services,
            } if view.servers.iter().all(|s| s.server_id != server_id) => {
                view.servers.push(DiscoveredServer {
                    server_id,
                    endpoint: EndpointId(endpoint),
                    services,
                });
            }
            RecordData::FleetSrv {
                group_id,
                services,
                shards,
            } => {
                if view.fleets.iter().any(|f| f.group_id == group_id) {
                    return;
                }
                let shards = shards
                    .into_iter()
                    .map(|shard| FleetShardView {
                        extents: shard
                            .extents
                            .iter()
                            .filter_map(|&raw| CellId::from_raw(raw).ok())
                            .collect(),
                        replicas: shard
                            .replicas
                            .into_iter()
                            .map(|r| DiscoveredServer {
                                server_id: r.server_id,
                                endpoint: EndpointId(r.endpoint),
                                // Replicas inherit the group's service
                                // advertisement.
                                services: services.clone(),
                            })
                            .collect(),
                    })
                    .collect();
                view.fleets.push(FleetView {
                    group_id,
                    services,
                    shards,
                });
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::{Deployment, DeploymentConfig};
    use openflame_worldgen::{World, WorldConfig};

    fn deployment() -> Deployment {
        Deployment::build(
            World::generate(WorldConfig::default()),
            DeploymentConfig::default(),
        )
    }

    #[test]
    fn discovers_venue_at_its_location() {
        let dep = deployment();
        let hint = dep.world.venues[0].hint;
        let found = dep.client.discovery().discover(hint, true).unwrap();
        assert!(
            found
                .iter()
                .any(|s| s.server_id == dep.venue_servers[0].id()),
            "venue server not discovered at its own hint; found {:?}",
            found.iter().map(|s| &s.server_id).collect::<Vec<_>>()
        );
        // The outdoor provider covers the whole city and must appear.
        assert!(found.iter().any(|s| s.server_id == dep.outdoor_server.id()));
    }

    #[test]
    fn far_location_finds_only_outdoor() {
        let dep = deployment();
        // A city corner with no venue nearby: outdoor provider only
        // (probabilistically; all venues sit inside blocks, corners may
        // still be within a venue cell, so check a point far outside).
        let far = dep.world.config.center.destination(0.0, 4_000.0);
        let found = dep.client.discovery().discover(far, false).unwrap();
        assert!(found
            .iter()
            .all(|s| s.server_id != dep.venue_servers[0].id()));
    }

    #[test]
    fn repeat_discovery_hits_cache() {
        let dep = deployment();
        let hint = dep.world.venues[1].hint;
        dep.client.discovery().discover(hint, false).unwrap();
        dep.client.discovery().discover(hint, false).unwrap();
        let stats = dep.client.discovery().stats();
        assert_eq!(stats.discoveries, 2);
        assert!(
            stats.cache_hits >= 1,
            "second lookup must be cached: {stats:?}"
        );
    }

    #[test]
    fn neighbor_expansion_issues_more_lookups() {
        let dep = deployment();
        let hint = dep.world.venues[2].hint;
        dep.client.discovery().discover(hint, false).unwrap();
        let without = dep.client.discovery().stats().lookups;
        dep.client.discovery().discover(hint, true).unwrap();
        let with = dep.client.discovery().stats().lookups - without;
        assert!(
            with > 1,
            "neighbor expansion should look up several cells, did {with}"
        );
    }

    #[test]
    fn accepts_cue_parses_services() {
        let s = DiscoveredServer {
            server_id: "x".into(),
            endpoint: EndpointId(1),
            services: vec!["search".into(), "localize:beacon".into()],
        };
        assert!(s.accepts_cue("beacon"));
        assert!(!s.accepts_cue("tag"));
    }
}
