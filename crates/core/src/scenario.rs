//! The paper §2 grocery-navigation scenario, end to end.
//!
//! "A user wishes to search for a product of interest, e.g., a
//! particular flavor of seaweed, near their location. The application
//! then provides the user with pedestrian navigation guidance to the
//! exact shelf in a grocery store nearby that stocks the seaweed."
//!
//! [`run_grocery_scenario`] executes that flow under each provider
//! architecture and reports what succeeded — the executable form of the
//! paper's Figure 1 vs Figure 2 comparison (experiment E1).
//!
//! The flow itself is written once, against `&dyn SpatialProvider`:
//! the *same* search → route → localize sequence runs under every
//! architecture, and only provider construction differs. What the
//! centralized baselines cannot do (find inventory, localize indoors)
//! shows up as missing data in the report, not as a different code
//! path.

use crate::centralized::CentralizedProvider;
use crate::deployment::{Deployment, DeploymentConfig};
use crate::provider::{LocalizeQuery, RouteQuery, SearchQuery, SpatialProvider};
use crate::ClientError;
use openflame_geo::LatLng;
use openflame_localize::{GnssModel, LocationCue, RadioMap};
use openflame_mapdata::ElementId;
use openflame_netsim::{BackendKind, Transport};
use openflame_worldgen::{WalkTrace, World};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which architecture serves the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProviderKind {
    /// Figure 2: OpenFLAME federation.
    Federated,
    /// Figure 1 with realistic data: outdoor public map only.
    CentralizedPublic,
    /// Figure 1 with impossible data: everything merged (upper bound).
    CentralizedOmniscient,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct GroceryScenarioReport {
    /// The architecture measured.
    pub provider: ProviderKind,
    /// The product searched for.
    pub product: String,
    /// Whether the product was found at all.
    pub found_product: bool,
    /// Whether navigation reached the exact shelf (vs. at best the
    /// storefront).
    pub route_reaches_shelf: bool,
    /// Total route length if any route was produced, meters.
    pub route_length_m: Option<f64>,
    /// Median localization error along the walk, outdoors, meters.
    pub outdoor_median_err_m: Option<f64>,
    /// Median localization error along the walk, indoors, meters.
    /// `None` when no indoor estimates were available at all.
    pub indoor_median_err_m: Option<f64>,
    /// Fraction of indoor samples with any localization estimate.
    pub indoor_availability: f64,
    /// Messages exchanged during the scenario.
    pub messages: u64,
    /// Bytes exchanged during the scenario.
    pub bytes: u64,
}

fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(f64::total_cmp);
    Some(values[values.len() / 2])
}

/// Runs the scenario for `product_idx` under the chosen architecture.
///
/// The user starts on the street ~80 m from the store, searches for the
/// product, navigates toward the shelf, and localizes continuously
/// along the way. Only provider *construction* depends on `provider`;
/// the flow runs through [`SpatialProvider`] for every architecture.
pub fn run_grocery_scenario(
    world: &World,
    provider: ProviderKind,
    product_idx: usize,
    seed: u64,
) -> Result<GroceryScenarioReport, ClientError> {
    run_grocery_scenario_on(world, provider, product_idx, seed, BackendKind::Sim)
}

/// [`run_grocery_scenario`] on an explicit wire backend: the *same*
/// provider-agnostic flow over the simulator or over real loopback TCP
/// sockets.
pub fn run_grocery_scenario_on(
    world: &World,
    provider: ProviderKind,
    product_idx: usize,
    seed: u64,
    backend: BackendKind,
) -> Result<GroceryScenarioReport, ClientError> {
    match provider {
        ProviderKind::Federated => {
            let dep = Deployment::build(
                world.clone(),
                DeploymentConfig {
                    net_seed: seed,
                    backend,
                    ..Default::default()
                },
            );
            run_with_provider(
                &dep.client,
                dep.transport.as_ref(),
                &dep.world,
                provider,
                product_idx,
                seed,
            )
        }
        ProviderKind::CentralizedPublic | ProviderKind::CentralizedOmniscient => {
            let transport = backend.build(seed);
            let central = if provider == ProviderKind::CentralizedOmniscient {
                CentralizedProvider::omniscient_on(transport.clone(), world)
            } else {
                CentralizedProvider::public_only_on(transport.clone(), world)
            };
            run_with_provider(
                &central,
                transport.as_ref(),
                world,
                provider,
                product_idx,
                seed,
            )
        }
    }
}

/// Generates the localization cue stream along the ground-truth walk.
fn localization_cues(
    world: &World,
    venue_idx: usize,
    trace: &WalkTrace,
    seed: u64,
) -> Vec<(usize, LatLng, Vec<LocationCue>, bool)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x10ca71e);
    let gnss = GnssModel::default();
    let venue = &world.venues[venue_idx];
    let radio = RadioMap::survey(
        venue.beacons.clone(),
        openflame_geo::Point2::new(-5.0, -5.0),
        openflame_geo::Point2::new(60.0, 45.0),
        2.0,
    );
    let mut out = Vec::new();
    for (i, sample) in trace.samples.iter().enumerate().step_by(5) {
        let mut cues = Vec::new();
        if let Some(cue) = gnss.sample(&mut rng, sample.geo, sample.indoors) {
            cues.push(cue);
        }
        if let Some((v, local)) = sample.venue_local {
            debug_assert_eq!(v, venue_idx);
            cues.push(radio.observe(&mut rng, local, 3.0));
        }
        out.push((i, sample.geo, cues, sample.indoors));
    }
    out
}

/// The provider-agnostic paper §2 flow (see module docs).
fn run_with_provider(
    provider: &dyn SpatialProvider,
    transport: &dyn Transport,
    world: &World,
    kind: ProviderKind,
    product_idx: usize,
    seed: u64,
) -> Result<GroceryScenarioReport, ClientError> {
    let product = world.products[product_idx].clone();
    let venue_idx = product.venue;
    transport.reset_stats();
    // The user stands on the street near the store (coarse GPS puts
    // discovery in the right cell).
    let user_geo = world.venues[venue_idx].hint.destination(225.0, 80.0);
    // 1. Search for the product.
    let search = provider.search(SearchQuery {
        query: product.name.clone(),
        location: user_geo,
        radius_m: 5_000.0,
        k: 5,
    });
    let top_hit = match search {
        Ok(outcome) => outcome.hits.into_iter().next(),
        // A provider with no data for the query still runs the rest of
        // the errand (the paper §2 status quo).
        Err(ClientError::NothingDiscovered(_)) | Err(ClientError::NotFound(_)) => None,
        Err(e) => return Err(e),
    };
    let found_product = top_hit
        .as_ref()
        .map(|h| h.result.label == product.name)
        .unwrap_or(false);
    // 2. Navigate as far as the data allows.
    let (route_length_m, route_reaches_shelf) = if found_product {
        let hit = top_hit.expect("found_product implies a hit");
        let target_node = match hit.result.element {
            ElementId::Node(n) => Some(n),
            _ => None,
        };
        match provider.route(RouteQuery {
            from: user_geo,
            target: hit,
        }) {
            Ok(outcome) => {
                let reaches = target_node
                    .map(|n| {
                        outcome
                            .route
                            .legs
                            .last()
                            .and_then(|leg| leg.route.nodes.last().copied())
                            == Some(n.0)
                    })
                    .unwrap_or(false);
                (Some(outcome.route.total_length_m), reaches)
            }
            Err(_) => (None, false),
        }
    } else {
        // Fall back to routing to the storefront (the paper §2 status quo:
        // guidance stops at the door).
        let storefront = provider
            .search(SearchQuery {
                query: world.venues[venue_idx].name.clone(),
                location: user_geo,
                radius_m: f64::INFINITY,
                k: 1,
            })
            .ok()
            .and_then(|outcome| outcome.hits.into_iter().next());
        match storefront {
            Some(hit) => match provider.route(RouteQuery {
                from: user_geo,
                target: hit,
            }) {
                Ok(outcome) => (Some(outcome.route.total_length_m), false),
                Err(_) => (None, false),
            },
            None => (None, false),
        }
    };
    // 3. Localize along the walk.
    let trace = WalkTrace::into_venue(world, venue_idx, 80.0);
    let mut outdoor_errs = Vec::new();
    let mut indoor_errs = Vec::new();
    let mut indoor_total = 0usize;
    let mut indoor_answered = 0usize;
    for (i, coarse_geo, cues, indoors) in localization_cues(world, venue_idx, &trace, seed) {
        if cues.is_empty() {
            if indoors {
                indoor_total += 1;
            }
            continue;
        }
        let outcome = provider.localize(LocalizeQuery {
            coarse: coarse_geo,
            cues,
        })?;
        let sample = &trace.samples[i];
        if indoors {
            indoor_total += 1;
            // Indoor truth is in the venue frame; venue estimates are in
            // the same frame, so the error is directly comparable.
            let venue_estimate = outcome
                .estimates
                .iter()
                .find(|e| e.server_id.starts_with("venue-"));
            if let Some(est) = venue_estimate {
                indoor_answered += 1;
                let (_, local_truth) = sample.venue_local.expect("indoor sample");
                indoor_errs.push(est.estimate.pos.distance(local_truth));
            }
        } else if let Some(est_geo) = outcome
            .estimates
            .iter()
            .find(|e| e.estimate.technology == "gnss")
            .and_then(|e| e.geo)
        {
            // Outdoor estimates carry a geographic position whenever the
            // producing server is anchored.
            outdoor_errs.push(est_geo.haversine_distance(sample.geo));
        }
    }
    let stats = transport.stats();
    Ok(GroceryScenarioReport {
        provider: kind,
        product: product.name.clone(),
        found_product,
        route_reaches_shelf,
        route_length_m,
        outdoor_median_err_m: median(&mut outdoor_errs),
        indoor_median_err_m: median(&mut indoor_errs),
        indoor_availability: if indoor_total == 0 {
            0.0
        } else {
            indoor_answered as f64 / indoor_total as f64
        },
        messages: stats.messages,
        bytes: stats.bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_worldgen::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::default())
    }

    #[test]
    fn federated_completes_the_scenario() {
        let report = run_grocery_scenario(&world(), ProviderKind::Federated, 3, 11).unwrap();
        assert!(report.found_product, "federation must find the product");
        assert!(report.route_reaches_shelf, "route must reach the shelf");
        assert!(report.route_length_m.unwrap() > 10.0);
        assert!(
            report.indoor_availability > 0.5,
            "indoor localization mostly available"
        );
        assert!(
            report.indoor_median_err_m.unwrap() < 10.0,
            "indoor error {:?}",
            report.indoor_median_err_m
        );
        assert!(report.messages > 0);
    }

    #[test]
    fn centralized_public_fails_indoors() {
        let report =
            run_grocery_scenario(&world(), ProviderKind::CentralizedPublic, 3, 11).unwrap();
        assert!(
            !report.found_product,
            "paper §2: no inventory in the public map"
        );
        assert!(!report.route_reaches_shelf);
        assert_eq!(report.indoor_median_err_m, None);
        assert_eq!(report.indoor_availability, 0.0);
        // It can still route to the storefront.
        assert!(report.route_length_m.is_some());
    }

    #[test]
    fn centralized_omniscient_finds_but_cannot_localize() {
        let report =
            run_grocery_scenario(&world(), ProviderKind::CentralizedOmniscient, 3, 11).unwrap();
        assert!(report.found_product, "omniscient map has the data");
        assert!(
            report.route_reaches_shelf,
            "and the merged graph routes to it"
        );
        // But localization still dies at the door (paper §2's sharpest point).
        assert_eq!(report.indoor_median_err_m, None);
    }

    #[test]
    fn outdoor_localization_works_everywhere() {
        for kind in [ProviderKind::Federated, ProviderKind::CentralizedPublic] {
            let report = run_grocery_scenario(&world(), kind, 7, 13).unwrap();
            let err = report
                .outdoor_median_err_m
                .expect("outdoor GNSS always available");
            assert!(err < 15.0, "{kind:?} outdoor err {err}");
        }
    }

    #[test]
    fn federated_spends_fewer_messages_than_unbatched_would() {
        // The batched session path: a full scenario's message count must
        // stay well below one message per primitive request (the
        // pre-batching wire discipline). This guards the amortization
        // from regressing silently.
        let report = run_grocery_scenario(&world(), ProviderKind::Federated, 3, 11).unwrap();
        let session_heavy_upper_bound = 400;
        assert!(
            report.messages < session_heavy_upper_bound,
            "scenario burned {} messages — batching or session caching regressed",
            report.messages
        );
    }
}
