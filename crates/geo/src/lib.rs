//! Geodetic and planar geometry primitives for the OpenFLAME federated
//! mapping system.
//!
//! This crate provides the foundation every other subsystem builds on:
//!
//! - [`LatLng`] geodetic coordinates with great-circle math (haversine
//!   distance, bearings, destination points).
//! - [`Point2`] planar points and vector operations.
//! - [`LocalFrame`] east-north-up tangent planes that let indoor maps live
//!   in metric local coordinates (paper §3 of the paper: indoor maps are rarely
//!   aligned with the geographic frame).
//! - [`Mercator`] Web-Mercator projection used by the tile pyramid.
//! - [`Polyline`] and [`Polygon`] with the usual computational-geometry
//!   toolkit (length, interpolation, closest point, point-in-polygon,
//!   area, simplification).
//! - [`Affine2`] planar transforms plus least-squares fitting from point
//!   correspondences, the MapCruncher-style mechanism the paper proposes
//!   (paper §5.2) for stitching maps whose coordinate frames disagree.
//!
//! All angles at API boundaries are degrees unless a name says otherwise;
//! all distances are meters.

pub mod bbox;
pub mod frame;
pub mod latlng;
pub mod linalg;
pub mod mercator;
pub mod point;
pub mod polygon;
pub mod polyline;
pub mod transform;

pub use bbox::BBox;
pub use frame::LocalFrame;
pub use latlng::{LatLng, EARTH_RADIUS_M};
pub use mercator::Mercator;
pub use point::Point2;
pub use polygon::Polygon;
pub use polyline::Polyline;
pub use transform::Affine2;

/// Errors produced by geometric constructions in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// A latitude was outside `[-90, 90]` or a longitude was not finite.
    InvalidCoordinate(String),
    /// An operation required more input points than were provided.
    InsufficientPoints {
        /// How many points the operation needs at minimum.
        needed: usize,
        /// How many points were actually supplied.
        got: usize,
    },
    /// A least-squares system was singular or numerically degenerate.
    DegenerateFit(String),
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::InvalidCoordinate(msg) => write!(f, "invalid coordinate: {msg}"),
            GeoError::InsufficientPoints { needed, got } => {
                write!(f, "insufficient points: needed {needed}, got {got}")
            }
            GeoError::DegenerateFit(msg) => write!(f, "degenerate fit: {msg}"),
        }
    }
}

impl std::error::Error for GeoError {}
