//! Stitching per-region route legs into an end-to-end plan.
//!
//! In the federated model (paper §5.2) "each map server would calculate the
//! route that is relevant for the region that they cover. The client
//! would collect paths from all relevant map servers, and stitch them
//! together such that the final path optimizes a metric of interest."
//!
//! The stitching problem is a shortest path through a layered DAG: the
//! traveler crosses regions `R0 → R1 → … → Rk`, each consecutive pair
//! connected at a set of candidate portals (store entrances, campus
//! gates). Each region server reports a cost matrix between its entry
//! and exit portals; dynamic programming picks the portal sequence with
//! minimal total cost.

use crate::RouteError;

/// Cost matrix for one leg: `costs[i][j]` is the in-region cost from
/// entry portal `i` to exit portal `j` (`f64::INFINITY` = unreachable).
#[derive(Debug, Clone)]
pub struct LegMatrix {
    /// Row = entry portal index, column = exit portal index.
    pub costs: Vec<Vec<f64>>,
}

impl LegMatrix {
    /// Creates a matrix, validating rectangular shape.
    pub fn new(costs: Vec<Vec<f64>>) -> Result<Self, RouteError> {
        if costs.is_empty() || costs[0].is_empty() {
            return Err(RouteError::BadStitchInput("empty cost matrix".into()));
        }
        let cols = costs[0].len();
        if costs.iter().any(|row| row.len() != cols) {
            return Err(RouteError::BadStitchInput("ragged cost matrix".into()));
        }
        Ok(Self { costs })
    }

    fn rows(&self) -> usize {
        self.costs.len()
    }

    fn cols(&self) -> usize {
        self.costs[0].len()
    }
}

/// The result of stitching: which exit portal to take out of each leg,
/// and the total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchedPlan {
    /// For legs `0..k-1`: the chosen exit-portal index (which is also
    /// the entry-portal index of the next leg).
    pub portal_choices: Vec<usize>,
    /// Total end-to-end cost.
    pub total_cost: f64,
}

/// Stitches a chain of legs.
///
/// Leg `l` must have as many exit columns as leg `l + 1` has entry rows
/// (they are the same physical portals). The first leg must have exactly
/// one entry (the trip origin) and the last exactly one exit (the
/// destination).
///
/// # Examples
///
/// ```
/// use openflame_routing::{stitch_legs, LegMatrix};
///
/// // Origin → two doors → destination. Door 1 is better overall.
/// let outdoor = LegMatrix::new(vec![vec![100.0, 80.0]]).unwrap();
/// let indoor = LegMatrix::new(vec![vec![10.0], vec![50.0]]).unwrap();
/// let plan = stitch_legs(&[outdoor, indoor]).unwrap();
/// assert_eq!(plan.total_cost, 110.0);
/// assert_eq!(plan.portal_choices, vec![0]);
/// ```
pub fn stitch_legs(legs: &[LegMatrix]) -> Result<StitchedPlan, RouteError> {
    if legs.is_empty() {
        return Err(RouteError::BadStitchInput("no legs".into()));
    }
    if legs[0].rows() != 1 {
        return Err(RouteError::BadStitchInput(format!(
            "first leg must have one entry, has {}",
            legs[0].rows()
        )));
    }
    if legs[legs.len() - 1].cols() != 1 {
        return Err(RouteError::BadStitchInput(format!(
            "last leg must have one exit, has {}",
            legs[legs.len() - 1].cols()
        )));
    }
    for (i, pair) in legs.windows(2).enumerate() {
        if pair[0].cols() != pair[1].rows() {
            return Err(RouteError::BadStitchInput(format!(
                "leg {i} has {} exits but leg {} has {} entries",
                pair[0].cols(),
                i + 1,
                pair[1].rows()
            )));
        }
    }
    // Forward DP over portal layers.
    // best[j] = min cost to reach exit portal j of the current leg.
    let mut best: Vec<f64> = legs[0].costs[0].clone();
    // choice[l][j] = entry portal of leg l used to reach its exit j.
    let mut choices: Vec<Vec<usize>> = vec![vec![0; legs[0].cols()]];
    for leg in &legs[1..] {
        let mut next = vec![f64::INFINITY; leg.cols()];
        let mut choice = vec![usize::MAX; leg.cols()];
        for (i, &cost_in) in best.iter().enumerate() {
            if cost_in.is_infinite() {
                continue;
            }
            for j in 0..leg.cols() {
                let c = cost_in + leg.costs[i][j];
                if c < next[j] {
                    next[j] = c;
                    choice[j] = i;
                }
            }
        }
        best = next;
        choices.push(choice);
    }
    let total_cost = best[0];
    if total_cost.is_infinite() {
        return Err(RouteError::NoPath);
    }
    // Backtrack portal choices.
    let mut portal_choices = vec![0usize; legs.len() - 1];
    let mut exit = 0usize;
    for l in (1..legs.len()).rev() {
        let entry = choices[l][exit];
        portal_choices[l - 1] = entry;
        exit = entry;
    }
    Ok(StitchedPlan {
        portal_choices,
        total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const INF: f64 = f64::INFINITY;

    #[test]
    fn single_leg_direct() {
        let leg = LegMatrix::new(vec![vec![42.0]]).unwrap();
        let plan = stitch_legs(&[leg]).unwrap();
        assert_eq!(plan.total_cost, 42.0);
        assert!(plan.portal_choices.is_empty());
    }

    #[test]
    fn picks_globally_best_not_greedy() {
        // Greedy would exit leg 0 via portal 0 (cost 10 < 20), but
        // portal 0 leads to an expensive leg 1.
        let leg0 = LegMatrix::new(vec![vec![10.0, 20.0]]).unwrap();
        let leg1 = LegMatrix::new(vec![vec![100.0], vec![5.0]]).unwrap();
        let plan = stitch_legs(&[leg0, leg1]).unwrap();
        assert_eq!(plan.total_cost, 25.0);
        assert_eq!(plan.portal_choices, vec![1]);
    }

    #[test]
    fn three_legs_chain() {
        let leg0 = LegMatrix::new(vec![vec![1.0, 4.0]]).unwrap();
        let leg1 = LegMatrix::new(vec![vec![10.0, 2.0], vec![1.0, 20.0]]).unwrap();
        let leg2 = LegMatrix::new(vec![vec![3.0], vec![1.0]]).unwrap();
        let plan = stitch_legs(&[leg0, leg1, leg2]).unwrap();
        // Best: 1.0 (→p0) + 2.0 (p0→p1) + 1.0 (p1→dest) = 4.0.
        assert_eq!(plan.total_cost, 4.0);
        assert_eq!(plan.portal_choices, vec![0, 1]);
    }

    #[test]
    fn unreachable_portals_skipped() {
        let leg0 = LegMatrix::new(vec![vec![INF, 7.0]]).unwrap();
        let leg1 = LegMatrix::new(vec![vec![1.0], vec![2.0]]).unwrap();
        let plan = stitch_legs(&[leg0, leg1]).unwrap();
        assert_eq!(plan.total_cost, 9.0);
        assert_eq!(plan.portal_choices, vec![1]);
    }

    #[test]
    fn fully_blocked_is_no_path() {
        let leg0 = LegMatrix::new(vec![vec![INF, INF]]).unwrap();
        let leg1 = LegMatrix::new(vec![vec![1.0], vec![2.0]]).unwrap();
        assert_eq!(stitch_legs(&[leg0, leg1]), Err(RouteError::NoPath));
    }

    #[test]
    fn shape_validation() {
        assert!(LegMatrix::new(vec![]).is_err());
        assert!(LegMatrix::new(vec![vec![1.0], vec![]]).is_err());
        assert!(stitch_legs(&[]).is_err());
        // First leg with two entries is invalid.
        let bad_first = LegMatrix::new(vec![vec![1.0], vec![2.0]]).unwrap();
        let last = LegMatrix::new(vec![vec![1.0]]).unwrap();
        assert!(stitch_legs(&[bad_first.clone(), last.clone()]).is_err());
        // Mismatched interface sizes.
        let leg0 = LegMatrix::new(vec![vec![1.0, 2.0, 3.0]]).unwrap();
        let leg1 = LegMatrix::new(vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            stitch_legs(&[leg0, leg1]),
            Err(RouteError::BadStitchInput(_))
        ));
    }

    #[test]
    fn many_portals_scales() {
        // 5 legs with 20 portals each; DP should handle instantly and
        // find the planted cheap chain (portal k on every boundary).
        let k = 13usize;
        let n = 20usize;
        let mut legs = Vec::new();
        legs.push(
            LegMatrix::new(vec![(0..n)
                .map(|j| if j == k { 1.0 } else { 50.0 })
                .collect()])
            .unwrap(),
        );
        for _ in 0..3 {
            let mut m = vec![vec![100.0; n]; n];
            for (i, row) in m.iter_mut().enumerate() {
                for (j, cell) in row.iter_mut().enumerate() {
                    if i == k && j == k {
                        *cell = 1.0;
                    }
                }
            }
            legs.push(LegMatrix::new(m).unwrap());
        }
        legs.push(
            LegMatrix::new(
                (0..n)
                    .map(|i| vec![if i == k { 1.0 } else { 50.0 }])
                    .collect(),
            )
            .unwrap(),
        );
        let plan = stitch_legs(&legs).unwrap();
        assert_eq!(plan.total_cost, 5.0);
        assert!(plan.portal_choices.iter().all(|&c| c == k));
    }
}
