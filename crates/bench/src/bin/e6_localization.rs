//! E6 — paper §2/paper §5.2: indoor localization requires the venue's map server;
//! client-side fusion with dead reckoning picks the best of both.
//!
//! Walks outdoor→indoor traces and scores, per technology:
//! availability and error. Sweeps beacon density.
//!
//! `cargo run --release -p openflame-bench --bin e6_localization`

use openflame_bench::{header, mean, percentile, row};
use openflame_geo::Point2;
use openflame_localize::{GnssModel, ParticleFilter, RadioMap};
use openflame_worldgen::{WalkTrace, World, WorldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header(
        "E6",
        "localization: GNSS dies at the door; venue beacons take over; fusion smooths",
    );
    println!("--- availability and error along outdoor→indoor walks ---\n");
    row(&[
        "technology".into(),
        "outdoor avail".into(),
        "indoor avail".into(),
        "p50 err m".into(),
        "p95 err m".into(),
    ]);
    let world = World::generate(WorldConfig::default());
    let mut rng = StdRng::seed_from_u64(8);
    let gnss = GnssModel::default();
    let mut gnss_errs = Vec::new();
    let mut beacon_errs = Vec::new();
    let mut fused_errs = Vec::new();
    let (mut gnss_out, mut gnss_in, mut beacon_in, mut out_total, mut in_total) =
        (0usize, 0usize, 0usize, 0usize, 0usize);
    for venue_idx in 0..world.venues.len() {
        let venue = &world.venues[venue_idx];
        let radio = RadioMap::survey(
            venue.beacons.clone(),
            Point2::new(-5.0, -5.0),
            Point2::new(60.0, 45.0),
            2.0,
        );
        let trace = WalkTrace::into_venue(&world, venue_idx, 70.0);
        // Fusion runs in the venue frame once indoors.
        let mut pf: Option<ParticleFilter> = None;
        let mut prev_local: Option<Point2> = None;
        for sample in &trace.samples {
            if sample.indoors {
                in_total += 1;
                let (_, local) = sample.venue_local.unwrap();
                if gnss.sample(&mut rng, sample.geo, true).is_some() {
                    gnss_in += 1;
                }
                let cue = radio.observe(&mut rng, local, 3.0);
                if let Some(est) = radio.localize(&cue, 4) {
                    beacon_in += 1;
                    beacon_errs.push(est.pos.distance(local));
                    // Fusion: particle filter over odometry + estimates.
                    let filter = pf.get_or_insert_with(|| {
                        ParticleFilter::new(&mut rng, 300, est.pos, est.error_m)
                    });
                    if let Some(prev) = prev_local {
                        filter.predict(&mut rng, local - prev, 0.3);
                    }
                    filter.update(&mut rng, &est);
                    fused_errs.push(filter.mean().distance(local));
                }
                prev_local = Some(local);
            } else {
                out_total += 1;
                if let Some(openflame_localize::LocationCue::Gnss { fix, .. }) =
                    gnss.sample(&mut rng, sample.geo, false)
                {
                    gnss_out += 1;
                    gnss_errs.push(fix.haversine_distance(sample.geo));
                }
            }
        }
    }
    let pct = |n: usize, d: usize| format!("{:.0}%", 100.0 * n as f64 / d.max(1) as f64);
    row(&[
        "gnss".into(),
        pct(gnss_out, out_total),
        pct(gnss_in, in_total),
        format!("{:.1}", percentile(&mut gnss_errs.clone(), 50.0)),
        format!("{:.1}", percentile(&mut gnss_errs, 95.0)),
    ]);
    row(&[
        "venue beacons".into(),
        "0%".into(),
        pct(beacon_in, in_total),
        format!("{:.1}", percentile(&mut beacon_errs.clone(), 50.0)),
        format!("{:.1}", percentile(&mut beacon_errs, 95.0)),
    ]);
    row(&[
        "fused (PF+IMU)".into(),
        "-".into(),
        pct(beacon_in, in_total),
        format!("{:.1}", percentile(&mut fused_errs.clone(), 50.0)),
        format!("{:.1}", percentile(&mut fused_errs, 95.0)),
    ]);

    println!("\n--- indoor error vs beacon density ---\n");
    row(&[
        "beacons/store".into(),
        "p50 err m".into(),
        "p95 err m".into(),
    ]);
    for beacons in [2usize, 4, 6, 9, 12] {
        let world = World::generate(WorldConfig {
            beacons_per_store: beacons,
            stores: 6,
            ..WorldConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(80 + beacons as u64);
        let mut errs = Vec::new();
        for venue in &world.venues {
            let radio = RadioMap::survey(
                venue.beacons.clone(),
                Point2::new(-5.0, -5.0),
                Point2::new(60.0, 45.0),
                2.0,
            );
            for _ in 0..40 {
                use rand::Rng;
                let truth = Point2::new(rng.gen_range(2.0..30.0), rng.gen_range(2.0..18.0));
                let cue = radio.observe(&mut rng, truth, 3.0);
                if let Some(est) = radio.localize(&cue, 4) {
                    errs.push(est.pos.distance(truth));
                }
            }
        }
        row(&[
            format!("{beacons}"),
            format!("{:.1}", percentile(&mut errs.clone(), 50.0)),
            format!("{:.1}", percentile(&mut errs, 95.0)),
        ]);
        let _ = mean(&errs);
    }
    println!(
        "\npaper claim (paper §2): GPS availability \"is limited to outdoor\n\
         locations\"; the venue's own localization service covers indoors.\n\
         Expected shape: GNSS indoor availability 0%; beacon indoor\n\
         availability ~100% with meter-level error improving with density;\n\
         fusion ≤ raw beacon error."
    );
}
