//! Classic base-32 geohash, the comparison baseline for experiment E11.
//!
//! Geohash decomposes the lat/lng rectangle by alternating longitude and
//! latitude bisection, five bits per character. Unlike the cube-face
//! cells, geohash rectangles become elongated away from the equator and
//! their area varies with latitude, which is exactly the deficiency the
//! covering ablation quantifies.

use crate::CellError;
use openflame_geo::{BBox, LatLng};

/// The geohash base-32 alphabet.
const ALPHABET: &[u8; 32] = b"0123456789bcdefghjkmnpqrstuvwxyz";

/// Maximum supported geohash length.
pub const MAX_GEOHASH_LEN: usize = 12;

/// Encodes a coordinate as a geohash of `len` characters.
///
/// # Examples
///
/// ```
/// use openflame_cells::geohash;
/// use openflame_geo::LatLng;
///
/// let h = geohash::encode(LatLng::new(57.64911, 10.40744).unwrap(), 11).unwrap();
/// assert_eq!(h, "u4pruydqqvj");
/// ```
pub fn encode(p: LatLng, len: usize) -> Result<String, CellError> {
    if len == 0 || len > MAX_GEOHASH_LEN {
        return Err(CellError::ParseError(format!(
            "geohash length {len} out of range"
        )));
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lng_lo, mut lng_hi) = (-180.0f64, 180.0f64);
    let mut hash = String::with_capacity(len);
    let mut bits = 0u8;
    let mut ch = 0usize;
    let mut even = true;
    while hash.len() < len {
        if even {
            let mid = (lng_lo + lng_hi) / 2.0;
            if p.lng() >= mid {
                ch = ch * 2 + 1;
                lng_lo = mid;
            } else {
                ch *= 2;
                lng_hi = mid;
            }
        } else {
            let mid = (lat_lo + lat_hi) / 2.0;
            if p.lat() >= mid {
                ch = ch * 2 + 1;
                lat_lo = mid;
            } else {
                ch *= 2;
                lat_hi = mid;
            }
        }
        even = !even;
        bits += 1;
        if bits == 5 {
            hash.push(ALPHABET[ch] as char);
            bits = 0;
            ch = 0;
        }
    }
    Ok(hash)
}

/// Decodes a geohash to its bounding rectangle.
pub fn decode_bbox(hash: &str) -> Result<BBox, CellError> {
    if hash.is_empty() || hash.len() > MAX_GEOHASH_LEN {
        return Err(CellError::ParseError(format!(
            "geohash {hash:?} length invalid"
        )));
    }
    let (mut lat_lo, mut lat_hi) = (-90.0f64, 90.0f64);
    let (mut lng_lo, mut lng_hi) = (-180.0f64, 180.0f64);
    let mut even = true;
    for c in hash.bytes() {
        let idx = ALPHABET
            .iter()
            .position(|&a| a == c.to_ascii_lowercase())
            .ok_or_else(|| CellError::ParseError(format!("bad geohash char {:?}", c as char)))?;
        for bit in (0..5).rev() {
            let set = (idx >> bit) & 1 == 1;
            if even {
                let mid = (lng_lo + lng_hi) / 2.0;
                if set {
                    lng_lo = mid;
                } else {
                    lng_hi = mid;
                }
            } else {
                let mid = (lat_lo + lat_hi) / 2.0;
                if set {
                    lat_lo = mid;
                } else {
                    lat_hi = mid;
                }
            }
            even = !even;
        }
    }
    BBox::new(lat_lo, lat_hi, lng_lo, lng_hi)
        .map_err(|e| CellError::ParseError(format!("decoded degenerate bbox: {e}")))
}

/// Decodes a geohash to its center point.
pub fn decode(hash: &str) -> Result<LatLng, CellError> {
    Ok(decode_bbox(hash)?.center())
}

/// Covers a rectangle with geohashes of exactly `len` characters.
///
/// Enumerates the grid of hash rectangles overlapping `region`. Returns
/// an error if the covering would exceed `max_cells`.
pub fn covering(region: &BBox, len: usize, max_cells: usize) -> Result<Vec<String>, CellError> {
    if len == 0 || len > MAX_GEOHASH_LEN {
        return Err(CellError::ParseError(format!(
            "geohash length {len} out of range"
        )));
    }
    // Cell sizes in degrees for this hash length.
    let lng_bits = (5 * len).div_ceil(2);
    let lat_bits = 5 * len / 2;
    let dlng = 360.0 / (1u64 << lng_bits) as f64;
    let dlat = 180.0 / (1u64 << lat_bits) as f64;
    let mut out = Vec::new();
    // Snap the scan origin to the geohash grid so every overlapping hash
    // rectangle is visited exactly once.
    let lat0 = ((region.lat_lo() + 90.0) / dlat).floor() * dlat - 90.0;
    let lng0 = ((region.lng_lo() + 180.0) / dlng).floor() * dlng - 180.0;
    let mut lat = lat0;
    while lat < region.lat_hi() {
        let mut lng = lng0;
        while lng < region.lng_hi() {
            let p = LatLng::new_unchecked((lat + dlat / 2.0).clamp(-90.0, 90.0), lng + dlng / 2.0);
            let h = encode(p, len)?;
            let hb = decode_bbox(&h)?;
            if hb.intersects(region) && !out.contains(&h) {
                out.push(h);
                if out.len() > max_cells {
                    return Err(CellError::ParseError(format!(
                        "covering exceeds {max_cells} cells"
                    )));
                }
            }
            lng += dlng;
        }
        lat += dlat;
    }
    Ok(out)
}

/// Ground dimensions `(width_m, height_m)` of geohash rectangles of
/// length `len` at latitude `lat_deg`.
pub fn cell_dimensions_m(len: usize, lat_deg: f64) -> (f64, f64) {
    let lng_bits = (5 * len).div_ceil(2);
    let lat_bits = 5 * len / 2;
    let dlng = 360.0 / (1u64 << lng_bits) as f64;
    let dlat = 180.0 / (1u64 << lat_bits) as f64;
    (
        dlng * 111_320.0 * lat_deg.to_radians().cos(),
        dlat * 111_320.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical example from the original geohash description.
        let p = LatLng::new(57.64911, 10.40744).unwrap();
        assert_eq!(encode(p, 11).unwrap(), "u4pruydqqvj");
    }

    #[test]
    fn encode_decode_round_trip() {
        for &(lat, lng) in &[
            (40.4433, -79.9436),
            (0.0, 0.0),
            (-33.86, 151.21),
            (80.0, -170.0),
        ] {
            let p = LatLng::new(lat, lng).unwrap();
            for len in [4usize, 6, 8, 10] {
                let h = encode(p, len).unwrap();
                let bb = decode_bbox(&h).unwrap();
                assert!(bb.contains(p), "hash {h} lost its point");
                let back = decode(&h).unwrap();
                // Error bounded by half the cell diagonal.
                let (w, hgt) = cell_dimensions_m(len, lat);
                assert!(back.haversine_distance(p) <= (w + hgt), "len {len}");
            }
        }
    }

    #[test]
    fn prefix_is_coarser_container() {
        let p = LatLng::new(40.4433, -79.9436).unwrap();
        let h8 = encode(p, 8).unwrap();
        let h4: String = h8.chars().take(4).collect();
        let bb8 = decode_bbox(&h8).unwrap();
        let bb4 = decode_bbox(&h4).unwrap();
        assert!(bb4.contains_bbox(&bb8));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(encode(LatLng::new(0.0, 0.0).unwrap(), 0).is_err());
        assert!(encode(LatLng::new(0.0, 0.0).unwrap(), 13).is_err());
        assert!(decode_bbox("").is_err());
        assert!(decode_bbox("ab!c").is_err());
        // 'a' is not in the geohash alphabet.
        assert!(decode_bbox("a").is_err());
    }

    #[test]
    fn covering_covers_region() {
        let region = BBox::new(40.42, 40.46, -79.97, -79.91).unwrap();
        let hashes = covering(&region, 5, 512).unwrap();
        assert!(!hashes.is_empty());
        // Sample interior points.
        for i in 0..10 {
            for j in 0..10 {
                let p = LatLng::new_unchecked(
                    40.42 + 0.04 * (i as f64 + 0.5) / 10.0,
                    -79.97 + 0.06 * (j as f64 + 0.5) / 10.0,
                );
                assert!(
                    hashes.iter().any(|h| decode_bbox(h).unwrap().contains(p)),
                    "uncovered {p}"
                );
            }
        }
    }

    #[test]
    fn covering_respects_cap() {
        let region = BBox::new(40.0, 41.0, -80.0, -79.0).unwrap();
        assert!(
            covering(&region, 7, 16).is_err(),
            "a degree square at len 7 is way over 16 cells"
        );
    }

    #[test]
    fn dimensions_shrink_with_length() {
        let (w5, h5) = cell_dimensions_m(5, 40.0);
        let (w6, h6) = cell_dimensions_m(6, 40.0);
        assert!(w6 < w5 && h6 < h5);
        // Length 5 cells are on the order of a few kilometers.
        assert!(w5 > 1_000.0 && w5 < 10_000.0);
    }

    #[test]
    fn aspect_ratio_distorts_at_high_latitude() {
        // The flaw the ablation measures: near the poles geohash cells
        // become extremely wide relative to their height (or vice versa).
        let (w_eq, h_eq) = cell_dimensions_m(6, 0.0);
        let (w_hi, _h_hi) = cell_dimensions_m(6, 75.0);
        let eq_ratio = w_eq / h_eq;
        let hi_ratio = w_hi / h_eq;
        assert!((hi_ratio / eq_ratio - 75.0f64.to_radians().cos()).abs() < 0.01);
    }
}
