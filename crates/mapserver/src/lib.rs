//! The OpenFLAME map server (paper §3 of the paper).
//!
//! "A map server is a system that stores the map of a region and
//! provides services such as search and routing on the map. The
//! usefulness of a map server is determined by the services it
//! implements. It can also impose fine-grained security and privacy
//! policies on users and applications."
//!
//! A [`MapServer`] owns one [`MapDocument`](openflame_mapdata::MapDocument)
//! and builds every service engine over it:
//!
//! - forward/reverse geocoding (`openflame-geocode`),
//! - location-based search (`openflame-search`),
//! - routing with portal cost matrices (`openflame-routing`),
//! - localization from beacon/tag/GNSS cues (`openflame-localize`),
//! - tile rendering for anchored maps (`openflame-tiles`).
//!
//! Requests arrive over the simulated network as wire-encoded
//! [`Envelope`]s; every request passes the paper §5.3 [`AccessPolicy`] before
//! dispatch. [`naming`] defines the cell→domain-name scheme and
//! [`registry`] registers the server's zone covering in the DNS.

pub mod acl;
pub mod naming;
pub mod protocol;
pub mod registry;
pub mod server;

pub use acl::{AccessPolicy, Principal, Rule, ServiceKind};
pub use protocol::{CoverageExtent, CoverageSummary, Envelope, Request, Response};
pub use server::{MapServer, MapServerConfig, ServerStats};

/// Errors produced by map-server operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The principal is not allowed to use the service.
    AccessDenied {
        /// The denied service.
        service: ServiceKind,
    },
    /// The requested service is not offered by this server.
    NotOffered(ServiceKind),
    /// The request could not be satisfied.
    Failed(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::AccessDenied { service } => write!(f, "access denied to {service:?}"),
            ServerError::NotOffered(s) => write!(f, "service {s:?} not offered"),
            ServerError::Failed(msg) => write!(f, "request failed: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}
