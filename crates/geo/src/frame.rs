//! Local east-north-up tangent frames.
//!
//! Indoor maps in OpenFLAME are authored in a metric local frame whose
//! relationship to the geographic frame may be unknown or imprecise (paper §3 of
//! the paper). [`LocalFrame`] provides the exact conversion used for
//! ground truth and for servers that *are* well aligned; deliberately
//! misaligned frames are produced by composing a [`crate::Affine2`]
//! perturbation on top (see `worldgen`).

use crate::{LatLng, Point2, EARTH_RADIUS_M};

/// An east-north-up tangent plane anchored at an origin coordinate.
///
/// Within a few kilometers of the origin the equirectangular small-angle
/// approximation used here is accurate to centimeters, far finer than any
/// service in the system requires.
///
/// # Examples
///
/// ```
/// use openflame_geo::{LatLng, LocalFrame};
///
/// let frame = LocalFrame::new(LatLng::new(40.4433, -79.9436).unwrap());
/// let p = frame.to_local(frame.origin().destination(90.0, 100.0));
/// assert!((p.x - 100.0).abs() < 0.01 && p.y.abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalFrame {
    origin: LatLng,
    cos_lat: f64,
}

impl LocalFrame {
    /// Creates a frame anchored at `origin`.
    pub fn new(origin: LatLng) -> Self {
        Self {
            origin,
            cos_lat: origin.lat_rad().cos(),
        }
    }

    /// The anchor point of the frame.
    pub fn origin(&self) -> LatLng {
        self.origin
    }

    /// Projects a geodetic coordinate into the local frame, meters east
    /// and north of the origin.
    pub fn to_local(&self, p: LatLng) -> Point2 {
        let dlat = (p.lat() - self.origin.lat()).to_radians();
        let dlng = (p.lng() - self.origin.lng()).to_radians();
        Point2::new(dlng * self.cos_lat * EARTH_RADIUS_M, dlat * EARTH_RADIUS_M)
    }

    /// Lifts a local point back to geodetic coordinates.
    pub fn from_local(&self, p: Point2) -> LatLng {
        let dlat = (p.y / EARTH_RADIUS_M).to_degrees();
        let dlng = (p.x / (EARTH_RADIUS_M * self.cos_lat)).to_degrees();
        LatLng::new_unchecked(self.origin.lat() + dlat, self.origin.lng() + dlng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> LocalFrame {
        LocalFrame::new(LatLng::new(40.4433, -79.9436).unwrap())
    }

    #[test]
    fn origin_maps_to_zero() {
        let f = frame();
        let p = f.to_local(f.origin());
        assert!(p.norm() < 1e-9);
        assert!(f.from_local(Point2::ZERO).haversine_distance(f.origin()) < 1e-9);
    }

    #[test]
    fn axes_point_east_and_north() {
        let f = frame();
        let east = f.to_local(f.origin().destination(90.0, 250.0));
        assert!(
            (east.x - 250.0).abs() < 0.05 && east.y.abs() < 0.05,
            "east {east}"
        );
        let north = f.to_local(f.origin().destination(0.0, 250.0));
        assert!(
            (north.y - 250.0).abs() < 0.05 && north.x.abs() < 0.05,
            "north {north}"
        );
    }

    #[test]
    fn round_trip_within_millimeters() {
        let f = frame();
        for &(x, y) in &[
            (0.0, 0.0),
            (120.0, -45.0),
            (-900.0, 300.0),
            (2_000.0, 2_000.0),
        ] {
            let p = Point2::new(x, y);
            let q = f.to_local(f.from_local(p));
            assert!(p.distance(q) < 1e-3, "{p} -> {q}");
        }
    }

    #[test]
    fn distances_preserved_locally() {
        let f = frame();
        let a = f.origin().destination(37.0, 400.0);
        let b = f.origin().destination(210.0, 650.0);
        let geo_d = a.haversine_distance(b);
        let loc_d = f.to_local(a).distance(f.to_local(b));
        assert!((geo_d - loc_d).abs() < 0.5, "geo {geo_d} local {loc_d}");
    }
}
