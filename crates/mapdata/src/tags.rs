//! Free-form key/value metadata attached to map elements.

use std::collections::BTreeMap;

/// An ordered key → value tag map.
///
/// Tags carry all element semantics, exactly as in OpenStreetMap: a way
/// with `highway=residential` is a street, a node with `shop=grocery` is
/// a store, a shelf node in an indoor map might carry
/// `product=seaweed, flavor=wasabi`. Ordering is deterministic
/// (`BTreeMap`) so encodings and iteration are reproducible.
///
/// # Examples
///
/// ```
/// use openflame_mapdata::Tags;
///
/// let tags = Tags::new()
///     .with("amenity", "restaurant")
///     .with("name", "Primanti Bros");
/// assert_eq!(tags.get("amenity"), Some("restaurant"));
/// assert!(tags.has("name"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tags {
    entries: BTreeMap<String, String>,
}

impl Tags {
    /// Creates an empty tag set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.insert(key, value);
        self
    }

    /// Inserts or replaces a tag, returning the previous value.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.entries.insert(key.into(), value.into())
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Whether `key` is present.
    pub fn has(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Whether `key` is present with exactly `value`.
    pub fn is(&self, key: &str, value: &str) -> bool {
        self.get(key) == Some(value)
    }

    /// Removes a tag, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.entries.remove(key)
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no tags.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The element's display name (`name` tag), if any.
    pub fn name(&self) -> Option<&str> {
        self.get("name")
    }
}

impl FromIterator<(String, String)> for Tags {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Tags {
    type Item = (&'a String, &'a String);
    type IntoIter = std::collections::btree_map::Iter<'a, String, String>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = Tags::new();
        assert!(t.is_empty());
        assert_eq!(t.insert("k", "v1"), None);
        assert_eq!(t.insert("k", "v2"), Some("v1".to_string()));
        assert_eq!(t.get("k"), Some("v2"));
        assert!(t.is("k", "v2"));
        assert!(!t.is("k", "v1"));
        assert_eq!(t.remove("k"), Some("v2".to_string()));
        assert!(t.get("k").is_none());
    }

    #[test]
    fn iteration_is_key_ordered() {
        let t = Tags::new().with("z", "1").with("a", "2").with("m", "3");
        let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn name_helper() {
        assert_eq!(Tags::new().name(), None);
        assert_eq!(Tags::new().with("name", "CMU").name(), Some("CMU"));
    }

    #[test]
    fn from_iterator() {
        let t: Tags = vec![("a".to_string(), "1".to_string())]
            .into_iter()
            .collect();
        assert_eq!(t.get("a"), Some("1"));
    }
}
