//! Backend parity: the federation behaves identically over the
//! deterministic network simulator, real loopback TCP sockets, and
//! QuicLite reliable datagrams.
//!
//! Three claims are enforced here:
//!
//! 1. **End-to-end equivalence** — the grocery scenario and the
//!    provider-parity service sweep run unchanged (same code, through
//!    `&dyn SpatialProvider`) on every backend.
//! 2. **Wire-discipline parity** — an identical warm-search workload
//!    costs exactly one batched envelope per discovered server (two
//!    messages: request + response) on EVERY backend, with identical
//!    message counts. This is `batch_bench`'s warm-search invariant,
//!    enforced across transports.
//! 3. **Failure parity** — endpoint-down and dropped-message injection
//!    surface as `ClientError::PartialFailure` with per-branch source
//!    errors preserved on every backend: never a panic, never a silent
//!    empty result. (On QuicLite, drop injection below the timeout is
//!    *recovered* by retransmission; only total loss fails — the
//!    dedicated recovery test pins that.)

use openflame_codec::{from_bytes, to_bytes};
use openflame_core::{
    run_grocery_scenario_on, CentralizedProvider, ClientError, Deployment, DeploymentConfig,
    LocalizeQuery, ProviderKind, RouteQuery, SearchQuery, Session, SpatialProvider, TileQuery,
};
use openflame_localize::LocationCue;
use openflame_mapserver::protocol::{Envelope, Request, Response};
use openflame_mapserver::Principal;
use openflame_netsim::{BackendKind, EndpointId, WireService};
use openflame_worldgen::{World, WorldConfig};
use std::error::Error;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BACKENDS: [BackendKind; 3] = [BackendKind::Sim, BackendKind::Tcp, BackendKind::QuicLite];

fn small_world() -> World {
    World::generate(WorldConfig {
        stores: 4,
        products_per_store: 10,
        ..WorldConfig::default()
    })
}

fn deployment_on(backend: BackendKind, world: World) -> Deployment {
    Deployment::build(
        world,
        DeploymentConfig {
            backend,
            ..DeploymentConfig::default()
        },
    )
}

#[test]
fn grocery_scenario_completes_on_every_backend() {
    let world = small_world();
    for backend in BACKENDS {
        let report =
            run_grocery_scenario_on(&world, ProviderKind::Federated, 3, 11, backend).unwrap();
        assert!(report.found_product, "{backend:?}: product must be found");
        assert!(
            report.route_reaches_shelf,
            "{backend:?}: route must reach the shelf"
        );
        assert!(report.route_length_m.unwrap() > 10.0, "{backend:?}");
        assert!(
            report.indoor_availability > 0.5,
            "{backend:?}: indoor localization mostly available"
        );
        assert!(report.messages > 0, "{backend:?}: traffic was counted");
    }
}

#[test]
fn every_service_runs_under_both_architectures_on_tcp() {
    // The provider-parity sweep, over real sockets: one federated and
    // one centralized provider, the same `&dyn SpatialProvider` flow.
    let world = World::generate(WorldConfig {
        stores: 1,
        products_per_store: 8,
        ..WorldConfig::default()
    });
    let dep = deployment_on(BackendKind::Tcp, world.clone());
    let omni = CentralizedProvider::omniscient_on(BackendKind::Tcp.build(5), &world);
    let product = world.products[0].clone();
    let near = world.venues[product.venue].hint;

    for provider in [&dep.client as &dyn SpatialProvider, &omni] {
        let id = provider.provider_id();
        let search = provider
            .search(SearchQuery {
                query: product.name.clone(),
                location: near,
                radius_m: 5_000.0,
                k: 3,
            })
            .unwrap();
        assert_eq!(search.hits[0].result.label, product.name, "{id}");
        assert!(search.stats.messages > 0, "{id}: real sockets were used");
        let route = provider
            .route(RouteQuery {
                from: near.destination(225.0, 80.0),
                target: search.hits[0].clone(),
            })
            .unwrap();
        assert!(route.route.total_length_m > 1.0, "{id}");
        let localize = provider
            .localize(LocalizeQuery {
                coarse: near,
                cues: vec![LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }],
            })
            .unwrap();
        assert!(
            localize
                .estimates
                .iter()
                .any(|e| e.estimate.technology == "gnss" && e.geo.is_some()),
            "{id}"
        );
        let tile = provider
            .tile(TileQuery {
                center: world.config.center,
                z: 16,
            })
            .unwrap();
        assert!(tile.tile.coverage() > 0.0, "{id}");
        let rev = provider
            .reverse_geocode(openflame_core::ReverseGeocodeQuery {
                location: world.config.center,
                radius_m: 100.0,
            })
            .unwrap();
        assert!(rev.hit.is_some(), "{id}");
    }
}

/// Warm-search wire cost on one backend: (transport messages, session
/// batch envelopes, discovered servers).
fn warm_search_cost(backend: BackendKind) -> (u64, u64, usize) {
    let dep = deployment_on(backend, small_world());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    // Warm the session: discovery and hellos are cached after this.
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let servers = dep.client.discover(near).unwrap();
    assert!(servers.len() >= 2, "need a federation to make the point");

    dep.transport.reset_stats();
    let batches_before = dep.client.session().stats().batches;
    dep.client.federated_search(&product.name, near, 3).unwrap();
    let messages = dep.transport.stats().messages;
    let batches = dep.client.session().stats().batches - batches_before;
    (messages, batches, servers.len())
}

#[test]
fn identical_warm_search_costs_identical_messages_on_every_backend() {
    let (sim_msgs, sim_batches, sim_servers) = warm_search_cost(BackendKind::Sim);
    // batch_bench's warm-search invariant, on each backend: exactly one
    // batched envelope per discovered server, two messages each, and
    // nothing else (no DNS, no hello traffic). Pipelining must reorder
    // waiting, never traffic.
    assert_eq!(sim_batches, sim_servers as u64);
    assert_eq!(sim_msgs, 2 * sim_servers as u64);
    for backend in [BackendKind::Tcp, BackendKind::QuicLite] {
        let (msgs, batches, servers) = warm_search_cost(backend);
        // Same world, same registrations: discovery agrees.
        assert_eq!(servers, sim_servers, "{backend:?}");
        assert_eq!(batches, servers as u64, "{backend:?}");
        assert_eq!(
            msgs, sim_msgs,
            "{backend:?}: identical workload must cost identical message counts"
        );
    }
}

#[test]
fn identical_cold_search_costs_identical_messages_on_every_backend() {
    // The cold path is where the pipelining lives: DNS referral walks
    // for primary + neighbor cells interleaved, the capability
    // handshake overlapped with the search round. None of that may
    // change WHAT goes on the wire — a fresh client's first search must
    // cost the same messages on the simulator, on real TCP, and on
    // QuicLite datagrams (whose handshakes, acks and retransmissions
    // are packet-level concerns, never message-level ones).
    let cold_cost = |backend: BackendKind| {
        let dep = deployment_on(backend, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        dep.transport.reset_stats();
        dep.client.federated_search(&product.name, near, 3).unwrap();
        dep.transport.stats().messages
    };
    let sim = cold_cost(BackendKind::Sim);
    assert!(sim > 0);
    for backend in [BackendKind::Tcp, BackendKind::QuicLite] {
        assert_eq!(
            sim,
            cold_cost(backend),
            "{backend:?}: cold search (DNS walks + hello round + search round) \
             must cost identical messages"
        );
    }
}

#[test]
fn quiclite_deployment_recovers_injected_loss_by_retransmission() {
    // The datagram backend's loss story, end to end: with a third of
    // all datagrams dropped, a warm federated search must still
    // SUCCEED (the RTO timer repairs every loss below the call
    // timeout) — where the stream backends surface the same injection
    // as a failed call. Only total loss fails on QuicLite, which the
    // shared failure-parity test exercises with p = 1.0.
    let quic = openflame_netsim::QuicLiteTransport::new(7);
    let dep = Deployment::build_on(
        std::sync::Arc::new(quic.clone()),
        small_world(),
        DeploymentConfig {
            backend: BackendKind::QuicLite,
            ..DeploymentConfig::default()
        },
    );
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    dep.client.federated_search(&product.name, near, 3).unwrap();
    // Baseline: a scheduler stall during the (loss-free) warm-up can
    // already have tripped the RTO timer; only retransmits *under
    // injection* count.
    let base_retransmits = quic.retransmits();
    let base_drops = dep.transport.stats().drops;
    dep.transport.set_drop_probability(0.3);
    // A handful of warm searches puts dozens of datagrams under the
    // 30% loss injection; every one must succeed, and the losses must
    // have been repaired by the RTO timer.
    let mut rounds = 0;
    while rounds < 5 && (rounds == 0 || quic.retransmits() == base_retransmits) {
        let hits = dep
            .client
            .federated_search(&product.name, near, 3)
            .expect("loss below the timeout must be recovered, not surfaced");
        assert!(hits.iter().any(|h| h.result.label == product.name));
        rounds += 1;
    }
    // A drop that hit an ack (rather than a data packet) is repaired
    // one RTO after the call already completed; give the timer a beat.
    let t0 = std::time::Instant::now();
    while quic.retransmits() == base_retransmits && t0.elapsed().as_millis() < 500 {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(
        quic.retransmits() > base_retransmits,
        "recovery must have used retransmission"
    );
    assert!(
        dep.transport.stats().drops > base_drops,
        "loss really was injected"
    );
    dep.transport.set_drop_probability(0.0);
}

/// A service that sheds its first `busy_first` envelopes with
/// `Response::Busy { retry_after_us: 500 }` and then answers every
/// batch item with a `Hello`-shaped reply. This is the cross-backend
/// probe for the overload protocol (wire-protocol.md spec §10): the
/// simulator installs no admission policy and never sheds on its own,
/// so Busy parity is driven through the service layer, where all three
/// backends must carry it identically.
fn busy_then_serve(busy_first: u64) -> Arc<dyn WireService> {
    let calls = Arc::new(AtomicU64::new(0));
    Arc::new(move |_from: EndpointId, payload: &[u8]| {
        if calls.fetch_add(1, Ordering::SeqCst) < busy_first {
            return to_bytes(&Response::Busy {
                retry_after_us: 500,
            })
            .to_vec();
        }
        let env: Envelope = from_bytes(payload).expect("well-formed envelope");
        let Request::Batch(items) = env.request else {
            panic!("sessions always batch");
        };
        let answers: Vec<Response> = items
            .iter()
            .map(|_| Response::PatchApplied { version: 1 })
            .collect();
        to_bytes(&Response::Batch(answers)).to_vec()
    })
}

#[test]
fn busy_sheds_behave_identically_on_every_backend() {
    for backend in BACKENDS {
        let transport = backend.build(21);
        let client = transport.register("busy-parity-client", None);
        let recovering = transport.register("recovering", None);
        transport.set_service(recovering, busy_then_serve(2));
        let wedged = transport.register("wedged", None);
        transport.set_service(wedged, busy_then_serve(u64::MAX));
        let session = Session::new(transport.clone(), client, Principal::anonymous());

        // Two sheds then success: absorbed by the session's retry loop,
        // invisible to the caller except through the stats.
        let responses = session.batch(recovering, vec![Request::Hello]).unwrap();
        assert_eq!(responses.len(), 1, "{backend:?}");
        let absorbed = session.stats();
        assert_eq!(absorbed.busy_rejections, 2, "{backend:?}");
        assert_eq!(absorbed.busy_retries, 2, "{backend:?}");
        assert_eq!(
            absorbed.batches, 1,
            "{backend:?}: retries are wire attempts, not new logical batches"
        );

        // A wedged server exhausts the retry budget and surfaces
        // Overloaded with the server's hint — same error, same stat
        // deltas, on every backend.
        let err = session.batch(wedged, vec![Request::Hello]).unwrap_err();
        assert_eq!(
            err,
            ClientError::Overloaded {
                retry_after_us: 500
            },
            "{backend:?}"
        );
        let exhausted = session.stats();
        assert_eq!(
            exhausted.busy_rejections - absorbed.busy_rejections,
            u64::from(openflame_core::BUSY_RETRY_BUDGET) + 1,
            "{backend:?}"
        );
        assert_eq!(
            exhausted.busy_retries - absorbed.busy_retries,
            u64::from(openflame_core::BUSY_RETRY_BUDGET),
            "{backend:?}"
        );

        // In a scatter round the exhausted branch fails alone: the
        // healthy sibling's result is delivered, the wedged branch
        // carries Overloaded.
        let results = session.batch_parallel(vec![
            (recovering, vec![Request::Hello]),
            (wedged, vec![Request::Hello]),
        ]);
        assert!(results[0].is_ok(), "{backend:?}");
        assert_eq!(
            results[1],
            Err(ClientError::Overloaded {
                retry_after_us: 500
            }),
            "{backend:?}"
        );
    }
}

/// Warm up a venue route, kill the venue server, route again: the
/// scatter round that needs the venue must report a PartialFailure
/// carrying the branch's source error.
fn endpoint_down_partial_failure(backend: BackendKind) -> ClientError {
    let dep = deployment_on(backend, small_world());
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;
    let hit = dep
        .client
        .federated_search(&product.name, near, 3)
        .unwrap()
        .into_iter()
        .find(|h| h.result.label == product.name)
        .expect("product is stocked");
    let user = near.destination(225.0, 80.0);
    // Warm route: caches (hello, discovery) are hot afterwards.
    dep.client.federated_route(user, &hit).unwrap();
    // The venue dies; the client's caches still point at it.
    dep.transport
        .set_down(dep.venue_servers[product.venue].endpoint(), true);
    dep.client
        .federated_route(user, &hit)
        .expect_err("routing into a dead venue cannot succeed")
}

#[test]
fn endpoint_down_surfaces_as_partial_failure_on_every_backend() {
    for backend in BACKENDS {
        let err = endpoint_down_partial_failure(backend);
        let ClientError::PartialFailure {
            succeeded,
            ref failures,
        } = err
        else {
            panic!("{backend:?}: expected PartialFailure, got {err}");
        };
        // The outdoor branch of the matrix round still succeeded; the
        // venue branch failed with its source preserved.
        assert_eq!(succeeded, 1, "{backend:?}");
        assert_eq!(failures.len(), 1, "{backend:?}");
        assert!(
            err.source().is_some(),
            "{backend:?}: source chain must be preserved"
        );
        assert!(
            failures[0].1.to_string().contains("down"),
            "{backend:?}: source names the dead endpoint, got {}",
            failures[0].1
        );
    }
}

#[test]
fn dropped_messages_surface_as_partial_failure_not_silent_empty() {
    for backend in BACKENDS {
        let dep = deployment_on(backend, small_world());
        let product = dep.world.products[0].clone();
        let near = dep.world.venues[product.venue].hint;
        // Warm caches so the drop injection hits the search fan-out
        // itself, not discovery.
        dep.client.federated_search(&product.name, near, 3).unwrap();
        dep.transport.set_timeout_us(50_000);
        dep.transport.set_drop_probability(1.0);
        let err = dep
            .client
            .federated_search(&product.name, near, 3)
            .expect_err("total packet loss cannot look like an empty result");
        let ClientError::PartialFailure {
            succeeded,
            ref failures,
        } = err
        else {
            panic!("{backend:?}: expected PartialFailure, got {err}");
        };
        assert_eq!(succeeded, 0, "{backend:?}");
        assert!(!failures.is_empty(), "{backend:?}");
        assert!(
            failures
                .iter()
                .all(|(_, e)| e.to_string().contains("timed out")),
            "{backend:?}: branch errors must carry the timeout source"
        );
        // Localization under total loss is an outage too, not an
        // honest "no coverage here".
        let loc_err = dep
            .client
            .federated_localize(
                near,
                &[LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }],
            )
            .expect_err("total packet loss cannot look like missing coverage");
        assert!(
            matches!(loc_err, ClientError::PartialFailure { succeeded: 0, .. }),
            "{backend:?}: expected PartialFailure, got {loc_err}"
        );
        // Recovery: lifting the injection restores service.
        dep.transport.set_drop_probability(0.0);
        assert!(dep.client.federated_search(&product.name, near, 3).is_ok());
    }
}
