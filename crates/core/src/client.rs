//! The OpenFLAME client: federated location-based services (§5.2).
//!
//! "In OpenFLAME, the client device first has to discover relevant map
//! servers and request the required services from these map servers,
//! stitching the results if required."

use crate::discovery::{DiscoveredServer, DiscoveryClient};
use crate::ClientError;
use openflame_codec::{from_bytes, to_bytes};
use openflame_dns::Resolver;
use openflame_geo::{LatLng, LocalFrame, Point2};
use openflame_localize::LocationCue;
use openflame_mapdata::{ElementId, NodeId};
use openflame_mapserver::protocol::{
    Envelope, HelloInfo, Request, Response, WireEstimate, WireGeocodeHit, WireRoute,
    WireSearchResult,
};
use openflame_mapserver::Principal;
use openflame_netsim::{EndpointId, SimNet};
use openflame_routing::{stitch_legs, LegMatrix};
use openflame_search::{fuse_ranked, SearchResult};
use openflame_tiles::{stitch::compose, Tile, TileCoord};
use std::sync::Arc;

/// A search hit with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedSearchHit {
    /// The server that returned the hit.
    pub server_id: String,
    /// The server's endpoint (for follow-up requests such as routing).
    pub endpoint: EndpointId,
    /// The hit itself (positions are in the *server's* frame).
    pub result: WireSearchResult,
}

/// One leg of a stitched route.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteLeg {
    /// The server whose map this leg crosses.
    pub server_id: String,
    /// The in-map route.
    pub route: WireRoute,
    /// Whether this leg's geometry is geo-anchored.
    pub anchored: bool,
}

/// An end-to-end route stitched from per-server legs (§5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedRoute {
    /// Legs in travel order.
    pub legs: Vec<RouteLeg>,
    /// Total cost, seconds.
    pub total_cost: f64,
    /// Total length, meters.
    pub total_length_m: f64,
    /// Number of map servers consulted while planning.
    pub servers_consulted: usize,
}

/// The OpenFLAME client device.
pub struct OpenFlameClient {
    net: SimNet,
    endpoint: EndpointId,
    discovery: DiscoveryClient,
    principal: Principal,
    expand_neighbors: bool,
}

impl OpenFlameClient {
    /// Creates a client on the network using `resolver` for discovery.
    pub fn new(net: &SimNet, resolver: Arc<Resolver>, principal: Principal) -> Self {
        let endpoint = net.register("openflame-client", None);
        Self {
            net: net.clone(),
            endpoint,
            discovery: DiscoveryClient::new(resolver),
            principal,
            expand_neighbors: true,
        }
    }

    /// The discovery layer.
    pub fn discovery(&self) -> &DiscoveryClient {
        &self.discovery
    }

    /// The client's network endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// Sets the identity attached to subsequent requests.
    pub fn set_principal(&mut self, principal: Principal) {
        self.principal = principal;
    }

    /// Enables or disables neighbor-cell expansion during discovery
    /// (ablation E12).
    pub fn set_expand_neighbors(&mut self, expand: bool) {
        self.expand_neighbors = expand;
    }

    /// Issues one request to one server.
    pub fn call(&self, to: EndpointId, request: Request) -> Result<Response, ClientError> {
        let env = Envelope {
            principal: self.principal.clone(),
            request,
        };
        let bytes = self
            .net
            .call(self.endpoint, to, to_bytes(&env).to_vec())
            .map_err(|e| ClientError::Network(e.to_string()))?;
        from_bytes::<Response>(&bytes).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Capability handshake with a server.
    pub fn hello(&self, to: EndpointId) -> Result<HelloInfo, ClientError> {
        match self.call(to, Request::Hello)? {
            Response::Hello(info) => Ok(info),
            other => Err(unexpected("Hello", &other)),
        }
    }

    /// Discovers map servers around a coarse location.
    pub fn discover(&self, location: LatLng) -> Result<Vec<DiscoveredServer>, ClientError> {
        self.discovery.discover(location, self.expand_neighbors)
    }

    // ----------------------------------------------------------------
    // Federated services (§5.2).
    // ----------------------------------------------------------------

    /// Federated location-based search: scatter to every discovered
    /// server, gather, and fuse rankings on the client.
    pub fn federated_search(
        &self,
        query: &str,
        location: LatLng,
        k: usize,
    ) -> Result<Vec<FederatedSearchHit>, ClientError> {
        let servers = self.discover(location)?;
        if servers.is_empty() {
            return Err(ClientError::NothingDiscovered(format!(
                "no servers near {location}"
            )));
        }
        let mut lists: Vec<Vec<SearchResult>> = Vec::new();
        let mut provenance: Vec<Vec<FederatedSearchHit>> = Vec::new();
        for server in &servers {
            // Anchored servers get a frame-local center so they can
            // distance-rank; unaligned venue maps are small, so their
            // whole extent is relevant (center unknown in their frame).
            let center = self
                .hello(server.endpoint)
                .ok()
                .and_then(|h| h.anchor)
                .map(|anchor| LocalFrame::new(anchor).to_local(location));
            let response = self.call(
                server.endpoint,
                Request::Search {
                    query: query.to_string(),
                    center,
                    radius_m: 2_000.0,
                    k: k as u32,
                },
            );
            let results = match response {
                Ok(Response::Search { results }) => results,
                // A server may deny search (§5.3) — skip it, the show
                // goes on with the rest of the federation.
                Ok(Response::Error { .. }) | Err(_) => continue,
                Ok(other) => return Err(unexpected("Search", &other)),
            };
            let mut list = Vec::with_capacity(results.len());
            let mut prov = Vec::with_capacity(results.len());
            for r in results {
                list.push(SearchResult {
                    element: r.element,
                    pos: r.pos,
                    text_score: r.score,
                    distance_m: r.distance_m,
                    score: r.score,
                    label: r.label.clone(),
                });
                prov.push(FederatedSearchHit {
                    server_id: server.server_id.clone(),
                    endpoint: server.endpoint,
                    result: r,
                });
            }
            lists.push(list);
            provenance.push(prov);
        }
        // Client-side rank fusion (§5.2: "the client would then rank
        // results from multiple map servers"). RRF merges the
        // heterogeneous per-server rankings; a client-side relevance
        // check against the query then dominates, so an exact match from
        // one store outranks a near-miss stocked in several (server
        // scores are not comparable, but the client can always score
        // returned labels against its own query).
        // Fuse without truncation: the final cut happens after the
        // relevance re-scoring, otherwise a large federation can crowd
        // the exact match out of the fused prefix.
        let fused = fuse_ranked(lists, usize::MAX);
        let mut out: Vec<(f64, FederatedSearchHit)> = Vec::with_capacity(fused.len());
        for f in fused {
            let source_list = &provenance[f.source];
            if let Some(hit) = source_list
                .iter()
                .find(|h| h.result.label == f.result.label && h.result.element == f.result.element)
            {
                let relevance = label_relevance(query, &hit.result.label);
                out.push((relevance * (1.0 + f.fused_score), hit.clone()));
            }
        }
        out.sort_by(|a, b| b.0.total_cmp(&a.0));
        out.truncate(k);
        Ok(out.into_iter().map(|(_, h)| h).collect())
    }

    /// Federated forward geocode: coarse lookup on the world provider,
    /// then refinement by servers discovered at the coarse location
    /// (§5.2).
    pub fn federated_geocode(
        &self,
        address: &str,
        world_provider: EndpointId,
        k: usize,
    ) -> Result<Vec<(String, WireGeocodeHit)>, ClientError> {
        // Step 1: coarse position from the world-map provider.
        let coarse = match self.call(
            world_provider,
            Request::Geocode {
                query: address.to_string(),
                k: 1,
            },
        )? {
            Response::Geocode { hits } => hits.into_iter().next(),
            other => return Err(unexpected("Geocode", &other)),
        };
        let Some(coarse_hit) = coarse else {
            return Err(ClientError::NotFound(format!(
                "no coarse geocode for {address:?}"
            )));
        };
        let anchor = self
            .hello(world_provider)?
            .anchor
            .ok_or_else(|| ClientError::Protocol("world provider must be anchored".into()))?;
        let coarse_geo = LocalFrame::new(anchor).from_local(coarse_hit.pos);
        // Step 2: fine geocode on the servers discovered there.
        let mut out = vec![("world".to_string(), coarse_hit)];
        for server in self.discover(coarse_geo)? {
            if server.endpoint == world_provider {
                continue;
            }
            if let Ok(Response::Geocode { hits }) = self.call(
                server.endpoint,
                Request::Geocode {
                    query: address.to_string(),
                    k: k as u32,
                },
            ) {
                for hit in hits {
                    out.push((server.server_id.clone(), hit));
                }
            }
        }
        out.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
        out.truncate(k);
        Ok(out)
    }

    /// Routes from a street position to a search result, stitching an
    /// outdoor leg and (if the target is in a venue) an indoor leg at
    /// the portal the §5.2 dynamic program selects.
    pub fn federated_route(
        &self,
        from: LatLng,
        target: &FederatedSearchHit,
    ) -> Result<FederatedRoute, ClientError> {
        let target_node = match target.result.element {
            ElementId::Node(n) => n,
            _ => {
                return Err(ClientError::NotFound(
                    "route targets must be node elements".into(),
                ))
            }
        };
        let target_hello = self.hello(target.endpoint)?;
        let mut servers_consulted = 1usize;
        if let Some(anchor) = target_hello.anchor {
            // Single anchored map covers both endpoints.
            let frame = LocalFrame::new(anchor);
            let from_node = self.nearest_node(target.endpoint, frame.to_local(from))?;
            let route = self.route_on(target.endpoint, from_node, target_node)?;
            return Ok(FederatedRoute {
                total_cost: route.cost,
                total_length_m: route.length_m,
                legs: vec![RouteLeg {
                    server_id: target.server_id.clone(),
                    route,
                    anchored: true,
                }],
                servers_consulted,
            });
        }
        // Venue target: outdoor leg to a portal, indoor leg to the node.
        if target_hello.portals.is_empty() {
            return Err(ClientError::NotFound(format!(
                "venue {} advertises no portals",
                target.server_id
            )));
        }
        // Find the outdoor provider covering the start.
        let outdoor = self
            .discover(from)?
            .into_iter()
            .filter(|s| s.endpoint != target.endpoint)
            .find_map(|s| {
                let hello = self.hello(s.endpoint).ok()?;
                hello.anchor.map(|anchor| (s, anchor))
            })
            .ok_or_else(|| ClientError::NothingDiscovered("no anchored outdoor provider".into()))?;
        servers_consulted += 1;
        let (outdoor_server, outdoor_anchor) = outdoor;
        let outdoor_frame = LocalFrame::new(outdoor_anchor);
        let from_node = self.nearest_node(outdoor_server.endpoint, outdoor_frame.to_local(from))?;
        // Outdoor-side portal nodes from the advertised geo hints.
        let mut outdoor_portals = Vec::with_capacity(target_hello.portals.len());
        for (_, hint) in &target_hello.portals {
            outdoor_portals
                .push(self.nearest_node(outdoor_server.endpoint, outdoor_frame.to_local(*hint))?);
        }
        let venue_portals: Vec<NodeId> = target_hello
            .portals
            .iter()
            .map(|(n, _)| NodeId(*n))
            .collect();
        // Cost matrices from both servers, then the stitching DP.
        let outdoor_matrix =
            self.route_matrix(outdoor_server.endpoint, &[from_node], &outdoor_portals)?;
        let venue_matrix = self.route_matrix(target.endpoint, &venue_portals, &[target_node])?;
        let plan = stitch_legs(&[
            LegMatrix::new(outdoor_matrix).map_err(|e| ClientError::Protocol(e.to_string()))?,
            LegMatrix::new(venue_matrix).map_err(|e| ClientError::Protocol(e.to_string()))?,
        ])
        .map_err(|e| ClientError::NotFound(format!("no stitched path: {e}")))?;
        let portal_idx = plan.portal_choices[0];
        // Fetch the actual legs for the chosen portal.
        let outdoor_route = self.route_on(
            outdoor_server.endpoint,
            from_node,
            outdoor_portals[portal_idx],
        )?;
        let venue_route = self.route_on(target.endpoint, venue_portals[portal_idx], target_node)?;
        Ok(FederatedRoute {
            total_cost: outdoor_route.cost + venue_route.cost,
            total_length_m: outdoor_route.length_m + venue_route.length_m,
            legs: vec![
                RouteLeg {
                    server_id: outdoor_server.server_id.clone(),
                    route: outdoor_route,
                    anchored: true,
                },
                RouteLeg {
                    server_id: target.server_id.clone(),
                    route: venue_route,
                    anchored: false,
                },
            ],
            servers_consulted,
        })
    }

    /// Federated localization: send each discovered server the cues its
    /// advertisement accepts, gather estimates, best (smallest error)
    /// first (§5.2).
    pub fn federated_localize(
        &self,
        coarse: LatLng,
        cues: &[LocationCue],
    ) -> Result<Vec<(String, WireEstimate)>, ClientError> {
        let servers = self.discover(coarse)?;
        let mut out: Vec<(String, WireEstimate)> = Vec::new();
        for server in servers {
            let matching: Vec<LocationCue> = cues
                .iter()
                .filter(|c| server.accepts_cue(c.technology()))
                .cloned()
                .collect();
            if matching.is_empty() {
                continue;
            }
            if let Ok(Response::Localize { estimates }) =
                self.call(server.endpoint, Request::Localize { cues: matching })
            {
                for e in estimates {
                    out.push((server.server_id.clone(), e));
                }
            }
        }
        out.sort_by(|a, b| a.1.error_m.total_cmp(&b.1.error_m));
        Ok(out)
    }

    /// Federated tiles: fetch the tile covering `center` at zoom `z`
    /// from every discovered anchored server and compose them (§5.2).
    pub fn federated_tile(&self, center: LatLng, z: u8) -> Result<Tile, ClientError> {
        let (x, y) = openflame_geo::Mercator::tile_for(center, z);
        let coord = TileCoord { z, x, y };
        let mut layers: Vec<Tile> = Vec::new();
        for server in self.discover(center)? {
            match self.call(server.endpoint, Request::GetTile { z, x, y }) {
                Ok(Response::Tile { rgb, .. }) => {
                    if let Some(tile) = Tile::from_rgb(coord, &rgb) {
                        layers.push(tile);
                    }
                }
                // Unaligned venues and denied servers simply don't
                // contribute a layer.
                Ok(_) | Err(_) => continue,
            }
        }
        if layers.is_empty() {
            return Err(ClientError::NothingDiscovered(format!(
                "no tile-serving providers near {center}"
            )));
        }
        let refs: Vec<&Tile> = layers.iter().collect();
        Ok(compose(&refs))
    }

    // ----------------------------------------------------------------
    // Single-server helpers.
    // ----------------------------------------------------------------

    /// Nearest routable node on a server.
    pub fn nearest_node(&self, to: EndpointId, pos: Point2) -> Result<NodeId, ClientError> {
        match self.call(to, Request::NearestNode { pos })? {
            Response::NearestNode {
                node: Some((id, _)),
            } => Ok(NodeId(id)),
            Response::NearestNode { node: None } => {
                Err(ClientError::NotFound("server has no routable nodes".into()))
            }
            other => Err(unexpected("NearestNode", &other)),
        }
    }

    /// Point-to-point route on one server.
    pub fn route_on(
        &self,
        to: EndpointId,
        from: NodeId,
        dest: NodeId,
    ) -> Result<WireRoute, ClientError> {
        match self.call(
            to,
            Request::Route {
                from: from.0,
                to: dest.0,
            },
        )? {
            Response::Route { route: Some(route) } => Ok(route),
            Response::Route { route: None } => {
                Err(ClientError::NotFound("no path on server".into()))
            }
            other => Err(unexpected("Route", &other)),
        }
    }

    /// Portal cost matrix from one server.
    pub fn route_matrix(
        &self,
        to: EndpointId,
        entries: &[NodeId],
        exits: &[NodeId],
    ) -> Result<Vec<Vec<f64>>, ClientError> {
        let request = Request::RouteMatrix {
            entries: entries.iter().map(|n| n.0).collect(),
            exits: exits.iter().map(|n| n.0).collect(),
        };
        match self.call(to, request)? {
            Response::RouteMatrix { costs } => Ok(costs),
            other => Err(unexpected("RouteMatrix", &other)),
        }
    }
}

/// Harmonic token-coverage relevance of a result label for a query
/// (same blend the geocoder uses): 1.0 for an exact token match, lower
/// when either side has unmatched tokens.
fn label_relevance(query: &str, label: &str) -> f64 {
    let q = openflame_geocode::tokenize(query);
    let l = openflame_geocode::tokenize(label);
    if q.is_empty() || l.is_empty() {
        return 0.0;
    }
    let matched = q.iter().filter(|t| l.contains(t)).count() as f64;
    if matched == 0.0 {
        return 0.0;
    }
    let qc = matched / q.len() as f64;
    let lc = matched / l.len() as f64;
    2.0 * qc * lc / (qc + lc)
}

fn unexpected(expected: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { code, message } => ClientError::Server {
            server_id: String::new(),
            code: *code,
            message: message.clone(),
        },
        other => ClientError::Protocol(format!("expected {expected}, got {other:?}")),
    }
}
