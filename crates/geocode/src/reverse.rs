//! Reverse geocoding: location → map elements.

use openflame_geo::{Point2, Polyline};
use openflame_mapdata::{ElementId, MapDocument, WayId};

/// A reverse-geocode result: the named element nearest a position.
#[derive(Debug, Clone, PartialEq)]
pub struct ReverseHit {
    /// The element found.
    pub element: ElementId,
    /// Its display name.
    pub label: String,
    /// Distance from the query position, meters.
    pub distance_m: f64,
}

/// A way-snapping result.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapHit {
    /// The way snapped to.
    pub way: WayId,
    /// The way's name, if any.
    pub label: Option<String>,
    /// The snapped point on the way.
    pub point: Point2,
    /// Distance from the query position to the snapped point.
    pub distance_m: f64,
    /// Arc length from the way's start to the snapped point.
    pub along_m: f64,
}

/// Finds the nearest *named* node within `radius_m` of `pos`.
///
/// This is the "what is here?" query behind click interactions (paper §4).
pub fn reverse_geocode(map: &MapDocument, pos: Point2, radius_m: f64) -> Option<ReverseHit> {
    map.nodes_within(pos, radius_m)
        .into_iter()
        .filter_map(|n| {
            n.tags.name().map(|name| ReverseHit {
                element: ElementId::Node(n.id),
                label: name.to_string(),
                distance_m: n.pos.distance(pos),
            })
        })
        .min_by(|a, b| a.distance_m.total_cmp(&b.distance_m))
}

/// Snaps `pos` to the nearest way (of any tag set for which `usable`
/// returns true) within `radius_m`.
///
/// This is the primitive behind "snapping raw GPS coordinates to roads
/// on the map while navigating" (paper §4).
pub fn snap_to_way(
    map: &MapDocument,
    pos: Point2,
    radius_m: f64,
    usable: impl Fn(&openflame_mapdata::Way) -> bool,
) -> Option<SnapHit> {
    let mut best: Option<SnapHit> = None;
    for way in map.ways() {
        if !usable(way) {
            continue;
        }
        let Some(geometry) = map.way_geometry(way.id) else {
            continue;
        };
        if geometry.len() < 2 {
            continue;
        }
        // Cheap bbox rejection before the exact projection.
        let (min_x, max_x) = geometry
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.x), hi.max(p.x))
            });
        let (min_y, max_y) = geometry
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.y), hi.max(p.y))
            });
        if pos.x < min_x - radius_m
            || pos.x > max_x + radius_m
            || pos.y < min_y - radius_m
            || pos.y > max_y + radius_m
        {
            continue;
        }
        let line = Polyline::new(geometry).expect("length checked");
        let proj = line.project(pos);
        if proj.distance <= radius_m && best.as_ref().is_none_or(|b| proj.distance < b.distance_m) {
            best = Some(SnapHit {
                way: way.id,
                label: way.tags.name().map(str::to_string),
                point: proj.point,
                distance_m: proj.distance,
                along_m: proj.along,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_mapdata::{GeoReference, Tags};

    fn sample_map() -> MapDocument {
        let mut map = MapDocument::new("r", "t", GeoReference::Unaligned { hint: None });
        map.add_node(Point2::new(0.0, 0.0), Tags::new().with("name", "Fountain"));
        map.add_node(Point2::new(50.0, 0.0), Tags::new().with("name", "Kiosk"));
        map.add_node(Point2::new(10.0, 0.0), Tags::new()); // unnamed
        let a = map.add_node(Point2::new(0.0, 20.0), Tags::new());
        let b = map.add_node(Point2::new(100.0, 20.0), Tags::new());
        map.add_way(
            vec![a, b],
            Tags::new()
                .with("highway", "residential")
                .with("name", "Fifth Ave"),
        )
        .unwrap();
        let c = map.add_node(Point2::new(0.0, 40.0), Tags::new());
        let d = map.add_node(Point2::new(100.0, 40.0), Tags::new());
        map.add_way(vec![c, d], Tags::new().with("highway", "footway"))
            .unwrap();
        map
    }

    #[test]
    fn finds_nearest_named_node() {
        let map = sample_map();
        let hit = reverse_geocode(&map, Point2::new(8.0, 1.0), 30.0).unwrap();
        assert_eq!(hit.label, "Fountain");
        assert!((hit.distance_m - (65.0f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn ignores_unnamed_even_if_closer() {
        let map = sample_map();
        // Query right on the unnamed node at (10, 0).
        let hit = reverse_geocode(&map, Point2::new(10.0, 0.0), 30.0).unwrap();
        assert_eq!(hit.label, "Fountain");
    }

    #[test]
    fn radius_limits_results() {
        let map = sample_map();
        assert!(reverse_geocode(&map, Point2::new(500.0, 500.0), 10.0).is_none());
    }

    #[test]
    fn snap_to_nearest_road() {
        let map = sample_map();
        // Between the two ways, slightly closer to Fifth Ave (y=20).
        let hit = snap_to_way(&map, Point2::new(50.0, 27.0), 50.0, |_| true).unwrap();
        assert_eq!(hit.label.as_deref(), Some("Fifth Ave"));
        assert_eq!(hit.point, Point2::new(50.0, 20.0));
        assert!((hit.distance_m - 7.0).abs() < 1e-9);
        assert!((hit.along_m - 50.0).abs() < 1e-9);
    }

    #[test]
    fn snap_filter_respected() {
        let map = sample_map();
        // Only footways allowed: must snap to y=40 even though y=20 is
        // closer.
        let hit = snap_to_way(&map, Point2::new(50.0, 27.0), 50.0, |w| {
            w.tags.is("highway", "footway")
        })
        .unwrap();
        assert!((hit.point.y - 40.0).abs() < 1e-9);
    }

    #[test]
    fn snap_beyond_radius_is_none() {
        let map = sample_map();
        assert!(snap_to_way(&map, Point2::new(50.0, 300.0), 50.0, |_| true).is_none());
    }

    #[test]
    fn snap_clamps_to_way_end() {
        let map = sample_map();
        let hit =
            snap_to_way(&map, Point2::new(130.0, 22.0), 50.0, |w| w.tags.has("name")).unwrap();
        assert_eq!(hit.point, Point2::new(100.0, 20.0));
        assert!((hit.along_m - 100.0).abs() < 1e-9);
    }
}
