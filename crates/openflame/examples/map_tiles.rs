//! Tile rendering and cross-frame stitching (paper §4 tile service + paper §5.2
//! MapCruncher-style alignment): renders the city, then overlays a
//! store's unaligned indoor map using a transform fitted from manual
//! correspondences, and writes PPM images.
//!
//! Run with: `cargo run --release --example map_tiles`
//! Output: `target/tiles/*.ppm`

use openflame_core::{Deployment, DeploymentConfig};
use openflame_geo::{Affine2, Mercator, Point2};
use openflame_tiles::stitch::{compose, render_unaligned_overlay};
use openflame_tiles::TileCoord;
use openflame_worldgen::{World, WorldConfig};
use std::fs;
use std::path::Path;

fn main() {
    let world = World::generate(WorldConfig::default());
    let dep = Deployment::build(world, DeploymentConfig::default());
    let out_dir = Path::new("target/tiles");
    fs::create_dir_all(out_dir).expect("create output directory");

    // 1. City tiles straight from the federation at three zooms.
    for z in [14u8, 15, 16] {
        let tile = dep
            .client
            .federated_tile(dep.world.config.center, z)
            .unwrap();
        let path = out_dir.join(format!("city_z{z}.ppm"));
        fs::write(&path, tile.to_ppm()).expect("write tile");
        println!(
            "wrote {} ({:.1}% painted)",
            path.display(),
            tile.coverage() * 100.0
        );
    }

    // 2. Cross-frame stitching: the venue's map lives in its own
    //    rotated frame. Fit the alignment from four manual
    //    correspondences (venue corner ↔ surveyed geo position), then
    //    overlay.
    let venue_idx = 0;
    let venue = &dep.world.venues[venue_idx];
    let truth = venue.true_transform;
    let corners = [
        Point2::new(0.0, 0.0),
        Point2::new(40.0, 0.0),
        Point2::new(40.0, 25.0),
        Point2::new(0.0, 25.0),
    ];
    let correspondences: Vec<(Point2, Point2)> =
        corners.iter().map(|&c| (c, truth.apply(c))).collect();
    let fitted = Affine2::fit_similarity(&correspondences).expect("four correspondences");
    println!(
        "\nfitted venue alignment: rotation {:.1}°, scale {:.3}, rms {:.4} m",
        fitted.rotation_angle().to_degrees(),
        fitted.uniform_scale(),
        fitted.rms_error(&correspondences)
    );

    let anchor = dep.world.config.center;
    let venue_geo = dep
        .world
        .venue_point_to_geo(venue_idx, Point2::new(20.0, 12.0));
    let z = 18u8;
    let (x, y) = Mercator::tile_for(venue_geo, z);
    let coord = TileCoord { z, x, y };
    let base = dep.client.federated_tile(venue_geo, z).unwrap();
    let overlay = render_unaligned_overlay(&venue.map, &fitted, anchor, coord);
    let stitched = compose(&[&base, &overlay]);
    let path = out_dir.join("venue_overlay_z18.ppm");
    fs::write(&path, stitched.to_ppm()).expect("write tile");
    println!(
        "wrote {} (base {:.1}%, with indoor overlay {:.1}%)",
        path.display(),
        base.coverage() * 100.0,
        stitched.coverage() * 100.0
    );
    println!("\nOpen the .ppm files with any image viewer (or convert with ImageMagick).");
}
