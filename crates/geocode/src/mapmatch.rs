//! Hidden-Markov-model map matching of GPS traces.
//!
//! Implements the Newson-Krumm style matcher behind commercial
//! map-matching APIs (paper refs. 19 and 21): each trace point emits
//! candidate snapped positions on nearby ways; a Viterbi pass picks the
//! candidate sequence that best balances GPS plausibility (emission)
//! against path plausibility (transition), using the standard
//! straight-line-difference transition approximation.

use openflame_geo::{Point2, Polyline};
use openflame_mapdata::{MapDocument, Way, WayId};

/// One matched trace point.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchedPoint {
    /// Index of the original trace point.
    pub trace_index: usize,
    /// The way matched to.
    pub way: WayId,
    /// Snapped position on that way.
    pub point: Point2,
    /// Distance from the raw fix to the snapped position.
    pub residual_m: f64,
}

#[derive(Debug, Clone)]
struct Candidate {
    way: WayId,
    point: Point2,
    residual: f64,
}

/// Matches a GPS `trace` against the ways of `map` for which `usable`
/// returns true.
///
/// `sigma_m` is the GPS noise scale (emission); `beta_m` the tolerance
/// for path-length disagreement (transition). Points with no candidate
/// within `search_radius_m` are skipped (left unmatched) rather than
/// breaking the chain.
pub fn mapmatch(
    map: &MapDocument,
    trace: &[Point2],
    search_radius_m: f64,
    sigma_m: f64,
    beta_m: f64,
    usable: impl Fn(&Way) -> bool,
) -> Vec<MatchedPoint> {
    // Precompute usable way geometries once.
    let ways: Vec<(WayId, Polyline)> = map
        .ways()
        .filter(|w| usable(w))
        .filter_map(|w| {
            let g = map.way_geometry(w.id)?;
            Polyline::new(g).ok().map(|line| (w.id, line))
        })
        .collect();
    // Candidate generation per trace point.
    let mut layers: Vec<(usize, Vec<Candidate>)> = Vec::new();
    for (i, &p) in trace.iter().enumerate() {
        let mut cands = Vec::new();
        for (way, line) in &ways {
            let proj = line.project(p);
            if proj.distance <= search_radius_m {
                cands.push(Candidate {
                    way: *way,
                    point: proj.point,
                    residual: proj.distance,
                });
            }
        }
        // Keep the closest few candidates to bound Viterbi width.
        cands.sort_by(|a, b| a.residual.total_cmp(&b.residual));
        cands.truncate(6);
        if !cands.is_empty() {
            layers.push((i, cands));
        }
    }
    if layers.is_empty() {
        return Vec::new();
    }
    // Viterbi in negative-log space.
    let emission = |c: &Candidate| (c.residual / sigma_m).powi(2) / 2.0;
    let mut costs: Vec<f64> = layers[0].1.iter().map(emission).collect();
    let mut back: Vec<Vec<usize>> = vec![vec![0; layers[0].1.len()]];
    for li in 1..layers.len() {
        let (prev_i, ref prev_cands) = layers[li - 1];
        let (cur_i, ref cur_cands) = layers[li];
        let straight = trace[prev_i].distance(trace[cur_i]);
        let mut new_costs = vec![f64::INFINITY; cur_cands.len()];
        let mut pointers = vec![0usize; cur_cands.len()];
        for (ci, cand) in cur_cands.iter().enumerate() {
            for (pi, prev) in prev_cands.iter().enumerate() {
                // Transition: how much the candidate movement disagrees
                // with the raw movement. Newson-Krumm uses route distance
                // here; with the straight-line approximation a fixed
                // way-switch penalty substitutes for the detour cost a
                // road change would incur, preventing way flapping.
                let moved = prev.point.distance(cand.point);
                let mut trans = (moved - straight).abs() / beta_m;
                if prev.way != cand.way {
                    trans += 2.0;
                }
                let total = costs[pi] + trans + emission(cand);
                if total < new_costs[ci] {
                    new_costs[ci] = total;
                    pointers[ci] = pi;
                }
            }
        }
        costs = new_costs;
        back.push(pointers);
    }
    // Backtrack.
    let mut best_end = 0;
    for (i, c) in costs.iter().enumerate() {
        if *c < costs[best_end] {
            best_end = i;
        }
    }
    let mut picks = vec![0usize; layers.len()];
    picks[layers.len() - 1] = best_end;
    for li in (1..layers.len()).rev() {
        picks[li - 1] = back[li][picks[li]];
    }
    layers
        .iter()
        .zip(picks)
        .map(|((trace_index, cands), pick)| {
            let c = &cands[pick];
            MatchedPoint {
                trace_index: *trace_index,
                way: c.way,
                point: c.point,
                residual_m: c.residual,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_mapdata::{GeoReference, MapDocument, Tags};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two parallel east-west roads 30 m apart plus a connector.
    fn road_map() -> (MapDocument, WayId, WayId) {
        let mut map = MapDocument::new("mm", "t", GeoReference::Unaligned { hint: None });
        let a = map.add_node(Point2::new(0.0, 0.0), Tags::new());
        let b = map.add_node(Point2::new(200.0, 0.0), Tags::new());
        let south = map
            .add_way(
                vec![a, b],
                Tags::new()
                    .with("highway", "residential")
                    .with("name", "South"),
            )
            .unwrap();
        let c = map.add_node(Point2::new(0.0, 30.0), Tags::new());
        let d = map.add_node(Point2::new(200.0, 30.0), Tags::new());
        let north = map
            .add_way(
                vec![c, d],
                Tags::new()
                    .with("highway", "residential")
                    .with("name", "North"),
            )
            .unwrap();
        (map, south, north)
    }

    #[test]
    fn clean_trace_matches_its_road() {
        let (map, south, _) = road_map();
        let trace: Vec<Point2> = (0..10).map(|i| Point2::new(i as f64 * 20.0, 1.0)).collect();
        let matched = mapmatch(&map, &trace, 25.0, 5.0, 10.0, |_| true);
        assert_eq!(matched.len(), 10);
        assert!(matched.iter().all(|m| m.way == south));
        assert!(matched.iter().all(|m| m.point.y == 0.0));
    }

    #[test]
    fn noisy_trace_stays_on_one_road() {
        // Noise pushes some fixes closer to the north road; HMM
        // continuity must keep the match on the south road.
        let (map, south, _north) = road_map();
        let mut rng = StdRng::seed_from_u64(4);
        let trace: Vec<Point2> = (0..20)
            .map(|i| Point2::new(i as f64 * 10.0, rng.gen_range(-6.0..14.0)))
            .collect();
        let matched = mapmatch(&map, &trace, 40.0, 5.0, 10.0, |_| true);
        assert_eq!(matched.len(), 20);
        let south_count = matched.iter().filter(|m| m.way == south).count();
        assert!(south_count >= 18, "only {south_count}/20 on the true road");
    }

    #[test]
    fn pure_nearest_would_flap_but_hmm_does_not() {
        let (map, _south, _north) = road_map();
        // Alternate fixes between y=5 and y=25: nearest-way snapping
        // would alternate roads every fix.
        let trace: Vec<Point2> = (0..12)
            .map(|i| Point2::new(i as f64 * 15.0, if i % 2 == 0 { 5.0 } else { 25.0 }))
            .collect();
        let matched = mapmatch(&map, &trace, 40.0, 10.0, 10.0, |_| true);
        let transitions = matched.windows(2).filter(|w| w[0].way != w[1].way).count();
        assert!(
            transitions <= 2,
            "HMM should not flap; {transitions} transitions"
        );
    }

    #[test]
    fn out_of_range_points_skipped() {
        let (map, _, _) = road_map();
        let trace = vec![
            Point2::new(10.0, 1.0),
            Point2::new(10.0, 500.0), // unreachable
            Point2::new(30.0, 1.0),
        ];
        let matched = mapmatch(&map, &trace, 25.0, 5.0, 10.0, |_| true);
        assert_eq!(matched.len(), 2);
        assert_eq!(matched[0].trace_index, 0);
        assert_eq!(matched[1].trace_index, 2);
    }

    #[test]
    fn empty_inputs() {
        let (map, _, _) = road_map();
        assert!(mapmatch(&map, &[], 25.0, 5.0, 10.0, |_| true).is_empty());
        let far = vec![Point2::new(0.0, 9_999.0)];
        assert!(mapmatch(&map, &far, 25.0, 5.0, 10.0, |_| true).is_empty());
    }

    #[test]
    fn way_filter_respected() {
        let (map, south, _north) = road_map();
        let trace: Vec<Point2> = (0..5).map(|i| Point2::new(i as f64 * 10.0, 28.0)).collect();
        // Only the south way usable: everything must match it despite
        // being closer to the north way.
        let matched = mapmatch(&map, &trace, 50.0, 5.0, 10.0, |w| {
            w.tags.is("name", "South")
        });
        assert!(matched.iter().all(|m| m.way == south));
    }
}
