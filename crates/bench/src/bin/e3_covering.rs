//! E3 — paper §3/paper §5.1: fuzzy map boundaries tolerate coarse coverings; the
//! covering level trades DNS records against discovery false positives.
//!
//! `cargo run --release -p openflame-bench --bin e3_covering`

use openflame_bench::{header, mean, row};
use openflame_cells::{CellId, Region, RegionCoverer};
use openflame_geo::LatLng;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "E3",
        "covering level vs records, false positives, and boundary fuzz",
    );
    let mut rng = StdRng::seed_from_u64(5);
    let center = LatLng::new(40.4433, -79.9436).unwrap();
    // Fifty venues with 20–150 m zones scattered over the city.
    let venues: Vec<(LatLng, f64)> = (0..50)
        .map(|_| {
            (
                center.destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..2_000.0)),
                rng.gen_range(20.0..150.0),
            )
        })
        .collect();
    println!("{} venues, zone radii 20–150 m\n", venues.len());
    row(&[
        "level".into(),
        "cell-side m".into(),
        "cells/zone".into(),
        "dns-records".into(),
        "false-disc".into(),
        "miss@20m".into(),
    ]);
    for level in [10u8, 11, 12, 13, 14, 15, 16] {
        let coverer = RegionCoverer::default();
        let mut cells_per_zone = Vec::new();
        let mut coverings = Vec::new();
        for (loc, radius) in &venues {
            let cover = coverer.covering_at_level(
                &Region::Cap {
                    center: *loc,
                    radius_m: *radius,
                },
                level,
            );
            cells_per_zone.push(cover.len() as f64);
            coverings.push(cover);
        }
        let records: f64 = cells_per_zone.iter().sum::<f64>() * 2.0; // exact + wildcard
                                                                     // False discoveries: sample points covered by a venue's cells
                                                                     // but actually outside the venue's true zone.
        let mut fp = 0usize;
        let mut fp_total = 0usize;
        // Misses with fuzzy boundaries: true position up to 20 m outside
        // the registered zone (a survey error), still expected to find
        // the venue.
        let mut miss = 0usize;
        let mut miss_total = 0usize;
        let mut rng2 = StdRng::seed_from_u64(17);
        for ((loc, radius), cover) in venues.iter().zip(&coverings) {
            for _ in 0..40 {
                // A random point inside the covering's cells.
                let cell = cover[rng2.gen_range(0..cover.len())];
                let p = cell.center();
                fp_total += 1;
                if p.haversine_distance(*loc) > *radius {
                    fp += 1;
                }
                // A user standing just past the fuzzy boundary.
                let fuzz = loc.destination(
                    rng2.gen_range(0.0..360.0),
                    radius + rng2.gen_range(0.0..20.0),
                );
                miss_total += 1;
                let user_cell = CellId::from_latlng(fuzz, level).unwrap();
                let found = cover
                    .iter()
                    .any(|c| c.contains(user_cell) || user_cell.contains(*c) || *c == user_cell);
                if !found {
                    miss += 1;
                }
            }
        }
        row(&[
            format!("{level}"),
            format!("{:.0}", CellId::approx_side_length_m(level)),
            format!("{:.1}", mean(&cells_per_zone)),
            format!("{records:.0}"),
            format!("{:.0}%", 100.0 * fp as f64 / fp_total as f64),
            format!("{:.0}%", 100.0 * miss as f64 / miss_total as f64),
        ]);
    }
    println!(
        "\npaper claim: \"the fuzziness of map boundaries does not require a\n\
         database that maintains precise polygonal boundaries\". Expected\n\
         shape: coarser levels → fewer records but more false discoveries\n\
         (clients contact servers that don't actually cover them); finer\n\
         levels → more records and more boundary misses; the sweet spot\n\
         sits where cell size ≈ zone size (levels 13–15 for stores)."
    );
}
