//! E10 — paper §5.1: DNS federation spreads discovery load across zone
//! servers instead of concentrating it on one provider endpoint.
//!
//! `cargo run --release -p openflame-bench --bin e10_dnsload`

use openflame_bench::{header, row};
use openflame_core::{Deployment, DeploymentConfig};
use openflame_dns::ResolverConfig;
use openflame_worldgen::{World, WorldConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUERIES: usize = 5_000;

fn main() {
    header(
        "E10",
        "discovery load distribution across DNS shard servers",
    );
    row(&[
        "shards".into(),
        "zones".into(),
        "parent rx".into(),
        "shard max".into(),
        "shard mean".into(),
    ]);
    for shards in [1usize, 2, 4, 8] {
        // A metro-scale world spanning dozens of query-level cells, so
        // the spatial zone can actually be cut into shards.
        let world = World::generate(WorldConfig {
            stores: 24,
            blocks_x: 30,
            blocks_y: 30,
            ..WorldConfig::default()
        });
        let dep = Deployment::build(
            world,
            DeploymentConfig {
                dns_shards: shards,
                covering_level: 14,
                shard_level: 14,
                // Disable caching so every query reaches authority —
                // this measures authoritative load, the resource the
                // federation is sharing.
                resolver: ResolverConfig {
                    cache_enabled: false,
                    ..Default::default()
                },
                ..DeploymentConfig::default()
            },
        );
        let zipf = ZipfSampler::new(dep.world.venues.len(), 0.8);
        let mut rng = StdRng::seed_from_u64(44);
        dep.transport.reset_stats();
        for _ in 0..QUERIES / 10 {
            let venue = zipf.sample(&mut rng);
            let loc = dep.world.venues[venue]
                .hint
                .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..150.0));
            // Measure authoritative DNS load: bypass the session's
            // per-cell discovery cache, which would absorb the repeats.
            let _ = dep.client.discovery().discover(loc, true);
        }
        // Per-authoritative-server receive counts. The parent keeps
        // all referral traffic (this resolver does not cache NS
        // referrals; production resolvers do, which would shrink the
        // parent column further). The answer-serving load is what the
        // shards split.
        let parent = dep
            .transport
            .endpoint_stats(dep.cell_dns.endpoint())
            .map(|s| s.rx_msgs as f64)
            .unwrap_or(0.0);
        let mut shard_rx: Vec<f64> = dep
            .shard_dns
            .iter()
            .map(|shard| {
                dep.transport
                    .endpoint_stats(shard.endpoint())
                    .map(|s| s.rx_msgs as f64)
                    .unwrap_or(0.0)
            })
            .collect();
        // Shard 0 is hosted on the parent, so with one shard the
        // answer traffic is the parent's own; report it as such.
        if shard_rx.is_empty() {
            shard_rx.push(parent);
        }
        let shard_max = shard_rx.iter().cloned().fold(0.0f64, f64::max);
        row(&[
            format!("{shards}"),
            format!("{}", dep.shard_of_cell.len()),
            format!("{parent:.0}"),
            format!("{shard_max:.0}"),
            format!("{:.0}", openflame_bench::mean(&shard_rx)),
        ]);
    }
    println!(
        "\npaper claim (paper §5.1): repurposing the federated DNS inherits its\n\
         \"large-scale deployments and infrastructure\". Expected shape: the\n\
         per-shard maximum drops as shards are added, because each shard\n\
         is authoritative for a disjoint set of cell zones. The parent\n\
         column stays flat only because this resolver does not cache NS\n\
         referrals; real resolvers do, which removes that hop too."
    );
}
