//! Workspace-local stand-in for the `rand` crate.
//!
//! Provides the API subset the workspace uses — [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — over a deterministic xoshiro256** generator.
//! Determinism is the property the simulation actually depends on:
//! identical seeds must produce identical runs.

/// Sampling a value of a type uniformly over its "standard" domain
/// (full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for i64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A range-like argument to [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The random-number-generator interface (API subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A value sampled from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A value sampled uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds (API subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic generator (xoshiro256** seeded via splitmix64).
    ///
    /// Not cryptographic — statistical quality only, which is all the
    /// simulation needs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=5u64);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
