//! E2 — paper §5.1: DNS discovery is fast because of ubiquitous caching.
//!
//! 2,000 discovery queries with Zipf-distributed locality over venue
//! locations, comparing a caching resolver against the same resolver
//! with caching disabled, plus a TTL sweep.
//!
//! `cargo run --release -p openflame-bench --bin e2_discovery`

use openflame_bench::{header, mean, percentile, row};
use openflame_core::{Deployment, DeploymentConfig};
use openflame_dns::ResolverConfig;
use openflame_worldgen::{World, WorldConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const QUERIES: usize = 2_000;

fn run(cache_enabled: bool, zipf_s: f64, think_s: u64) -> (f64, f64, f64, f64, f64) {
    let world = World::generate(WorldConfig {
        stores: 12,
        ..WorldConfig::default()
    });
    let dep = Deployment::build(
        world,
        DeploymentConfig {
            resolver: ResolverConfig {
                cache_enabled,
                ..Default::default()
            },
            ..DeploymentConfig::default()
        },
    );
    let zipf = ZipfSampler::new(dep.world.venues.len(), zipf_s);
    let mut rng = StdRng::seed_from_u64(99);
    let mut latencies = Vec::with_capacity(QUERIES);
    for _ in 0..QUERIES {
        // Inter-query think time lets TTLs expire, so cache hits come
        // from locality rather than a permanently warm cache.
        dep.transport.advance_us(think_s * 1_000_000);
        // A user near a Zipf-popular venue, jittered by up to 80 m.
        let venue = zipf.sample(&mut rng);
        let loc = dep.world.venues[venue]
            .hint
            .destination(rng.gen_range(0.0..360.0), rng.gen_range(0.0..80.0));
        let t0 = dep.transport.now_us();
        // Measure the DNS layer itself: go through the discovery
        // client, below the session's per-cell cache.
        let found = dep.client.discovery().discover(loc, true).unwrap();
        latencies.push((dep.transport.now_us() - t0) as f64 / 1000.0);
        assert!(!found.is_empty(), "the city is fully covered");
    }
    let stats = dep.client.discovery().resolver().stats();
    let hit_ratio = stats.cache_hits as f64 / stats.queries as f64;
    let upstream_per_discovery = stats.upstream_queries as f64 / QUERIES as f64;
    (
        mean(&latencies),
        percentile(&mut latencies.clone(), 50.0),
        percentile(&mut latencies, 95.0),
        hit_ratio,
        upstream_per_discovery,
    )
}

fn main() {
    header(
        "E2",
        "DNS discovery latency: resolver caching makes repeat queries ~free",
    );
    println!("{QUERIES} discovery queries, Zipf-local clients, simulated WAN latencies\n");
    row(&[
        "config".into(),
        "mean ms".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "cache-hit".into(),
        "upstream/q".into(),
    ]);
    for (label, cache, s, think) in [
        ("no-cache zipf1.0", false, 1.0, 0u64),
        ("cache zipf0.0 t0s", true, 0.0, 0),
        ("cache zipf1.0 t0s", true, 1.0, 0),
        ("cache zipf0.0 t60s", true, 0.0, 60),
        ("cache zipf1.0 t60s", true, 1.0, 60),
        ("cache zipf1.5 t60s", true, 1.5, 60),
    ] {
        let (mean_ms, p50, p95, hits, upstream) = run(cache, s, think);
        row(&[
            label.into(),
            format!("{mean_ms:.2}"),
            format!("{p50:.2}"),
            format!("{p95:.2}"),
            format!("{:.0}%", hits * 100.0),
            format!("{upstream:.2}"),
        ]);
    }
    println!(
        "\npaper claim: leveraging the DNS \"gives us access to its ubiquitous\n\
         caching mechanisms\". Expected shape: with caching, hit ratio rises\n\
         with locality (Zipf s) and p50 collapses to ~0 while the uncached\n\
         config pays full referral-walk latency on every query."
    );
}
