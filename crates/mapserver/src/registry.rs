//! DNS registration of map servers (paper §5.1).
//!
//! A map server approximates its zone by a cell covering and publishes
//! one `MAPSRV` record per covering cell (plus a wildcard so queries at
//! finer levels still match). Discovery then *is* a DNS lookup.

use crate::naming::{cell_to_name, cell_to_wildcard};
use crate::server::MapServer;
use openflame_cells::{Region, RegionCoverer};
use openflame_dns::{AuthServer, Record, RecordData, RecordType};

/// Default TTL for MAPSRV records (map servers move rarely — paper §5.1:
/// "the address of the map servers are not expected to change
/// frequently so the system would benefit from a ubiquitous caching
/// mechanism").
pub const MAPSRV_TTL_S: u32 = 300;

/// Registers `server`'s zone covering in the spatial zone hosted by
/// `dns`. Returns the covering cells that were registered.
///
/// `covering_level` controls the granularity/false-positive trade-off
/// measured by experiment E3.
pub fn register_server(
    dns: &AuthServer,
    server: &MapServer,
    covering_level: u8,
) -> Vec<openflame_cells::CellId> {
    let hello = server.hello();
    let region = Region::Cap {
        center: server.location_hint(),
        radius_m: server.radius_m(),
    };
    let cells = RegionCoverer::default().covering_at_level(&region, covering_level);
    let data = RecordData::MapSrv {
        endpoint: server.endpoint().0,
        server_id: server.id().to_string(),
        services: hello
            .services
            .iter()
            .cloned()
            .chain(
                hello
                    .localization_techs
                    .iter()
                    .map(|t| format!("localize:{t}")),
            )
            .collect(),
    };
    dns.with_zones_mut(|zones| {
        for zone in zones.iter_mut() {
            for cell in &cells {
                let exact = cell_to_name(*cell);
                if !exact.is_subdomain_of(zone.origin()) {
                    continue;
                }
                zone.add(Record::new(exact, MAPSRV_TTL_S, data.clone()));
                zone.add(Record::new(
                    cell_to_wildcard(*cell),
                    MAPSRV_TTL_S,
                    data.clone(),
                ));
            }
        }
    });
    cells
}

/// Removes every MAPSRV record for `server_id` from the zones hosted by
/// `dns`. Returns how many records were removed.
pub fn unregister_server(dns: &AuthServer, server_id: &str) -> usize {
    dns.with_zones_mut(|zones| zones.iter_mut().map(|z| z.remove_mapsrv(server_id)).sum())
}

/// Counts MAPSRV records (for load and footprint measurements).
pub fn mapsrv_record_count(dns: &AuthServer) -> usize {
    dns.with_zones(|zones| {
        zones
            .iter()
            .flat_map(|z| z.iter_records())
            .filter(|r| r.data.rtype() == RecordType::MapSrv)
            .count()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AccessPolicy;
    use crate::naming::{query_name, SPATIAL_ROOT};
    use crate::server::MapServerConfig;
    use openflame_dns::{DomainName, Zone};
    use openflame_netsim::SimNet;
    use openflame_worldgen::{World, WorldConfig};

    fn setup() -> (
        SimNet,
        std::sync::Arc<AuthServer>,
        std::sync::Arc<MapServer>,
        World,
    ) {
        let net = SimNet::new(2);
        let zone = Zone::new(DomainName::parse(SPATIAL_ROOT).unwrap());
        let dns = AuthServer::spawn(&net, "cells", vec![zone]);
        let world = World::generate(WorldConfig::default());
        let venue = &world.venues[0];
        let server = MapServer::spawn(
            &net,
            MapServerConfig {
                id: "store0".into(),
                map: venue.map.clone(),
                beacons: venue.beacons.clone(),
                tags: venue.tags.clone(),
                policy: AccessPolicy::open(),
                portals: vec![(venue.entrance_local, venue.hint)],
                location_hint: venue.hint,
                radius_m: venue.radius_m,
                build_ch: false,
            },
        );
        (net, dns, server, world)
    }

    #[test]
    fn registration_inserts_records() {
        let (_net, dns, server, _world) = setup();
        let cells = register_server(&dns, &server, 13);
        assert!(!cells.is_empty());
        // Exact + wildcard per cell.
        assert_eq!(mapsrv_record_count(&dns), cells.len() * 2);
    }

    #[test]
    fn registered_server_resolvable_at_query_level() {
        let (_net, dns, server, world) = setup();
        register_server(&dns, &server, 13);
        // A discovery query at the canonical level for a point at the
        // venue must find the MAPSRV record (via exact or wildcard).
        let name = query_name(world.venues[0].hint);
        let resp = dns.with_zones(|zones| zones[0].query(&name, RecordType::MapSrv));
        assert!(
            !resp.answers.is_empty(),
            "lookup {name} found nothing (rcode {:?})",
            resp.rcode
        );
        let RecordData::MapSrv {
            server_id,
            endpoint,
            ..
        } = &resp.answers[0].data
        else {
            panic!("wrong record type");
        };
        assert_eq!(server_id, "store0");
        assert_eq!(*endpoint, server.endpoint().0);
    }

    #[test]
    fn unregister_removes_all() {
        let (_net, dns, server, _world) = setup();
        let cells = register_server(&dns, &server, 13);
        let removed = unregister_server(&dns, "store0");
        assert_eq!(removed, cells.len() * 2);
        assert_eq!(mapsrv_record_count(&dns), 0);
        assert_eq!(unregister_server(&dns, "store0"), 0);
    }

    #[test]
    fn coarser_level_fewer_records() {
        let (_net, dns, server, _world) = setup();
        let fine = register_server(&dns, &server, 16).len();
        unregister_server(&dns, "store0");
        let coarse = register_server(&dns, &server, 12).len();
        assert!(coarse <= fine, "coarse {coarse} vs fine {fine}");
    }

    #[test]
    fn services_advertised_in_record() {
        let (_net, dns, server, _world) = setup();
        register_server(&dns, &server, 13);
        let found = dns.with_zones(|zones| {
            zones[0]
                .iter_records()
                .filter_map(|r| match &r.data {
                    RecordData::MapSrv { services, .. } => Some(services.clone()),
                    _ => None,
                })
                .next()
                .unwrap()
        });
        assert!(found.contains(&"search".to_string()));
        assert!(found.contains(&"localize:beacon".to_string()));
    }
}
