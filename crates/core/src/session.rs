//! The per-server session layer: batched envelopes + capability and
//! discovery caching, over any wire transport.
//!
//! Every wire interaction of both provider architectures goes through a
//! [`Session`]. It does three things the naive per-request path did
//! not:
//!
//! - **Batching**: callers hand it a `Vec<Request>` per server and it
//!   ships one [`Request::Batch`] envelope, so a scatter round costs
//!   one round trip per server regardless of how many primitives the
//!   round needs (OpenFLAME's per-server amortization; cf. federated
//!   SPARQL source selection, which likewise routes one logical query
//!   per backend).
//! - **Hello caching**: `Hello` capability advertisements are cached
//!   per endpoint with a TTL on the transport clock, so repeated
//!   scatter-gather rounds stop re-asking servers who they are.
//!   Coverage summaries riding in hellos (spec §13) are absorbed into
//!   a sibling per-endpoint cache consulted by the query planner, with
//!   the same TTL/capacity/invalidation discipline.
//! - **Discovery caching**: discovery results are cached per query
//!   cell, so a client localizing every few seconds does not re-resolve
//!   the same cell through DNS each time.
//! - **Busy absorption**: a server that sheds the envelope under load
//!   answers `Response::Busy { retry_after_us }` (wire protocol spec §10)
//!   instead of an answer. The session re-submits the identical
//!   envelope after a capped exponential backoff seeded by the server's
//!   hint — deterministically jittered per `(client, server, attempt)`,
//!   so colliding clients desynchronize without shared state — and
//!   counts the shed/retry traffic in [`SessionStats`]. Only when
//!   [`BUSY_RETRY_BUDGET`] re-submissions have all been shed does the
//!   call surface [`ClientError::Overloaded`].
//!
//! Both caches are **bounded** ([`DEFAULT_CACHE_CAP`], adjustable via
//! [`Session::set_cache_cap`]): a long-lived session touring many
//! cells does not grow memory forever. Inserts past the cap evict
//! expired entries first, then the live entries closest to expiry;
//! evictions and current cache sizes are reported in
//! [`SessionStats`].
//!
//! The session speaks only through the [`Transport`] trait — the
//! deterministic simulator and real TCP sockets run the exact same
//! code, and the one-envelope-per-server wire discipline holds on
//! both (the backend-parity integration test enforces it). TTLs
//! default to the DNS record TTL the deployment uses (300 s), measured
//! on the transport clock (simulated time or wall-clock time), so
//! cached knowledge ages out on the same schedule as the naming layer
//! that produced it.
//!
//! TTL and principal are adjustable through `&self` (providers hand
//! out shared sessions), which is why they sit behind interior
//! mutability.

use crate::fleet::DiscoveryView;
use crate::ClientError;
use openflame_codec::{from_bytes, to_bytes};
use openflame_diag::{ranks, OrderedMutex};
use openflame_mapdata::NodeId;
use openflame_mapserver::protocol::{
    CoverageSummary, Envelope, HelloInfo, Request, Response, WireRoute,
};
use openflame_mapserver::Principal;
use openflame_netsim::{CallHandle, EndpointId, Transport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Default cache TTL: matches the 300 s DNS record TTL used by
/// deployment registrations.
pub const DEFAULT_TTL_US: u64 = 300 * 1_000_000;

/// Default capacity bound for each session cache (hello entries,
/// discovery cells). A long-lived session touring many cells stays
/// bounded: inserts over the cap evict expired entries first, then the
/// live entries closest to expiry.
pub const DEFAULT_CACHE_CAP: usize = 256;

/// How many times one envelope is re-submitted after a `Busy` shed
/// before the call surfaces [`ClientError::Overloaded`].
pub const BUSY_RETRY_BUDGET: u32 = 4;

/// Upper bound on a single busy-backoff wait, microseconds: the
/// exponential doubling stops here so a pathological server hint
/// cannot park a client for seconds.
pub const BUSY_BACKOFF_CAP_US: u64 = 50_000;

/// The wait before busy re-submission `attempt` (0-based): the server's
/// hint doubled per attempt, capped at [`BUSY_BACKOFF_CAP_US`], plus a
/// deterministic jitter (≤ a quarter of the base) hashed from
/// `(from, to, attempt)` — a pure function, so seeded runs replay
/// identically, yet distinct clients hammering one server spread out.
pub(crate) fn busy_backoff_us(hint_us: u64, attempt: u32, from: EndpointId, to: EndpointId) -> u64 {
    let base = hint_us
        .max(100)
        .saturating_mul(1u64 << attempt.min(16))
        .min(BUSY_BACKOFF_CAP_US);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in from
        .0
        .to_le_bytes()
        .iter()
        .chain(to.0.to_le_bytes().iter())
        .chain(attempt.to_le_bytes().iter())
    {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    base + h % (base / 4 + 1)
}

/// Counters for session-layer behaviour.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Batch envelopes sent.
    pub batches: u64,
    /// Individual requests carried inside those envelopes.
    pub batched_requests: u64,
    /// Cumulative wire latency of those envelopes, microseconds
    /// (simulated or wall-clock, per the transport).
    pub wire_us: u64,
    /// Hello lookups answered from the cache.
    pub hello_hits: u64,
    /// Hello lookups that went to the wire.
    pub hello_misses: u64,
    /// Discovery lookups answered from the cache.
    pub discovery_hits: u64,
    /// Discovery lookups that fell through to DNS.
    pub discovery_misses: u64,
    /// Entries removed from either cache to hold the capacity bound
    /// (expired entries purged while evicting included).
    pub cache_evictions: u64,
    /// Live (unexpired) hello-cache entries at snapshot time. Expired
    /// entries awaiting lazy removal are not counted.
    pub hello_cache_len: u64,
    /// Live (unexpired) discovery-cache entries at snapshot time.
    pub discovery_cache_len: u64,
    /// Live (unexpired) coverage-summary entries at snapshot time
    /// (same live-only convention as the other cache lenses).
    pub coverage_cache_len: u64,
    /// Entries removed from the coverage cache to hold the capacity
    /// bound (counted separately from `cache_evictions` so planner
    /// cache pressure is observable on its own).
    pub coverage_evictions: u64,
    /// `Busy` sheds received from servers (wire protocol spec §10), counting
    /// every attempt — a call shed 3 times then served adds 3.
    pub busy_rejections: u64,
    /// Envelopes re-submitted after a backoff because the previous
    /// attempt was shed. Always ≤ `busy_rejections`; the difference is
    /// calls whose retry budget ran out.
    pub busy_retries: u64,
}

struct Cached<T> {
    value: T,
    expires_us: u64,
    /// Insertion sequence (session-wide counter): the deterministic
    /// tie-break when many entries share an expiry instant, as a whole
    /// discovery round's hellos do on the simulated clock. Eviction
    /// must not depend on `HashMap`'s per-process random iteration
    /// order — seeded runs replay identically.
    seq: u64,
}

/// Holds `map` within `cap` entries after an insert. Expired entries
/// are purged first (they are dead weight whoever probes them next);
/// if the map is still over, the live entries closest to expiry — the
/// oldest knowledge, insertion order breaking ties deterministically —
/// are evicted. Returns how many entries were removed.
fn evict_to_cap<K: Eq + std::hash::Hash + Clone, V>(
    map: &mut HashMap<K, Cached<V>>,
    cap: usize,
    now_us: u64,
) -> u64 {
    if map.len() <= cap {
        return 0;
    }
    let before = map.len();
    map.retain(|_, cached| cached.expires_us > now_us);
    let mut removed = (before - map.len()) as u64;
    while map.len() > cap {
        let victim = map
            .iter()
            .min_by_key(|(_, cached)| (cached.expires_us, cached.seq))
            .map(|(key, _)| key.clone());
        match victim {
            Some(key) => {
                map.remove(&key);
                removed += 1;
            }
            None => break,
        }
    }
    removed
}

/// One envelope's decoded fate: answered (well or badly), or shed under
/// load and worth re-submitting.
enum BatchReply {
    /// The server shed the envelope; retry after the hinted wait.
    Busy {
        /// Microseconds the server suggested waiting.
        retry_after_us: u64,
    },
    /// The envelope was answered (or failed unrecoverably).
    Done(Result<Vec<Response>, ClientError>),
}

/// Discovery cache key: (query cell raw id, expand-neighbors flag).
type DiscoveryKey = (u64, bool);
type DiscoveryCache = HashMap<DiscoveryKey, Cached<DiscoveryView>>;

/// Client-side coverage knowledge about one server: the summary it
/// advertised in its `Hello` (if it speaks the coverage format), plus
/// the session's own refinement from past answers.
///
/// The refinement is a per-kind *consecutive empty answer* streak. It
/// is a heuristic cost signal — planners use it to order servers, and
/// it MUST NOT prune by itself (spec §13.3): an empty answer to one
/// query proves nothing about the next one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverageState {
    /// The server's advertised summary; `None` for pre-coverage peers
    /// ("unknown coverage, never prune").
    pub summary: Option<CoverageSummary>,
    /// Consecutive empty answers per content kind, reset by any
    /// non-empty answer of that kind.
    pub empty_streaks: HashMap<String, u32>,
}

/// A client-side wire session: batched calls with capability and
/// discovery caches (see module docs).
pub struct Session {
    transport: Arc<dyn Transport>,
    endpoint: EndpointId,
    principal: OrderedMutex<Principal>,
    ttl_us: AtomicU64,
    cache_cap: AtomicUsize,
    /// Monotonic insertion counter shared by both caches (the eviction
    /// tie-break in [`evict_to_cap`]).
    cache_seq: AtomicU64,
    hellos: OrderedMutex<HashMap<EndpointId, Cached<HelloInfo>>>,
    coverage: OrderedMutex<HashMap<EndpointId, Cached<CoverageState>>>,
    discoveries: OrderedMutex<DiscoveryCache>,
    stats: OrderedMutex<SessionStats>,
}

impl Session {
    /// Creates a session speaking from `endpoint` as `principal`.
    pub fn new(transport: Arc<dyn Transport>, endpoint: EndpointId, principal: Principal) -> Self {
        Self {
            transport,
            endpoint,
            principal: OrderedMutex::new(ranks::SESSION_PRINCIPAL, principal),
            ttl_us: AtomicU64::new(DEFAULT_TTL_US),
            cache_cap: AtomicUsize::new(DEFAULT_CACHE_CAP),
            cache_seq: AtomicU64::new(0),
            hellos: OrderedMutex::new(ranks::SESSION_HELLOS, HashMap::new()),
            coverage: OrderedMutex::new(ranks::SESSION_COVERAGE, HashMap::new()),
            discoveries: OrderedMutex::new(ranks::SESSION_DISCOVERIES, HashMap::new()),
            stats: OrderedMutex::new(ranks::SESSION_STATS, SessionStats::default()),
        }
    }

    /// Overrides the cache TTL (microseconds of transport time).
    /// Adjustable on a shared session: entries already cached keep
    /// their old expiry, new entries use the new TTL.
    pub fn set_ttl_us(&self, ttl_us: u64) {
        self.ttl_us.store(ttl_us, Ordering::Relaxed);
    }

    /// The current cache TTL in microseconds.
    pub fn ttl_us(&self) -> u64 {
        self.ttl_us.load(Ordering::Relaxed)
    }

    /// Overrides the per-cache capacity bound (hello entries and
    /// discovery cells each). Adjustable on a shared session; the new
    /// bound applies from the next insert.
    pub fn set_cache_cap(&self, cap: usize) {
        self.cache_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// The per-cache capacity bound.
    pub fn cache_cap(&self) -> usize {
        self.cache_cap.load(Ordering::Relaxed)
    }

    /// The identity attached to outgoing envelopes.
    pub fn principal(&self) -> Principal {
        self.principal.lock().clone()
    }

    /// Changes the identity for subsequent envelopes (works on a shared
    /// session). Caches are dropped: what a server advertises or a cell
    /// resolves to may be identity-dependent.
    pub fn set_principal(&self, principal: Principal) {
        *self.principal.lock() = principal;
        self.invalidate();
    }

    /// The session's network endpoint.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// The underlying wire transport.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Statistics snapshot. Cache sizes are sampled at snapshot time
    /// and count **live** entries only: entries past their TTL that are
    /// still awaiting lazy removal are dead weight, not cached
    /// knowledge — the same semantics as the resolver's `cache_len`.
    pub fn stats(&self) -> SessionStats {
        let mut stats = self.stats.lock().clone();
        let now = self.transport.now_us();
        stats.hello_cache_len = self
            .hellos
            .lock()
            .values()
            .filter(|cached| cached.expires_us > now)
            .count() as u64;
        stats.discovery_cache_len = self
            .discoveries
            .lock()
            .values()
            .filter(|cached| cached.expires_us > now)
            .count() as u64;
        stats.coverage_cache_len = self
            .coverage
            .lock()
            .values()
            .filter(|cached| cached.expires_us > now)
            .count() as u64;
        stats
    }

    /// Drops all cached state.
    pub fn invalidate(&self) {
        self.hellos.lock().clear();
        self.coverage.lock().clear();
        self.discoveries.lock().clear();
    }

    /// Drops every cached fact about one endpoint: its capability
    /// advertisement and its coverage state. Called when a replica is
    /// dead-listed on failover — [`Session::invalidate_cell`] alone
    /// drops the discovery entry, but the dead endpoint's hello (and
    /// coverage summary) would otherwise survive in their own caches
    /// and be re-served for up to a TTL after the replica died.
    pub fn purge_endpoint(&self, endpoint: EndpointId) {
        self.hellos.lock().remove(&endpoint);
        self.coverage.lock().remove(&endpoint);
    }

    // ----------------------------------------------------------------
    // Wire calls.
    // ----------------------------------------------------------------

    fn encode(&self, request: Request) -> Vec<u8> {
        let env = Envelope {
            principal: self.principal(),
            request,
        };
        to_bytes(&env).to_vec()
    }

    fn decode_reply(bytes: &[u8], expected: usize) -> BatchReply {
        let response = match from_bytes::<Response>(bytes) {
            Ok(response) => response,
            Err(e) => return BatchReply::Done(Err(ClientError::Protocol(e.to_string()))),
        };
        BatchReply::Done(match response {
            // The envelope was shed under load: retryable, handled by
            // the caller's backoff loop, never surfaced as a decode
            // error.
            Response::Busy { retry_after_us } => return BatchReply::Busy { retry_after_us },
            Response::Batch(responses) if responses.len() == expected => Ok(responses),
            Response::Batch(responses) => Err(ClientError::Protocol(format!(
                "batch answered {} of {expected} items",
                responses.len()
            ))),
            // A whole-envelope failure (e.g. the envelope itself was
            // rejected) surfaces as a top-level error.
            Response::Error { code, message } => Err(ClientError::Server {
                server_id: String::new(),
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected Batch, got {other:?}"
            ))),
        })
    }

    /// Claims one in-flight envelope, transparently re-submitting it
    /// (after [`busy_backoff_us`]) every time the server sheds it with
    /// `Busy` — up to [`BUSY_RETRY_BUDGET`] re-submissions, after which
    /// the call surfaces [`ClientError::Overloaded`]. The backoff both
    /// advances the transport clock (simulated time) and sleeps the
    /// thread (wall-clock backends); each attempt's wire latency is
    /// charged to the session.
    fn finish_call(
        &self,
        to: EndpointId,
        payload: Vec<u8>,
        expected: usize,
        mut handle: CallHandle,
    ) -> Result<Vec<Response>, ClientError> {
        let mut attempt = 0u32;
        loop {
            let transfer = handle
                .wait()
                .map_err(|e| ClientError::Network(e.to_string()))?;
            self.stats.lock().wire_us += transfer.latency_us;
            match Self::decode_reply(&transfer.payload, expected) {
                BatchReply::Done(result) => {
                    let responses = result?;
                    self.absorb_hellos(to, &responses);
                    return Ok(responses);
                }
                BatchReply::Busy { retry_after_us } => {
                    self.stats.lock().busy_rejections += 1;
                    if attempt >= BUSY_RETRY_BUDGET {
                        return Err(ClientError::Overloaded { retry_after_us });
                    }
                    let wait = busy_backoff_us(retry_after_us, attempt, self.endpoint, to);
                    self.transport.advance_us(wait);
                    std::thread::sleep(std::time::Duration::from_micros(wait));
                    self.stats.lock().busy_retries += 1;
                    attempt += 1;
                    handle = self.transport.submit(self.endpoint, to, payload.clone());
                }
            }
        }
    }

    /// Sends one batched envelope to one server and returns the
    /// positional responses. Per-item failures come back as
    /// `Response::Error` items; the call errs only when the envelope
    /// itself fails. `Busy` sheds are absorbed by the session's retry
    /// loop (module docs) — they surface only as
    /// [`ClientError::Overloaded`] after the budget runs out.
    pub fn batch(
        &self,
        to: EndpointId,
        requests: Vec<Request>,
    ) -> Result<Vec<Response>, ClientError> {
        let expected = requests.len();
        {
            let mut stats = self.stats.lock();
            stats.batches += 1;
            stats.batched_requests += expected as u64;
        }
        let payload = self.encode(Request::Batch(requests));
        let handle = self.transport.submit(self.endpoint, to, payload.clone());
        self.finish_call(to, payload, expected, handle)
    }

    /// Sends one batched envelope to each server *concurrently* (the
    /// round costs the slowest branch, as a real fan-out would). One
    /// failed branch does not sink the others.
    pub fn batch_parallel(
        &self,
        calls: Vec<(EndpointId, Vec<Request>)>,
    ) -> Vec<Result<Vec<Response>, ClientError>> {
        let mut round = self.scatter();
        for (to, requests) in calls {
            round.submit(to, requests);
        }
        round.collect()
    }

    /// Starts a pipelined scatter round: envelopes submitted through
    /// [`ScatterRound::submit`] go on the wire immediately and their
    /// responses are claimed together by [`ScatterRound::collect`].
    pub fn scatter(&self) -> ScatterRound<'_> {
        ScatterRound {
            session: self,
            pending: Vec::new(),
        }
    }

    /// Turns per-item `Response::Error` entries into a
    /// [`ClientError::PartialFailure`], for callers that need every
    /// item of a batch.
    pub fn expect_all(responses: Vec<Response>) -> Result<Vec<Response>, ClientError> {
        let mut failures = Vec::new();
        for (idx, response) in responses.iter().enumerate() {
            if let Response::Error { code, message } = response {
                failures.push((
                    idx,
                    ClientError::Server {
                        server_id: String::new(),
                        code: *code,
                        message: message.clone(),
                    },
                ));
            }
        }
        if failures.is_empty() {
            Ok(responses)
        } else {
            Err(ClientError::PartialFailure {
                succeeded: responses.len() - failures.len(),
                failures,
            })
        }
    }

    /// Turns failed *branches* of a parallel scatter round into a
    /// [`ClientError::PartialFailure`], for callers that need every
    /// server of the round. The per-branch source errors (endpoint
    /// down, timeout, ...) ride inside the failure list, so nothing
    /// degrades into a silent empty result.
    pub fn gather_all(
        results: Vec<Result<Vec<Response>, ClientError>>,
    ) -> Result<Vec<Vec<Response>>, ClientError> {
        let mut gathered = Vec::with_capacity(results.len());
        let mut failures = Vec::new();
        for (idx, result) in results.into_iter().enumerate() {
            match result {
                Ok(responses) => gathered.push(responses),
                Err(e) => failures.push((idx, e)),
            }
        }
        if failures.is_empty() {
            Ok(gathered)
        } else {
            Err(ClientError::PartialFailure {
                succeeded: gathered.len(),
                failures,
            })
        }
    }

    // ----------------------------------------------------------------
    // Hello cache.
    // ----------------------------------------------------------------

    /// Opportunistically caches any `Hello` answers riding in a batch,
    /// seeding the coverage cache from the advertised summary.
    fn absorb_hellos(&self, from: EndpointId, responses: &[Response]) {
        for response in responses {
            if let Response::Hello(info) = response {
                self.store_coverage(from, info.coverage.clone());
                self.store_hello(from, info.clone());
            }
        }
    }

    /// Inserts a capability advertisement into the cache, evicting
    /// (expired-first) if the insert pushed it over the capacity bound.
    pub fn store_hello(&self, from: EndpointId, info: HelloInfo) {
        let now = self.transport.now_us();
        let evicted = {
            let mut hellos = self.hellos.lock();
            hellos.insert(
                from,
                Cached {
                    value: info,
                    expires_us: now.saturating_add(self.ttl_us()),
                    seq: self.cache_seq.fetch_add(1, Ordering::Relaxed),
                },
            );
            evict_to_cap(&mut hellos, self.cache_cap(), now)
        };
        if evicted > 0 {
            self.stats.lock().cache_evictions += evicted;
        }
    }

    /// Cache probe without touching the hit counters (internal
    /// bookkeeping, e.g. [`Session::ensure_hellos`] filtering, must not
    /// inflate the hit rate).
    fn peek_hello(&self, server: EndpointId) -> Option<HelloInfo> {
        let now = self.transport.now_us();
        let mut hellos = self.hellos.lock();
        match hellos.get(&server) {
            Some(cached) if cached.expires_us > now => Some(cached.value.clone()),
            Some(_) => {
                hellos.remove(&server);
                None
            }
            None => None,
        }
    }

    /// The cached advertisement for `server`, if fresh.
    pub fn cached_hello(&self, server: EndpointId) -> Option<HelloInfo> {
        let info = self.peek_hello(server);
        if info.is_some() {
            self.stats.lock().hello_hits += 1;
        }
        info
    }

    /// The advertisement for `server`, from cache or the wire.
    pub fn hello(&self, server: EndpointId) -> Result<HelloInfo, ClientError> {
        if let Some(info) = self.cached_hello(server) {
            return Ok(info);
        }
        self.stats.lock().hello_misses += 1;
        let responses = self.batch(server, vec![Request::Hello])?;
        match responses.into_iter().next() {
            Some(Response::Hello(info)) => Ok(info),
            Some(Response::Error { code, message }) => Err(ClientError::Server {
                server_id: String::new(),
                code,
                message,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected Hello, got {other:?}"
            ))),
        }
    }

    /// Whether a fresh advertisement is cached for `server`, without
    /// touching the hit/miss counters (pipelined callers probe before
    /// deciding what to submit, then count the lookups they actually
    /// perform through [`Session::cached_hello`] and the miss
    /// counter).
    pub fn has_hello(&self, server: EndpointId) -> bool {
        self.peek_hello(server).is_some()
    }

    /// Counts hello lookups that are about to go to the wire (the
    /// pipelined paths submit `Request::Hello` envelopes directly
    /// instead of going through [`Session::hello`]).
    pub(crate) fn note_hello_misses(&self, n: u64) {
        self.stats.lock().hello_misses += n;
    }

    /// Fills the hello cache for every listed server in **one**
    /// concurrent round of single-item batches, skipping servers whose
    /// advertisement is already fresh. Unreachable or denying servers
    /// are silently left uncached — the caller's next move decides how
    /// to treat them.
    pub fn ensure_hellos(&self, servers: &[EndpointId]) {
        let missing: Vec<EndpointId> = servers
            .iter()
            .copied()
            .filter(|s| self.peek_hello(*s).is_none())
            .collect();
        if missing.is_empty() {
            return;
        }
        self.stats.lock().hello_misses += missing.len() as u64;
        let calls = missing.iter().map(|s| (*s, vec![Request::Hello])).collect();
        // Results are absorbed into the cache by batch_parallel.
        let _ = self.batch_parallel(calls);
    }

    // ----------------------------------------------------------------
    // Coverage cache (query-planner pruning state).
    // ----------------------------------------------------------------

    /// Stores a server's advertised coverage summary, preserving the
    /// session's own empty-answer refinement across re-advertisements.
    /// A fresh hello *without* coverage still refreshes the entry (the
    /// advertisement is authoritative: the server no longer commits to
    /// a summary, so the cached one is dropped).
    pub fn store_coverage(&self, from: EndpointId, summary: Option<CoverageSummary>) {
        let now = self.transport.now_us();
        let evicted = {
            let mut coverage = self.coverage.lock();
            let streaks = coverage
                .get(&from)
                .map(|cached| cached.value.empty_streaks.clone())
                .unwrap_or_default();
            coverage.insert(
                from,
                Cached {
                    value: CoverageState {
                        summary,
                        empty_streaks: streaks,
                    },
                    expires_us: now.saturating_add(self.ttl_us()),
                    seq: self.cache_seq.fetch_add(1, Ordering::Relaxed),
                },
            );
            evict_to_cap(&mut coverage, self.cache_cap(), now)
        };
        if evicted > 0 {
            self.stats.lock().coverage_evictions += evicted;
        }
    }

    /// The fresh coverage state for `server`, if any. Expired state is
    /// dropped, not returned: a planner MUST NOT prune on a stale
    /// summary (spec §13.3), so staleness and absence look identical.
    pub fn cached_coverage(&self, server: EndpointId) -> Option<CoverageState> {
        let now = self.transport.now_us();
        let mut coverage = self.coverage.lock();
        match coverage.get(&server) {
            Some(cached) if cached.expires_us > now => Some(cached.value.clone()),
            Some(_) => {
                coverage.remove(&server);
                None
            }
            None => None,
        }
    }

    /// Refines the coverage state from an observed answer: an empty
    /// answer for `kind` extends the server's consecutive-empty streak,
    /// a non-empty one resets it. Creates the entry when missing, so
    /// pre-coverage servers accumulate the cost signal too. The entry's
    /// expiry is untouched on update — refinement is knowledge *about*
    /// the advertisement, not a re-advertisement.
    pub fn note_answer(&self, server: EndpointId, kind: &str, empty: bool) {
        let now = self.transport.now_us();
        let evicted = {
            let mut coverage = self.coverage.lock();
            match coverage.get_mut(&server) {
                Some(cached) if cached.expires_us > now => {
                    let streak = cached
                        .value
                        .empty_streaks
                        .entry(kind.to_string())
                        .or_insert(0);
                    *streak = if empty { streak.saturating_add(1) } else { 0 };
                    0
                }
                _ => {
                    let mut state = CoverageState::default();
                    state
                        .empty_streaks
                        .insert(kind.to_string(), u32::from(empty));
                    coverage.insert(
                        server,
                        Cached {
                            value: state,
                            expires_us: now.saturating_add(self.ttl_us()),
                            seq: self.cache_seq.fetch_add(1, Ordering::Relaxed),
                        },
                    );
                    evict_to_cap(&mut coverage, self.cache_cap(), now)
                }
            }
        };
        if evicted > 0 {
            self.stats.lock().coverage_evictions += evicted;
        }
    }

    // ----------------------------------------------------------------
    // Discovery cache.
    // ----------------------------------------------------------------

    /// The cached discovery result for a query cell, if fresh. The
    /// view carries plain servers *and* fleet groups; caching the whole
    /// view keeps routing **shard-stable** — repeated requests against
    /// the same cell see the same shard map, so replica choice and the
    /// hello cache stay warm.
    pub fn cached_discovery(&self, cell_raw: u64, expand_neighbors: bool) -> Option<DiscoveryView> {
        let now = self.transport.now_us();
        let mut discoveries = self.discoveries.lock();
        let cached = match discoveries.get(&(cell_raw, expand_neighbors)) {
            Some(cached) if cached.expires_us > now => Some(cached.value.clone()),
            Some(_) => {
                discoveries.remove(&(cell_raw, expand_neighbors));
                None
            }
            None => None,
        };
        drop(discoveries);
        let mut stats = self.stats.lock();
        if cached.is_some() {
            stats.discovery_hits += 1;
        } else {
            // A miss is a miss at lookup time, whether or not the
            // fallback DNS resolution later succeeds and is stored.
            stats.discovery_misses += 1;
        }
        cached
    }

    /// Caches a discovery result for a query cell, evicting
    /// (expired-first) if the insert pushed the cache over the
    /// capacity bound.
    pub fn store_discovery(&self, cell_raw: u64, expand_neighbors: bool, view: DiscoveryView) {
        let now = self.transport.now_us();
        let evicted = {
            let mut discoveries = self.discoveries.lock();
            discoveries.insert(
                (cell_raw, expand_neighbors),
                Cached {
                    value: view,
                    expires_us: now.saturating_add(self.ttl_us()),
                    seq: self.cache_seq.fetch_add(1, Ordering::Relaxed),
                },
            );
            evict_to_cap(&mut discoveries, self.cache_cap(), now)
        };
        if evicted > 0 {
            self.stats.lock().cache_evictions += evicted;
        }
    }

    /// Drops the cached discovery result for one query cell (both the
    /// expanded and unexpanded variants). Called on replica failover:
    /// without an explicit invalidation path a dead replica would keep
    /// being re-consulted from this cache until its 300 s TTL expired —
    /// the next discovery re-resolves (usually from the resolver's own
    /// cache, so the cost is local) and re-selects against the current
    /// dead-list.
    pub fn invalidate_cell(&self, cell_raw: u64) {
        let mut discoveries = self.discoveries.lock();
        discoveries.remove(&(cell_raw, false));
        discoveries.remove(&(cell_raw, true));
    }
}

/// A pipelined scatter round over one [`Session`].
///
/// Each [`ScatterRound::submit`] encodes one batched envelope and puts
/// it on the wire through the transport's non-blocking submit path —
/// the request is in flight *while the caller keeps building the
/// round* (and, on socket backends, while earlier rounds are still
/// draining). [`ScatterRound::collect`] then claims every completion;
/// its wall-clock cost is the slowest branch. Results are positional in
/// submit order, and any `Hello` answers riding in the responses are
/// absorbed into the session's capability cache, exactly as with
/// [`Session::batch_parallel`] (which is now a submit-everything,
/// collect-once round of this API).
///
/// The one-batched-envelope-per-server wire discipline is unchanged:
/// pipelining reorders *waiting*, not traffic.
pub struct ScatterRound<'a> {
    session: &'a Session,
    /// `(server, expected item count, encoded envelope, in-flight
    /// handle)` — the encoded bytes are kept so a `Busy` shed can
    /// re-submit the identical envelope without re-encoding.
    pending: Vec<(EndpointId, usize, Vec<u8>, CallHandle)>,
}

impl ScatterRound<'_> {
    /// Encodes `requests` as one batched envelope to `to` and submits
    /// it, returning the submission's index in the
    /// [`ScatterRound::collect`] result.
    pub fn submit(&mut self, to: EndpointId, requests: Vec<Request>) -> usize {
        let expected = requests.len();
        {
            let mut stats = self.session.stats.lock();
            stats.batches += 1;
            stats.batched_requests += expected as u64;
        }
        let payload = self.session.encode(Request::Batch(requests));
        let handle = self
            .session
            .transport
            .submit(self.session.endpoint, to, payload.clone());
        self.pending.push((to, expected, payload, handle));
        self.pending.len() - 1
    }

    /// Number of envelopes submitted so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Claims every submitted envelope's responses, positionally. Per-
    /// item failures come back as `Response::Error` items inside the
    /// `Ok` lists; a branch errs only when its envelope itself fails.
    /// Branches shed with `Busy` are re-submitted by the session's
    /// backoff loop — while one branch backs off, the others are
    /// already complete or still in flight, so the round still costs
    /// its slowest branch.
    pub fn collect(self) -> Vec<Result<Vec<Response>, ClientError>> {
        self.pending
            .into_iter()
            .map(|(to, expected, payload, handle)| {
                self.session.finish_call(to, payload, expected, handle)
            })
            .collect()
    }
}

// --------------------------------------------------------------------
// Response-unwrap helpers shared by every provider implementation.
// --------------------------------------------------------------------

/// The single response of a one-item batch.
pub(crate) fn take_one(
    responses: Vec<Response>,
    expected: &'static str,
) -> Result<Response, ClientError> {
    responses
        .into_iter()
        .next()
        .ok_or_else(|| ClientError::Protocol(format!("expected {expected}, got empty batch")))
}

pub(crate) fn expect_nearest(response: &Response) -> Result<NodeId, ClientError> {
    match response {
        Response::NearestNode {
            node: Some((id, _)),
        } => Ok(NodeId(*id)),
        Response::NearestNode { node: None } => {
            Err(ClientError::NotFound("server has no routable nodes".into()))
        }
        other => Err(unexpected("NearestNode", other)),
    }
}

pub(crate) fn expect_route(response: Response) -> Result<WireRoute, ClientError> {
    match response {
        Response::Route { route: Some(route) } => Ok(route),
        Response::Route { route: None } => Err(ClientError::NotFound("no path on server".into())),
        other => Err(unexpected("Route", &other)),
    }
}

pub(crate) fn expect_matrix(response: Response) -> Result<Vec<Vec<f64>>, ClientError> {
    match response {
        Response::RouteMatrix { costs } => Ok(costs),
        other => Err(unexpected("RouteMatrix", &other)),
    }
}

/// Maps a response of the wrong kind to the matching [`ClientError`].
pub(crate) fn unexpected(expected: &str, got: &Response) -> ClientError {
    match got {
        Response::Error { code, message } => ClientError::Server {
            server_id: String::new(),
            code: *code,
            message: message.clone(),
        },
        other => ClientError::Protocol(format!("expected {expected}, got {other:?}")),
    }
}

pub(crate) fn unexpected_opt(expected: &str, got: Option<Response>) -> ClientError {
    match got {
        Some(response) => unexpected(expected, &response),
        None => ClientError::Protocol(format!("expected {expected}, got empty batch")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflame_mapserver::protocol::Response;
    use openflame_netsim::{SimNet, SimTransport};

    #[test]
    fn expect_all_reports_partial_failure() {
        let ok = Response::PatchApplied { version: 1 };
        let err = Response::Error {
            code: 1,
            message: "denied".into(),
        };
        let result = Session::expect_all(vec![ok.clone(), err, ok]);
        let Err(ClientError::PartialFailure {
            succeeded,
            failures,
        }) = result
        else {
            panic!("expected partial failure");
        };
        assert_eq!(succeeded, 2);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 1);
    }

    #[test]
    fn expect_all_passes_clean_batches() {
        let ok = Response::PatchApplied { version: 1 };
        assert_eq!(Session::expect_all(vec![ok.clone()]).unwrap(), vec![ok]);
    }

    #[test]
    fn gather_all_preserves_branch_errors() {
        let ok = vec![Response::PatchApplied { version: 1 }];
        let results = vec![
            Ok(ok.clone()),
            Err(ClientError::Network(
                "endpoint EndpointId(7) is down".into(),
            )),
        ];
        let Err(ClientError::PartialFailure {
            succeeded,
            failures,
        }) = Session::gather_all(results)
        else {
            panic!("expected partial failure");
        };
        assert_eq!(succeeded, 1);
        assert_eq!(failures[0].0, 1);
        assert!(failures[0].1.to_string().contains("down"));
        // Clean rounds pass through.
        assert_eq!(Session::gather_all(vec![Ok(ok.clone())]).unwrap(), vec![ok]);
    }

    fn stub_hello(id: u64) -> HelloInfo {
        HelloInfo {
            server_id: format!("stub-{id}"),
            map_name: "cache-test".into(),
            services: vec!["hello".into()],
            localization_techs: Vec::new(),
            anchored: false,
            anchor: None,
            portals: Vec::new(),
            version: 1,
            coverage: None,
        }
    }

    #[test]
    fn session_caches_stay_bounded_under_a_many_cell_tour() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport.clone(), endpoint, Principal::anonymous());
        session.set_cache_cap(8);
        // Tour 100 cells (each with its own nearby server): without a
        // bound both caches would hold all 100 entries forever.
        for cell in 0..100u64 {
            transport.advance_us(1_000);
            session.store_discovery(cell, true, DiscoveryView::default());
            session.store_hello(EndpointId(1_000 + cell), stub_hello(cell));
        }
        let stats = session.stats();
        assert_eq!(stats.discovery_cache_len, 8);
        assert_eq!(stats.hello_cache_len, 8);
        assert_eq!(stats.cache_evictions, 2 * (100 - 8));
        // The freshest knowledge survived; the start of the tour aged
        // out.
        assert!(session.cached_discovery(99, true).is_some());
        assert!(session.cached_discovery(0, true).is_none());
        assert!(session.cached_hello(EndpointId(1_099)).is_some());
        assert!(session.cached_hello(EndpointId(1_000)).is_none());
    }

    #[test]
    fn expired_entries_are_evicted_before_live_ones() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport.clone(), endpoint, Principal::anonymous());
        session.set_cache_cap(4);
        // Two entries that will be long dead...
        session.set_ttl_us(1_000);
        session.store_discovery(1, false, DiscoveryView::default());
        session.store_discovery(2, false, DiscoveryView::default());
        transport.advance_us(10_000);
        // ...then four live ones, overflowing the cap of 4.
        session.set_ttl_us(DEFAULT_TTL_US);
        for cell in 10..14u64 {
            session.store_discovery(cell, false, DiscoveryView::default());
        }
        // The expired pair was purged; every live entry kept its slot.
        let stats = session.stats();
        assert_eq!(stats.discovery_cache_len, 4);
        assert_eq!(stats.cache_evictions, 2);
        for cell in 10..14u64 {
            assert!(
                session.cached_discovery(cell, false).is_some(),
                "live cell {cell} must not be displaced by expired entries"
            );
        }
    }

    #[test]
    fn cache_len_stats_count_live_entries_only() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport.clone(), endpoint, Principal::anonymous());
        session.set_ttl_us(1_000);
        for cell in 0..3u64 {
            session.store_discovery(cell, false, DiscoveryView::default());
            session.store_hello(EndpointId(100 + cell), stub_hello(cell));
        }
        let stats = session.stats();
        assert_eq!(stats.hello_cache_len, 3);
        assert_eq!(stats.discovery_cache_len, 3);
        // Past the TTL the entries still sit in the maps (eviction only
        // runs on insert-over-cap), but the snapshot must report cached
        // *knowledge*, not dead weight — mirroring the resolver's
        // live-only `cache_len`.
        transport.advance_us(2_000);
        let stats = session.stats();
        assert_eq!(stats.hello_cache_len, 0);
        assert_eq!(stats.discovery_cache_len, 0);
        assert_eq!(stats.cache_evictions, 0, "nothing was evicted, only aged");
        // A fresh insert is counted again.
        session.set_ttl_us(DEFAULT_TTL_US);
        session.store_hello(EndpointId(7), stub_hello(7));
        assert_eq!(session.stats().hello_cache_len, 1);
    }

    #[test]
    fn invalidate_cell_drops_both_expansion_variants() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport, endpoint, Principal::anonymous());
        session.store_discovery(7, false, DiscoveryView::default());
        session.store_discovery(7, true, DiscoveryView::default());
        session.store_discovery(8, true, DiscoveryView::default());
        session.invalidate_cell(7);
        assert!(session.cached_discovery(7, false).is_none());
        assert!(session.cached_discovery(7, true).is_none());
        assert!(
            session.cached_discovery(8, true).is_some(),
            "other cells must be untouched"
        );
    }

    fn stub_coverage(n: u64) -> CoverageSummary {
        CoverageSummary {
            kinds: vec![("search".into(), n)],
            extent: None,
        }
    }

    #[test]
    fn coverage_cache_is_bounded_live_counted_and_separately_metered() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport.clone(), endpoint, Principal::anonymous());
        session.set_cache_cap(8);
        for n in 0..100u64 {
            transport.advance_us(1_000);
            session.store_coverage(EndpointId(1_000 + n), Some(stub_coverage(n)));
        }
        let stats = session.stats();
        assert_eq!(stats.coverage_cache_len, 8);
        assert_eq!(stats.coverage_evictions, 100 - 8);
        assert_eq!(
            stats.cache_evictions, 0,
            "coverage pressure must not leak into the hello/discovery counter"
        );
        assert!(session.cached_coverage(EndpointId(1_099)).is_some());
        assert!(session.cached_coverage(EndpointId(1_000)).is_none());
        // Live-only lens: aged-out entries are dead weight, not
        // knowledge.
        session.set_ttl_us(1_000);
        session.store_coverage(EndpointId(5), Some(stub_coverage(5)));
        transport.advance_us(2_000);
        assert!(session.cached_coverage(EndpointId(5)).is_none());
        assert!(session.stats().coverage_cache_len < 9);
    }

    #[test]
    fn note_answer_tracks_consecutive_empty_streaks() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport, endpoint, Principal::anonymous());
        let server = EndpointId(9);
        // Works even for servers that never advertised coverage.
        session.note_answer(server, "search", true);
        session.note_answer(server, "search", true);
        let state = session.cached_coverage(server).unwrap();
        assert_eq!(state.summary, None);
        assert_eq!(state.empty_streaks.get("search"), Some(&2));
        // A non-empty answer resets the streak; other kinds untouched.
        session.note_answer(server, "geocode", true);
        session.note_answer(server, "search", false);
        let state = session.cached_coverage(server).unwrap();
        assert_eq!(state.empty_streaks.get("search"), Some(&0));
        assert_eq!(state.empty_streaks.get("geocode"), Some(&1));
        // A fresh advertisement keeps the refinement.
        session.store_coverage(server, Some(stub_coverage(3)));
        let state = session.cached_coverage(server).unwrap();
        assert_eq!(state.summary, Some(stub_coverage(3)));
        assert_eq!(state.empty_streaks.get("geocode"), Some(&1));
    }

    #[test]
    fn purge_endpoint_drops_hello_and_coverage_state() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Session::new(transport, endpoint, Principal::anonymous());
        let dead = EndpointId(70);
        let alive = EndpointId(71);
        session.store_hello(dead, stub_hello(70));
        session.store_hello(alive, stub_hello(71));
        session.store_coverage(dead, Some(stub_coverage(1)));
        session.store_coverage(alive, Some(stub_coverage(2)));
        session.purge_endpoint(dead);
        assert!(session.cached_hello(dead).is_none());
        assert!(session.cached_coverage(dead).is_none());
        assert!(
            session.cached_hello(alive).is_some() && session.cached_coverage(alive).is_some(),
            "other endpoints must be untouched"
        );
    }

    /// A sim service that sheds the first `busy_first` envelopes with
    /// `Busy { retry_after_us: 500 }`, then answers each batch
    /// positionally.
    fn flaky_busy_server(
        transport: &Arc<dyn openflame_netsim::Transport>,
        busy_first: u64,
    ) -> EndpointId {
        let server = transport.register("busy-server", None);
        let calls = Arc::new(AtomicU64::new(0));
        transport.set_service(
            server,
            Arc::new(move |_from: EndpointId, payload: &[u8]| {
                if calls.fetch_add(1, Ordering::SeqCst) < busy_first {
                    return to_bytes(&Response::Busy {
                        retry_after_us: 500,
                    })
                    .to_vec();
                }
                let env: Envelope = from_bytes(payload).unwrap();
                let Request::Batch(items) = env.request else {
                    panic!("session always sends batches");
                };
                let answers: Vec<Response> = items
                    .iter()
                    .map(|_| Response::PatchApplied { version: 1 })
                    .collect();
                to_bytes(&Response::Batch(answers)).to_vec()
            }),
        );
        server
    }

    #[test]
    fn busy_sheds_are_retried_transparently() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let client = transport.register("client", None);
        let server = flaky_busy_server(&transport, 2);
        let session = Session::new(transport, client, Principal::anonymous());
        let responses = session.batch(server, vec![Request::Hello]).unwrap();
        assert_eq!(responses.len(), 1);
        let stats = session.stats();
        assert_eq!(stats.busy_rejections, 2);
        assert_eq!(stats.busy_retries, 2);
        assert_eq!(
            stats.batches, 1,
            "retries are wire attempts, not new logical batches"
        );
    }

    #[test]
    fn busy_budget_exhaustion_surfaces_overloaded() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let client = transport.register("client", None);
        let server = flaky_busy_server(&transport, u64::MAX);
        let session = Session::new(transport, client, Principal::anonymous());
        let err = session.batch(server, vec![Request::Hello]).unwrap_err();
        assert_eq!(
            err,
            ClientError::Overloaded {
                retry_after_us: 500
            }
        );
        let stats = session.stats();
        assert_eq!(stats.busy_rejections, u64::from(BUSY_RETRY_BUDGET) + 1);
        assert_eq!(stats.busy_retries, u64::from(BUSY_RETRY_BUDGET));
    }

    #[test]
    fn scatter_round_retries_busy_branches_and_folds_exhaustion() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let client = transport.register("client", None);
        let healthy = flaky_busy_server(&transport, 0);
        let recovering = flaky_busy_server(&transport, 1);
        let wedged = flaky_busy_server(&transport, u64::MAX);
        let session = Session::new(transport, client, Principal::anonymous());
        let results = session.batch_parallel(vec![
            (healthy, vec![Request::Hello]),
            (recovering, vec![Request::Hello]),
            (wedged, vec![Request::Hello]),
        ]);
        assert!(results[0].is_ok());
        assert!(results[1].is_ok(), "one shed then served: absorbed");
        assert_eq!(
            results[2],
            Err(ClientError::Overloaded {
                retry_after_us: 500
            })
        );
        // Exhaustion folds into PartialFailure like any branch failure.
        let Err(ClientError::PartialFailure {
            succeeded,
            failures,
        }) = Session::gather_all(results)
        else {
            panic!("expected partial failure");
        };
        assert_eq!(succeeded, 2);
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0].1, ClientError::Overloaded { .. }));
    }

    #[test]
    fn busy_backoff_is_deterministic_capped_and_growing() {
        let a = busy_backoff_us(2_000, 0, EndpointId(1), EndpointId(2));
        assert_eq!(a, busy_backoff_us(2_000, 0, EndpointId(1), EndpointId(2)));
        assert!(
            busy_backoff_us(2_000, 3, EndpointId(1), EndpointId(2)) > a,
            "later attempts wait longer"
        );
        // A hostile hint cannot park the client past the cap + jitter.
        for attempt in 0..40 {
            assert!(
                busy_backoff_us(u64::MAX, attempt, EndpointId(1), EndpointId(2))
                    <= BUSY_BACKOFF_CAP_US + BUSY_BACKOFF_CAP_US / 4
            );
        }
        // Distinct clients hammering one server desynchronize.
        assert_ne!(a, busy_backoff_us(2_000, 0, EndpointId(9), EndpointId(2)));
    }

    #[test]
    fn ttl_and_principal_adjust_through_shared_reference() {
        let transport = SimTransport::shared(&SimNet::new(1));
        let endpoint = transport.register("client", None);
        let session = Arc::new(Session::new(transport, endpoint, Principal::anonymous()));
        let shared = session.clone();
        shared.set_ttl_us(42);
        assert_eq!(session.ttl_us(), 42);
        shared.set_principal(Principal::user("a@b.c"));
        assert_eq!(session.principal(), Principal::user("a@b.c"));
    }
}
