//! Incremental map updates.
//!
//! Federated map management (paper §1: "scalability of map management") means
//! each provider edits its own map independently. A [`MapPatch`] is the
//! unit of such an edit: a batch of element upserts and removals tagged
//! with the version it produces. Experiment E9 measures update
//! visibility latency and throughput by pushing patches through map
//! servers, comparing against a centralized ingestion queue.

use crate::element::{Node, NodeId, Relation, RelationId, Way, WayId};
use crate::{MapDocument, MapError};

/// A batch of edits bringing a map from `base_version` to
/// `base_version + 1`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapPatch {
    /// The document version this patch applies on top of.
    pub base_version: u64,
    /// Nodes to insert or replace.
    pub upsert_nodes: Vec<Node>,
    /// Ways to insert or replace.
    pub upsert_ways: Vec<Way>,
    /// Relations to insert or replace.
    pub upsert_relations: Vec<Relation>,
    /// Nodes to delete.
    pub remove_nodes: Vec<NodeId>,
    /// Ways to delete.
    pub remove_ways: Vec<WayId>,
    /// Relations to delete.
    pub remove_relations: Vec<RelationId>,
}

impl MapPatch {
    /// An empty patch against the given base version.
    pub fn new(base_version: u64) -> Self {
        Self {
            base_version,
            ..Default::default()
        }
    }

    /// Whether the patch contains no edits.
    pub fn is_empty(&self) -> bool {
        self.upsert_nodes.is_empty()
            && self.upsert_ways.is_empty()
            && self.upsert_relations.is_empty()
            && self.remove_nodes.is_empty()
            && self.remove_ways.is_empty()
            && self.remove_relations.is_empty()
    }

    /// Total number of edits in the patch.
    pub fn edit_count(&self) -> usize {
        self.upsert_nodes.len()
            + self.upsert_ways.len()
            + self.upsert_relations.len()
            + self.remove_nodes.len()
            + self.remove_ways.len()
            + self.remove_relations.len()
    }

    /// Applies the patch to `map`.
    ///
    /// The patch is rejected wholesale (map untouched) if the base
    /// version does not match; element-level failures surface after the
    /// removals/upserts they depend on, so ordering within a patch is:
    /// relation removals, way removals, node removals, node upserts, way
    /// upserts, relation upserts. On success the map version is bumped.
    pub fn apply(&self, map: &mut MapDocument) -> Result<(), MapError> {
        if map.meta().version != self.base_version {
            return Err(MapError::PatchConflict(format!(
                "patch base {} but map is at {}",
                self.base_version,
                map.meta().version
            )));
        }
        for id in &self.remove_relations {
            map.remove_relation(*id)?;
        }
        for id in &self.remove_ways {
            map.remove_way(*id)?;
        }
        for id in &self.remove_nodes {
            map.remove_node(*id)?;
        }
        for node in &self.upsert_nodes {
            if map.node(node.id).is_some() {
                map.move_node(node.id, node.pos)?;
                map.set_node_tags(node.id, node.tags.clone())?;
            } else {
                map.insert_node(node.clone())?;
            }
        }
        for way in &self.upsert_ways {
            if map.way(way.id).is_some() {
                map.remove_way(way.id)?;
            }
            map.insert_way(way.clone())?;
        }
        for rel in &self.upsert_relations {
            if map.relation(rel.id).is_some() {
                map.remove_relation(rel.id)?;
            }
            map.insert_relation(rel.clone())?;
        }
        map.bump_version();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GeoReference, Tags};
    use openflame_geo::{LatLng, Point2};

    fn base_map() -> MapDocument {
        let mut m = MapDocument::new(
            "patch-test",
            "tester",
            GeoReference::Anchored {
                origin: LatLng::new(40.0, -80.0).unwrap(),
            },
        );
        let a = m.add_node(Point2::new(0.0, 0.0), Tags::new().with("name", "A"));
        let b = m.add_node(Point2::new(10.0, 0.0), Tags::new());
        m.add_way(vec![a, b], Tags::new().with("highway", "path"))
            .unwrap();
        m
    }

    #[test]
    fn empty_patch_bumps_version() {
        let mut m = base_map();
        assert_eq!(m.meta().version, 0);
        MapPatch::new(0).apply(&mut m).unwrap();
        assert_eq!(m.meta().version, 1);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut m = base_map();
        let p = MapPatch::new(5);
        assert!(matches!(p.apply(&mut m), Err(MapError::PatchConflict(_))));
        assert_eq!(m.meta().version, 0, "map untouched");
    }

    #[test]
    fn upsert_inserts_and_updates() {
        let mut m = base_map();
        let existing = m.nodes().next().unwrap().id;
        let mut p = MapPatch::new(0);
        // Update an existing node's tags and position.
        p.upsert_nodes.push(Node::new(
            existing,
            Point2::new(1.0, 1.0),
            Tags::new().with("name", "A2"),
        ));
        // Insert a brand-new node.
        p.upsert_nodes
            .push(Node::new(NodeId(500), Point2::new(7.0, 7.0), Tags::new()));
        p.apply(&mut m).unwrap();
        assert_eq!(m.node(existing).unwrap().tags.get("name"), Some("A2"));
        assert_eq!(m.node(existing).unwrap().pos, Point2::new(1.0, 1.0));
        assert!(m.node(NodeId(500)).is_some());
        assert_eq!(m.meta().version, 1);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn remove_node_via_patch() {
        let mut m = base_map();
        let lone = m.add_node(Point2::new(99.0, 99.0), Tags::new());
        let mut p = MapPatch::new(0);
        p.remove_nodes.push(lone);
        p.apply(&mut m).unwrap();
        assert!(m.node(lone).is_none());
    }

    #[test]
    fn way_upsert_replaces_node_list() {
        let mut m = base_map();
        let way = m.ways().next().unwrap().clone();
        let c = m.add_node(Point2::new(20.0, 0.0), Tags::new());
        let mut new_way = way.clone();
        new_way.nodes.push(c);
        let mut p = MapPatch::new(0);
        p.upsert_ways.push(new_way);
        p.apply(&mut m).unwrap();
        assert_eq!(m.way(way.id).unwrap().nodes.len(), 3);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn sequential_patches_advance_versions() {
        let mut m = base_map();
        for v in 0..5 {
            let mut p = MapPatch::new(v);
            p.upsert_nodes.push(Node::new(
                NodeId(1000 + v),
                Point2::new(v as f64, 0.0),
                Tags::new(),
            ));
            p.apply(&mut m).unwrap();
        }
        assert_eq!(m.meta().version, 5);
        assert_eq!(m.node_count(), 2 + 5);
        // A stale patch now fails.
        assert!(MapPatch::new(3).apply(&mut m).is_err());
    }

    #[test]
    fn edit_count_and_is_empty() {
        let mut p = MapPatch::new(0);
        assert!(p.is_empty());
        p.remove_ways.push(WayId(1));
        p.upsert_nodes
            .push(Node::new(NodeId(1), Point2::ZERO, Tags::new()));
        assert!(!p.is_empty());
        assert_eq!(p.edit_count(), 2);
    }
}
