//! Property-based round-trip coverage for the batched wire protocol:
//! arbitrary flat batches of requests and responses must survive
//! encode → decode bit-exactly inside an [`Envelope`].

use openflame_codec::{from_bytes, to_bytes};
use openflame_geo::Point2;
use openflame_mapdata::{ElementId, NodeId};
use openflame_mapserver::protocol::{
    Envelope, Request, Response, WireGeocodeHit, WireSearchResult,
};
use openflame_mapserver::Principal;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point2> {
    (-10_000.0f64..10_000.0, -10_000.0f64..10_000.0).prop_map(|(x, y)| Point2::new(x, y))
}

/// One non-batch request, arbitrary enough to cover every field shape
/// that appears inside batches on the real fan-out paths.
fn arb_inner_request() -> impl Strategy<Value = Request> {
    (
        0u8..5,
        "[a-z0-9 ]{0,12}",
        arb_point(),
        0.0f64..5_000.0,
        proptest::collection::vec(any::<u64>(), 0..6),
        1u32..20,
    )
        .prop_map(|(kind, text, pos, radius, nodes, k)| match kind {
            0 => Request::Hello,
            1 => Request::Geocode { query: text, k },
            2 => Request::Search {
                query: text,
                center: Some(pos),
                radius_m: radius,
                k,
            },
            3 => Request::RouteMatrix {
                entries: nodes.clone(),
                exits: nodes,
            },
            _ => Request::NearestNode { pos },
        })
}

fn arb_inner_response() -> impl Strategy<Value = Response> {
    (
        0u8..5,
        "[a-z0-9 ]{0,12}",
        arb_point(),
        any::<f64>().prop_filter("finite", |f| f.is_finite()),
        proptest::collection::vec(any::<u64>(), 0..6),
        any::<u64>(),
    )
        .prop_map(|(kind, text, pos, score, nodes, version)| match kind {
            0 => Response::Geocode {
                hits: vec![WireGeocodeHit {
                    element: ElementId::Node(NodeId(version)),
                    pos,
                    score,
                    label: text,
                }],
            },
            1 => Response::Search {
                results: vec![WireSearchResult {
                    element: ElementId::Node(NodeId(version)),
                    pos,
                    score,
                    distance_m: score.abs(),
                    label: text,
                }],
            },
            2 => Response::RouteMatrix {
                costs: vec![nodes.iter().map(|n| *n as f64).collect()],
            },
            3 => Response::Error {
                code: (version % 250) as u8,
                message: text,
            },
            _ => Response::PatchApplied { version },
        })
}

proptest! {
    #[test]
    fn request_batches_round_trip(requests in proptest::collection::vec(arb_inner_request(), 0..12)) {
        let env = Envelope {
            principal: Principal::user_via_app("prop@test", "batch"),
            request: Request::Batch(requests.clone()),
        };
        let back = from_bytes::<Envelope>(&to_bytes(&env)).unwrap();
        prop_assert_eq!(back.request, Request::Batch(requests));
    }

    #[test]
    fn response_batches_round_trip(responses in proptest::collection::vec(arb_inner_response(), 0..12)) {
        let batch = Response::Batch(responses);
        let back = from_bytes::<Response>(&to_bytes(&batch)).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn batched_and_sequential_encodings_stay_decodable(requests in proptest::collection::vec(arb_inner_request(), 1..8)) {
        // A batch is never larger than the sum of its parts wrapped in
        // individual envelopes — the amortization the client relies on.
        let principal = Principal::anonymous();
        let batch_len = to_bytes(&Envelope {
            principal: principal.clone(),
            request: Request::Batch(requests.clone()),
        })
        .len();
        let split_len: usize = requests
            .iter()
            .map(|req| {
                to_bytes(&Envelope {
                    principal: principal.clone(),
                    request: req.clone(),
                })
                .len()
            })
            .sum();
        prop_assert!(batch_len <= split_len + 2, "batch {batch_len} vs split {split_len}");
    }
}
