//! Compact binary wire format for OpenFLAME RPC messages.
//!
//! Every byte that crosses the simulated network is produced by this
//! crate, which keeps the byte accounting in experiments honest: message
//! sizes reflect a realistic varint-packed encoding rather than the size
//! of in-memory structs.
//!
//! The format is deliberately simple — a protobuf-flavored scheme without
//! schema evolution:
//!
//! - unsigned integers as LEB128 varints,
//! - signed integers zigzag-encoded then varint-packed,
//! - floats as fixed 8-byte IEEE-754 little-endian bits,
//! - strings and byte blobs as varint length + payload,
//! - sequences as varint count + elements,
//! - options as a presence byte + payload.
//!
//! Types opt in by implementing [`Wire`]; [`to_bytes`] / [`from_bytes`]
//! are the entry points, and `from_bytes` rejects trailing garbage.

pub mod framing;
pub mod packet;
pub mod reader;
pub mod writer;

pub use framing::{read_frame, write_frame, Frame, FRAME_HEADER_LEN, FRAME_VERSION};
pub use packet::{
    decode_packet, encode_packet, Packet, PacketType, DATAGRAM_MTU, PACKET_HEADER_LEN,
    PACKET_VERSION, PAYLOAD_MTU,
};
pub use reader::Reader;
pub use writer::Writer;

use bytes::Bytes;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended in the middle of a value.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A varint ran past 10 bytes (would overflow 64 bits).
    VarintOverflow,
    /// A string payload was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the sanity limit.
    LengthTooLarge(u64),
    /// An enum discriminant or presence byte had an unknown value.
    InvalidTag {
        /// Context for the failed decode (type name).
        context: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// Decoding finished but bytes remained in the buffer.
    TrailingBytes(usize),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected EOF: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::InvalidUtf8 => write!(f, "string payload is not valid UTF-8"),
            CodecError::LengthTooLarge(n) => write!(f, "length prefix {n} exceeds limit"),
            CodecError::InvalidTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity cap on any single length prefix (64 MiB), preventing a corrupt
/// length byte from triggering a huge allocation.
pub const MAX_LENGTH: u64 = 64 * 1024 * 1024;

/// A type that can be encoded to and decoded from the wire format.
pub trait Wire: Sized {
    /// Appends the encoding of `self` to the writer.
    fn encode(&self, w: &mut Writer);

    /// Decodes a value from the reader, consuming exactly its bytes.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value to a standalone byte buffer.
pub fn to_bytes<T: Wire>(value: &T) -> Bytes {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.finish()
}

/// Decodes a value from a byte buffer, requiring the buffer to be fully
/// consumed.
pub fn from_bytes<T: Wire>(buf: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// The encoded size of a value in bytes.
pub fn encoded_len<T: Wire>(value: &T) -> usize {
    to_bytes(value).len()
}

// ------------------------------------------------------------------
// Wire implementations for primitives and standard containers.
// ------------------------------------------------------------------

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag {
                context: "bool",
                tag: tag as u64,
            }),
        }
    }
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_u8()
    }
}

impl Wire for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = r.read_varint()?;
        u16::try_from(v).map_err(|_| CodecError::InvalidTag {
            context: "u16",
            tag: v,
        })
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = r.read_varint()?;
        u32::try_from(v).map_err(|_| CodecError::InvalidTag {
            context: "u32",
            tag: v,
        })
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_varint()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = r.read_varint()?;
        usize::try_from(v).map_err(|_| CodecError::LengthTooLarge(v))
    }
}

impl Wire for i32 {
    fn encode(&self, w: &mut Writer) {
        w.put_zigzag(*self as i64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = r.read_zigzag()?;
        i32::try_from(v).map_err(|_| CodecError::InvalidTag {
            context: "i32",
            tag: v as u64,
        })
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut Writer) {
        w.put_zigzag(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_zigzag()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_f64()
    }
}

impl Wire for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_f32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_f32()
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.read_string()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.read_length()?;
        // Guard against a corrupt count causing a huge reservation: cap
        // the initial reservation by what could plausibly remain.
        let mut v = Vec::with_capacity(n.min(r.remaining().max(1)));
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(CodecError::InvalidTag {
                context: "Option",
                tag: tag as u64,
            }),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert!(from_bytes::<bool>(&to_bytes(&true)).unwrap());
        assert_eq!(from_bytes::<u8>(&to_bytes(&200u8)).unwrap(), 200);
        assert_eq!(
            from_bytes::<u32>(&to_bytes(&7_000_000u32)).unwrap(),
            7_000_000
        );
        assert_eq!(from_bytes::<u64>(&to_bytes(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_bytes::<i64>(&to_bytes(&-42i64)).unwrap(), -42);
        assert_eq!(from_bytes::<i32>(&to_bytes(&i32::MIN)).unwrap(), i32::MIN);
        assert_eq!(from_bytes::<f64>(&to_bytes(&-1.5f64)).unwrap(), -1.5);
        assert_eq!(
            from_bytes::<String>(&to_bytes(&"grüß dich".to_string())).unwrap(),
            "grüß dich"
        );
    }

    #[test]
    fn small_values_encode_small() {
        assert_eq!(to_bytes(&5u64).len(), 1);
        assert_eq!(to_bytes(&300u64).len(), 2);
        assert_eq!(
            to_bytes(&(-3i64)).len(),
            1,
            "zigzag keeps small negatives small"
        );
        assert_eq!(to_bytes(&String::new()).len(), 1);
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3, 1000, u32::MAX];
        assert_eq!(from_bytes::<Vec<u32>>(&to_bytes(&v)).unwrap(), v);
        let o: Option<String> = Some("hello".into());
        assert_eq!(from_bytes::<Option<String>>(&to_bytes(&o)).unwrap(), o);
        let n: Option<String> = None;
        assert_eq!(from_bytes::<Option<String>>(&to_bytes(&n)).unwrap(), n);
        let t = (5u32, "x".to_string(), -9i64);
        assert_eq!(from_bytes::<(u32, String, i64)>(&to_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = to_bytes(&7u32).to_vec();
        buf.push(0xFF);
        assert_eq!(from_bytes::<u32>(&buf), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_input_rejected() {
        let buf = to_bytes(&"hello world".to_string());
        let err = from_bytes::<String>(&buf[..4]).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }), "{err:?}");
    }

    #[test]
    fn invalid_bool_tag_rejected() {
        assert!(matches!(
            from_bytes::<bool>(&[7]),
            Err(CodecError::InvalidTag {
                context: "bool",
                tag: 7
            })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Length 2, then invalid UTF-8 bytes.
        let buf = [2u8, 0xC0, 0xAF];
        assert_eq!(from_bytes::<String>(&buf), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn narrowing_decode_rejects_out_of_range() {
        let wide = to_bytes(&(u32::MAX as u64 + 1));
        assert!(from_bytes::<u32>(&wide).is_err());
        let wide16 = to_bytes(&70_000u64);
        assert!(from_bytes::<u16>(&wide16).is_err());
    }

    #[test]
    fn corrupt_vec_count_does_not_overallocate() {
        // A count of ~2^60 with a tiny buffer must error, not OOM.
        let mut w = Writer::new();
        w.put_varint(1u64 << 60);
        let buf = w.finish();
        assert!(from_bytes::<Vec<u64>>(&buf).is_err());
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let nan = f64::from_bits(0x7FF8_0000_0000_0001);
        let back = from_bytes::<f64>(&to_bytes(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }
}
