//! Turn-by-turn instruction generation from route geometry.

use openflame_geo::Point2;

/// The kind of maneuver at a point along the route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Maneuver {
    /// Start of the route.
    Depart,
    /// Continue straight (heading change below the turn threshold).
    Straight,
    /// Gentle left (30°–60°).
    SlightLeft,
    /// Normal left (60°–120°).
    Left,
    /// Sharp left (over 120°).
    SharpLeft,
    /// Gentle right.
    SlightRight,
    /// Normal right.
    Right,
    /// Sharp right.
    SharpRight,
    /// End of the route.
    Arrive,
}

/// One instruction: do `maneuver` after traveling `distance_m` from the
/// previous instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The maneuver to perform.
    pub maneuver: Maneuver,
    /// Distance from the previous instruction point, meters.
    pub distance_m: f64,
    /// Index into the route geometry where the maneuver happens.
    pub at_index: usize,
}

/// Heading change (degrees, in `(-180, 180]`, positive = left turn for
/// this convention) between two successive segments.
fn heading_change(a: Point2, b: Point2, c: Point2) -> f64 {
    let h1 = (b.y - a.y).atan2(b.x - a.x);
    let h2 = (c.y - b.y).atan2(c.x - b.x);
    let mut d = (h2 - h1).to_degrees();
    while d > 180.0 {
        d -= 360.0;
    }
    while d <= -180.0 {
        d += 360.0;
    }
    d
}

/// Generates turn-by-turn instructions from route geometry.
///
/// Consecutive straight stretches are merged into the distance of the
/// next real maneuver, so output length is proportional to the number of
/// actual turns.
///
/// # Examples
///
/// ```
/// use openflame_geo::Point2;
/// use openflame_routing::{turn_instructions, Maneuver};
///
/// let path = [
///     Point2::new(0.0, 0.0),
///     Point2::new(10.0, 0.0),
///     Point2::new(10.0, 10.0),
/// ];
/// let steps = turn_instructions(&path);
/// assert_eq!(steps.first().unwrap().maneuver, Maneuver::Depart);
/// assert!(steps.iter().any(|s| s.maneuver == Maneuver::Left));
/// assert_eq!(steps.last().unwrap().maneuver, Maneuver::Arrive);
/// ```
pub fn turn_instructions(path: &[Point2]) -> Vec<Instruction> {
    if path.len() < 2 {
        return Vec::new();
    }
    let mut out = vec![Instruction {
        maneuver: Maneuver::Depart,
        distance_m: 0.0,
        at_index: 0,
    }];
    let mut leg = path[0].distance(path[1]);
    for i in 1..path.len() - 1 {
        let turn = heading_change(path[i - 1], path[i], path[i + 1]);
        let maneuver = match turn {
            t if t.abs() < 30.0 => Maneuver::Straight,
            t if t >= 120.0 => Maneuver::SharpLeft,
            t if t >= 60.0 => Maneuver::Left,
            t if t >= 30.0 => Maneuver::SlightLeft,
            t if t <= -120.0 => Maneuver::SharpRight,
            t if t <= -60.0 => Maneuver::Right,
            _ => Maneuver::SlightRight,
        };
        if maneuver != Maneuver::Straight {
            out.push(Instruction {
                maneuver,
                distance_m: leg,
                at_index: i,
            });
            leg = 0.0;
        }
        leg += path[i].distance(path[i + 1]);
    }
    out.push(Instruction {
        maneuver: Maneuver::Arrive,
        distance_m: leg,
        at_index: path.len() - 1,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_path_has_no_turns() {
        let path: Vec<Point2> = (0..6).map(|i| Point2::new(i as f64 * 10.0, 0.0)).collect();
        let steps = turn_instructions(&path);
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].maneuver, Maneuver::Depart);
        assert_eq!(steps[1].maneuver, Maneuver::Arrive);
        assert!((steps[1].distance_m - 50.0).abs() < 1e-9);
    }

    #[test]
    fn left_and_right_turns_detected() {
        // East, then north (left), then east again (right).
        let path = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 10.0),
            Point2::new(20.0, 10.0),
        ];
        let steps = turn_instructions(&path);
        let kinds: Vec<Maneuver> = steps.iter().map(|s| s.maneuver).collect();
        assert_eq!(
            kinds,
            vec![
                Maneuver::Depart,
                Maneuver::Left,
                Maneuver::Right,
                Maneuver::Arrive
            ]
        );
        // Distances: 10 m to the left turn, 10 m to the right, 10 m to
        // arrival.
        assert!((steps[1].distance_m - 10.0).abs() < 1e-9);
        assert!((steps[2].distance_m - 10.0).abs() < 1e-9);
        assert!((steps[3].distance_m - 10.0).abs() < 1e-9);
    }

    #[test]
    fn slight_and_sharp_classification() {
        // 45° left = slight left.
        let slight = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(17.07, 7.07),
        ];
        assert_eq!(turn_instructions(&slight)[1].maneuver, Maneuver::SlightLeft);
        // 135° right = sharp right.
        let sharp = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(3.0, -7.0),
        ];
        assert_eq!(turn_instructions(&sharp)[1].maneuver, Maneuver::SharpRight);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(turn_instructions(&[]).is_empty());
        assert!(turn_instructions(&[Point2::ZERO]).is_empty());
        let two = turn_instructions(&[Point2::ZERO, Point2::new(5.0, 0.0)]);
        assert_eq!(two.len(), 2);
    }

    #[test]
    fn distances_sum_to_path_length() {
        let path = [
            Point2::new(0.0, 0.0),
            Point2::new(10.0, 0.0),
            Point2::new(10.0, 20.0),
            Point2::new(-5.0, 20.0),
            Point2::new(-5.0, 0.0),
        ];
        let total: f64 = path.windows(2).map(|w| w[0].distance(w[1])).sum();
        let steps = turn_instructions(&path);
        let sum: f64 = steps.iter().map(|s| s.distance_m).sum();
        assert!((sum - total).abs() < 1e-9);
    }
}
