//! Datagram packet header for the QuicLite transport.
//!
//! Stream transports get message boundaries from the length-prefixed
//! [`crate::framing`] codec; a datagram transport gets them from the
//! network but loses ordering and delivery guarantees instead. QuicLite
//! rebuilds those on top of UDP with the load-bearing QUIC ideas —
//! connection ids, packet numbers, acknowledgements, fragmentation —
//! and this module defines the one packet header all of them ride in
//! (version 1):
//!
//! ```text
//! +---------+----------+-------------+---------------+---------------+---------------+------------+---------+
//! | ver: u8 | type: u8 | conn_id: u64| packet_no: u64| frag_ix: u16  | frag_cnt: u16 | len: u16   | payload |
//! +---------+----------+-------------+---------------+---------------+---------------+------------+---------+
//! ```
//!
//! - `conn_id` names the connection. It is chosen by the client,
//!   registered at the server by the `Init` handshake, and reusable for
//!   0-RTT resumption: a client that already completed a handshake with
//!   a server may send `Data` under the same conn id again without a
//!   new `Init` round.
//! - `packet_no` is a per-connection, per-direction monotonic packet
//!   number. Unlike real QUIC, a retransmission reuses the **same**
//!   packet number (the number identifies the packet, not the
//!   transmission), which is what lets receivers deduplicate
//!   retransmitted data with a plain seen-set.
//! - `frag_ix` / `frag_cnt` fragment one framed message
//!   ([`crate::framing`] v2 frame bytes) across packets when it exceeds
//!   [`PAYLOAD_MTU`]. Fragments of one frame occupy **consecutive**
//!   packet numbers, so the reassembly key is
//!   `packet_no - frag_ix` — no extra message id is needed.
//! - `len` counts only the payload and must match the datagram length
//!   exactly; a mismatch marks the datagram corrupt.
//!
//! All integers are little-endian. The full datagram binding
//! (handshake, acknowledgement, retransmission and resumption rules) is
//! specified in `docs/wire-protocol.md` spec §6.

use std::io;

/// The packet format version this codec speaks.
pub const PACKET_VERSION: u8 = 1;

/// Bytes of packet-header overhead per datagram
/// (`u8` version + `u8` type + `u64` conn id + `u64` packet number +
/// `u16` fragment index + `u16` fragment count + `u16` length).
pub const PACKET_HEADER_LEN: usize = 24;

/// Largest datagram QuicLite emits (a conservative, QUIC-flavored MTU
/// that stays well under typical path MTUs).
pub const DATAGRAM_MTU: usize = 1200;

/// Largest frame fragment one packet carries.
pub const PAYLOAD_MTU: usize = DATAGRAM_MTU - PACKET_HEADER_LEN;

/// What a packet is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketType {
    /// Client → server connection open: registers the conn id. Carries
    /// no payload; acknowledged by an [`PacketType::InitAck`] echoing
    /// its packet number.
    Init,
    /// Server → client handshake completion: echoes the `Init`'s packet
    /// number, acting as its acknowledgement.
    InitAck,
    /// One fragment of a framed message. Ack-eliciting: the receiver
    /// answers with an [`PacketType::Ack`] echoing the packet number.
    Data,
    /// Acknowledges one `Data` packet (the echoed number sits in
    /// `packet_no`). Not itself acknowledged or retransmitted.
    Ack,
}

impl PacketType {
    fn to_byte(self) -> u8 {
        match self {
            PacketType::Init => 0,
            PacketType::InitAck => 1,
            PacketType::Data => 2,
            PacketType::Ack => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacketType::Init),
            1 => Some(PacketType::InitAck),
            2 => Some(PacketType::Data),
            3 => Some(PacketType::Ack),
            _ => None,
        }
    }
}

/// One decoded datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// What the packet is for.
    pub ptype: PacketType,
    /// Connection the packet belongs to.
    pub conn_id: u64,
    /// Per-connection monotonic packet number (stable across
    /// retransmissions); for [`PacketType::Ack`] and
    /// [`PacketType::InitAck`], the number being acknowledged.
    pub packet_no: u64,
    /// Index of this fragment within its frame.
    pub frag_index: u16,
    /// Total fragments of the frame (`1` for unfragmented).
    pub frag_count: u16,
    /// The fragment bytes (empty for handshake and ack packets).
    pub payload: Vec<u8>,
}

/// Encodes one datagram.
///
/// # Panics
///
/// Panics if `payload` exceeds [`PAYLOAD_MTU`] — fragmenting is the
/// caller's job and a violation is a transport bug, not wire input.
pub fn encode_packet(
    ptype: PacketType,
    conn_id: u64,
    packet_no: u64,
    frag_index: u16,
    frag_count: u16,
    payload: &[u8],
) -> Vec<u8> {
    assert!(
        payload.len() <= PAYLOAD_MTU,
        "packet payload of {} bytes exceeds the {PAYLOAD_MTU}-byte MTU",
        payload.len()
    );
    let mut buf = Vec::with_capacity(PACKET_HEADER_LEN + payload.len());
    buf.push(PACKET_VERSION);
    buf.push(ptype.to_byte());
    buf.extend_from_slice(&conn_id.to_le_bytes());
    buf.extend_from_slice(&packet_no.to_le_bytes());
    buf.extend_from_slice(&frag_index.to_le_bytes());
    buf.extend_from_slice(&frag_count.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Decodes one datagram.
///
/// Errors with [`io::ErrorKind::InvalidData`] on a short datagram, an
/// unknown version or type byte, a length field that disagrees with the
/// datagram size, or inconsistent fragment fields. Datagram transports
/// drop corrupt packets (the sender retransmits); they never
/// desynchronize the way a corrupt stream would.
pub fn decode_packet(buf: &[u8]) -> io::Result<Packet> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    if buf.len() < PACKET_HEADER_LEN {
        return Err(bad(format!("datagram of {} bytes is too short", buf.len())));
    }
    if buf[0] != PACKET_VERSION {
        return Err(bad(format!("unsupported packet version {}", buf[0])));
    }
    let ptype = PacketType::from_byte(buf[1])
        .ok_or_else(|| bad(format!("unknown packet type {}", buf[1])))?;
    let conn_id = u64::from_le_bytes(buf[2..10].try_into().expect("8 bytes"));
    let packet_no = u64::from_le_bytes(buf[10..18].try_into().expect("8 bytes"));
    let frag_index = u16::from_le_bytes(buf[18..20].try_into().expect("2 bytes"));
    let frag_count = u16::from_le_bytes(buf[20..22].try_into().expect("2 bytes"));
    let len = u16::from_le_bytes(buf[22..24].try_into().expect("2 bytes")) as usize;
    if buf.len() != PACKET_HEADER_LEN + len {
        return Err(bad(format!(
            "length field {len} disagrees with datagram size {}",
            buf.len()
        )));
    }
    if frag_count == 0 || frag_index >= frag_count {
        return Err(bad(format!(
            "fragment {frag_index}/{frag_count} is inconsistent"
        )));
    }
    if (packet_no as u128) < frag_index as u128 {
        return Err(bad(format!(
            "fragment index {frag_index} precedes packet number {packet_no}"
        )));
    }
    Ok(Packet {
        ptype,
        conn_id,
        packet_no,
        frag_index,
        frag_count,
        payload: buf[PACKET_HEADER_LEN..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_type() {
        for (ptype, payload) in [
            (PacketType::Init, Vec::new()),
            (PacketType::InitAck, Vec::new()),
            (PacketType::Data, vec![1, 2, 3]),
            (PacketType::Ack, Vec::new()),
        ] {
            let buf = encode_packet(ptype, 42, 7, 0, 1, &payload);
            let pkt = decode_packet(&buf).unwrap();
            assert_eq!(pkt.ptype, ptype);
            assert_eq!(pkt.conn_id, 42);
            assert_eq!(pkt.packet_no, 7);
            assert_eq!(pkt.frag_index, 0);
            assert_eq!(pkt.frag_count, 1);
            assert_eq!(pkt.payload, payload);
        }
    }

    #[test]
    fn header_len_matches_layout() {
        let buf = encode_packet(PacketType::Data, 1, 2, 0, 1, b"xyz");
        assert_eq!(buf.len(), PACKET_HEADER_LEN + 3);
        assert_eq!(buf[0], PACKET_VERSION);
        assert_eq!(PAYLOAD_MTU + PACKET_HEADER_LEN, DATAGRAM_MTU);
    }

    #[test]
    fn fragment_fields_round_trip() {
        let buf = encode_packet(PacketType::Data, 9, 105, 5, 8, b"chunk");
        let pkt = decode_packet(&buf).unwrap();
        assert_eq!(pkt.frag_index, 5);
        assert_eq!(pkt.frag_count, 8);
        // Reassembly key: consecutive packet numbers per frame.
        assert_eq!(pkt.packet_no - pkt.frag_index as u64, 100);
    }

    #[test]
    fn corrupt_datagrams_rejected() {
        let good = encode_packet(PacketType::Data, 1, 2, 0, 1, b"ok");
        // Truncated.
        assert!(decode_packet(&good[..PACKET_HEADER_LEN - 1]).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(decode_packet(&bad).is_err());
        // Unknown type.
        let mut bad = good.clone();
        bad[1] = 200;
        assert!(decode_packet(&bad).is_err());
        // Length field disagrees with the datagram size.
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_packet(&bad).is_err());
        // Inconsistent fragment fields.
        let mut bad = good.clone();
        bad[20..22].copy_from_slice(&0u16.to_le_bytes());
        assert!(decode_packet(&bad).is_err());
        // Fragment index past the fragment count.
        let mut bad = good;
        bad[18..20].copy_from_slice(&3u16.to_le_bytes());
        assert!(decode_packet(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_is_a_caller_bug() {
        let payload = vec![0u8; PAYLOAD_MTU + 1];
        let _ = encode_packet(PacketType::Data, 1, 2, 0, 1, &payload);
    }
}
