//! City-scale load harness CLI.
//!
//! ```text
//! loadgen [--backend tcp,quiclite] [--sessions 1000] [--rate 2000]
//!         [--duration-ms 2000] [--stores 4] [--endpoints 32]
//!         [--collectors 4] [--seed 7] [--max-depth N] [--json]
//! ```
//!
//! Runs one open-loop trace per named backend and prints either a
//! human table or (with `--json`) one `BENCH_load.json`-schema object
//! per line. Exits non-zero if any run violates the harness sanity
//! contract (unaccounted ops, zero quantiles with traffic served), so
//! CI fails loudly instead of archiving a hollow artifact.

use openflame_loadgen::{run, LoadConfig, LoadReport};
use openflame_netsim::BackendKind;

fn parse_backend(name: &str) -> BackendKind {
    match name {
        "tcp" => BackendKind::Tcp,
        "quiclite" => BackendKind::QuicLite,
        other => {
            eprintln!("unknown backend {other:?} (expected tcp or quiclite)");
            std::process::exit(2);
        }
    }
}

fn print_human(report: &LoadReport) {
    println!(
        "== {} | {} sessions on {} endpoints | offered {:.0}/s for {} ms ==",
        report.backend,
        report.sessions,
        report.client_endpoints,
        report.offered_rate_per_sec,
        report.duration_us / 1_000
    );
    println!(
        "   submitted {} served {} shed {} errors {} | {:.0} ops/s | depth hw {} | {} transport threads / {} process threads",
        report.ops_submitted,
        report.ops_served,
        report.ops_shed,
        report.ops_errors,
        report.throughput_per_sec,
        report.max_dispatch_depth,
        report.transport_worker_threads,
        report.process_threads
    );
    println!(
        "   {:<10} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "op", "served", "shed", "errs", "p50_us", "p99_us", "p999_us", "mean_us"
    );
    for op in &report.per_op {
        println!(
            "   {:<10} {:>8} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
            op.name, op.served, op.shed, op.errors, op.p50_us, op.p99_us, op.p999_us, op.mean_us
        );
    }
}

/// The contract CI's artifact rests on: every op accounted for, and
/// real quantiles wherever traffic was served.
fn check(report: &LoadReport) -> Result<(), String> {
    if report.ops_served + report.ops_shed + report.ops_errors != report.ops_submitted {
        return Err(format!(
            "{}: {} submitted but {}+{}+{} accounted",
            report.backend,
            report.ops_submitted,
            report.ops_served,
            report.ops_shed,
            report.ops_errors
        ));
    }
    if report.ops_served == 0 {
        return Err(format!("{}: nothing served", report.backend));
    }
    for op in &report.per_op {
        if op.served > 0 && (op.p50_us == 0 || op.p50_us > op.p99_us || op.p99_us > op.p999_us) {
            return Err(format!(
                "{}: {} quantiles broken (p50 {} p99 {} p999 {})",
                report.backend, op.name, op.p50_us, op.p99_us, op.p999_us
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut backends = vec![BackendKind::Tcp, BackendKind::QuicLite];
    let mut config = LoadConfig::default();
    let mut json = false;
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("missing value for {}", args[*i - 1]);
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backends = value(&mut i).split(',').map(parse_backend).collect();
            }
            "--sessions" => config.sessions = value(&mut i).parse().expect("--sessions N"),
            "--rate" => config.rate_per_sec = value(&mut i).parse().expect("--rate N"),
            "--duration-ms" => {
                config.duration_us = value(&mut i).parse::<u64>().expect("--duration-ms N") * 1_000;
            }
            "--stores" => config.stores = value(&mut i).parse().expect("--stores N"),
            "--endpoints" => {
                config.client_endpoints = value(&mut i).parse().expect("--endpoints N");
            }
            "--collectors" => config.collectors = value(&mut i).parse().expect("--collectors N"),
            "--seed" => config.seed = value(&mut i).parse().expect("--seed N"),
            "--max-depth" => config.max_depth = Some(value(&mut i).parse().expect("--max-depth N")),
            "--json" => json = true,
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut failed = false;
    for backend in backends {
        let report = run(&LoadConfig {
            backend,
            ..config.clone()
        });
        if json {
            println!("{}", report.to_json());
        } else {
            print_human(&report);
        }
        if let Err(problem) = check(&report) {
            eprintln!("SANITY FAILED: {problem}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
