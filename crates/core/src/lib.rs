//! OpenFLAME: the federated spatial naming system (the paper's
//! contribution).
//!
//! This crate ties the substrates together into the two architectures
//! the paper contrasts:
//!
//! - **Figure 2 — federated**: [`OpenFlameClient`] discovers map servers
//!   through DNS ([`DiscoveryClient`]), then provides every
//!   location-based service of §4 by scattering requests across the
//!   discovered servers and stitching the results on the client
//!   (federated geocode, search, routing with portal stitching,
//!   localization with plausibility selection, tile composition — §5.2).
//! - **Figure 1 — centralized**: [`CentralizedProvider`] serves the same
//!   client API from a single monolithic map, in two flavors:
//!   `public_only` (outdoor data only — the realistic Google-Maps
//!   baseline whose indoor blindness motivates the paper) and
//!   `omniscient` (all data merged — the unrealizable upper bound used
//!   to score federated route quality).
//!
//! [`Deployment`] stands up a complete simulated world — DNS hierarchy,
//! resolver, outdoor provider, one map server per venue — in one call,
//! and [`scenario`] runs the §2 grocery end-to-end scenario on top.

pub mod centralized;
pub mod client;
pub mod deployment;
pub mod discovery;
pub mod scenario;

pub use centralized::CentralizedProvider;
pub use client::{FederatedRoute, OpenFlameClient, RouteLeg};
pub use deployment::{Deployment, DeploymentConfig};
pub use discovery::{DiscoveredServer, DiscoveryClient, DiscoveryStats};
pub use scenario::{run_grocery_scenario, GroceryScenarioReport, ProviderKind};

/// Errors surfaced by the OpenFLAME client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// No map servers were discovered for the location.
    NothingDiscovered(String),
    /// The network failed.
    Network(String),
    /// A server returned an error response.
    Server {
        /// Server id, if known.
        server_id: String,
        /// Error code from the response.
        code: u8,
        /// Error message.
        message: String,
    },
    /// A response could not be decoded or had the wrong kind.
    Protocol(String),
    /// The requested object could not be found.
    NotFound(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NothingDiscovered(msg) => write!(f, "nothing discovered: {msg}"),
            ClientError::Network(msg) => write!(f, "network: {msg}"),
            ClientError::Server {
                server_id,
                code,
                message,
            } => {
                write!(f, "server {server_id} error {code}: {message}")
            }
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClientError::NotFound(msg) => write!(f, "not found: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}
