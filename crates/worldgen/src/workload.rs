//! Experiment workloads: Zipf query locality and walk traces.

use crate::World;
use openflame_geo::{LatLng, Point2};
use rand::Rng;

/// A Zipf-distributed sampler over `n` items with exponent `s`.
///
/// Used to model query locality in the discovery experiments (E2): a
/// few popular places attract most queries, which is what makes DNS
/// caching effective.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over ranks `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0 && s >= 0.0);
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// One sample along a walk trace.
#[derive(Debug, Clone)]
pub struct WalkSample {
    /// Ground-truth geographic position.
    pub geo: LatLng,
    /// Ground-truth position in the city ENU frame.
    pub enu: Point2,
    /// Whether the walker is indoors at this sample.
    pub indoors: bool,
    /// If indoors, the venue index and position in its frame.
    pub venue_local: Option<(usize, Point2)>,
}

/// A ground-truth walk trace for the localization experiments (E6).
#[derive(Debug, Clone)]
pub struct WalkTrace {
    /// Samples at uniform 1 m spacing.
    pub samples: Vec<WalkSample>,
}

impl WalkTrace {
    /// Generates a walk that starts on the street near venue
    /// `venue_idx`'s entrance, approaches it, enters, and walks the
    /// south corridor to the back of the first aisle.
    pub fn into_venue(world: &World, venue_idx: usize, approach_m: f64) -> WalkTrace {
        let venue = &world.venues[venue_idx];
        let frame = world.city_frame();
        let entrance_local = venue
            .map
            .node(venue.entrance_local)
            .expect("entrance exists")
            .pos;
        let entrance_enu = venue.true_transform.apply(entrance_local);
        // Outdoor approach: a straight street-side walk to the entrance.
        let start_enu = entrance_enu + Point2::new(-approach_m, -approach_m * 0.3);
        let mut samples = Vec::new();
        let outdoor_len = start_enu.distance(entrance_enu);
        let n_out = outdoor_len.ceil() as usize;
        for i in 0..n_out {
            let t = i as f64 / n_out as f64;
            let enu = start_enu.lerp(entrance_enu, t);
            samples.push(WalkSample {
                geo: frame.from_local(enu),
                enu,
                indoors: false,
                venue_local: None,
            });
        }
        // Indoor leg: entrance → along the corridor → up an aisle.
        let inside_waypoints = [
            entrance_local,
            entrance_local + Point2::new(0.0, 2.0),
            entrance_local + Point2::new(-8.0, 2.0),
            entrance_local + Point2::new(-8.0, 12.0),
        ];
        for leg in inside_waypoints.windows(2) {
            let len = leg[0].distance(leg[1]).ceil() as usize;
            for i in 0..len.max(1) {
                let t = i as f64 / len.max(1) as f64;
                let local = leg[0].lerp(leg[1], t);
                let enu = venue.true_transform.apply(local);
                samples.push(WalkSample {
                    geo: frame.from_local(enu),
                    enu,
                    indoors: true,
                    venue_local: Some((venue_idx, local)),
                });
            }
        }
        WalkTrace { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Ground-truth motion deltas between consecutive samples (ENU).
    pub fn deltas(&self) -> Vec<Point2> {
        self.samples
            .windows(2)
            .map(|w| w[1].enu - w[0].enu)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorldConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        // Rank 0 under Zipf(1.0, n=100) has probability ~0.19.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - 0.19).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let p = c as f64 / 50_000.0;
            assert!((p - 0.1).abs() < 0.01, "p = {p}");
        }
    }

    #[test]
    fn walk_trace_transitions_indoors() {
        let world = World::generate(WorldConfig::default());
        let trace = WalkTrace::into_venue(&world, 0, 60.0);
        assert!(trace.len() > 60);
        let first_indoor = trace.samples.iter().position(|s| s.indoors).unwrap();
        assert!(first_indoor > 30, "walk starts outdoors");
        // Once indoors, stays indoors.
        assert!(trace.samples[first_indoor..].iter().all(|s| s.indoors));
        // Indoor samples carry venue-local ground truth consistent with
        // the true transform.
        for s in &trace.samples[first_indoor..] {
            let (v, local) = s.venue_local.unwrap();
            let enu = world.venues[v].true_transform.apply(local);
            assert!(enu.distance(s.enu) < 1e-9);
        }
    }

    #[test]
    fn walk_samples_are_meter_spaced() {
        let world = World::generate(WorldConfig::default());
        let trace = WalkTrace::into_venue(&world, 1, 40.0);
        for d in trace.deltas() {
            assert!(d.norm() < 2.5, "step {} too large", d.norm());
        }
    }
}
