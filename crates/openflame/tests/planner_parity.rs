//! Recall parity for the cost-based query planner
//! (`docs/wire-protocol.md` spec §13): coverage-based pruning changes
//! what goes on the wire, never what a query returns.
//!
//! Three claims are enforced here:
//!
//! 1. **Recall parity on every backend** — a planner-on and a
//!    planner-off client produce byte-identical results for search,
//!    geocode, reverse geocode, localize and tiles, cold and warm, on
//!    the simulator, TCP, and QuicLite.
//! 2. **The pruning is real** — on the warm path the planner consults
//!    strictly fewer sources (unaligned venues advertise zero tiles
//!    and zero reverse-geocode documents, spec §13.1) and the saving
//!    shows up in transport message counts, not just plan accounting.
//! 3. **Dead replicas leave no cached state behind** — fleet failover
//!    purges the dead endpoint's capability *and* coverage cache
//!    entries, so a replaced replica is never re-served (or re-pruned)
//!    from stale per-endpoint state.

use openflame_core::{Deployment, DeploymentConfig, OpenFlameClient, QueryKind};
use openflame_localize::LocationCue;
use openflame_mapserver::Principal;
use openflame_netsim::BackendKind;
use openflame_worldgen::{World, WorldConfig};

const BACKENDS: [BackendKind; 3] = [BackendKind::Sim, BackendKind::Tcp, BackendKind::QuicLite];

/// Wide enough fan-out that pruning has something to prune.
fn fanout_world() -> World {
    World::generate(WorldConfig {
        stores: 4,
        products_per_store: 8,
        ..WorldConfig::default()
    })
}

/// An outdoor address that exists in the public world map.
fn some_address(world: &World) -> String {
    world
        .outdoor
        .nodes()
        .find_map(|n| {
            n.tags
                .has("addr:housenumber")
                .then(|| n.tags.get("name").unwrap().to_string())
        })
        .expect("world has addresses")
}

/// A second client on the deployment's transport with coverage-based
/// pruning disabled — the planner-off control arm.
fn planner_off_client(dep: &Deployment) -> OpenFlameClient {
    OpenFlameClient::builder()
        .principal(Principal::anonymous())
        .world_provider(dep.outdoor_server.endpoint())
        .coverage_planner(false)
        .build_on(dep.transport.clone(), dep.resolver.clone())
}

#[test]
fn planner_recall_parity_on_every_backend() {
    let world = fanout_world();
    let address = some_address(&world);
    for backend in BACKENDS {
        let dep = Deployment::build(
            world.clone(),
            DeploymentConfig {
                backend,
                ..DeploymentConfig::default()
            },
        );
        let on = &dep.client;
        let off = planner_off_client(&dep);
        let center = dep.world.config.center;
        let world_ep = dep.outdoor_server.endpoint();

        // Two passes: the first compares the cold paths (no summaries
        // cached yet — the planner must not even reorder), the second
        // the warm paths, where pruning actually fires.
        for pass in ["cold", "warm"] {
            for product in dep.world.products.iter().take(3) {
                let near = dep.world.venues[product.venue].hint;
                assert_eq!(
                    on.federated_search(&product.name, near, 5).unwrap(),
                    off.federated_search(&product.name, near, 5).unwrap(),
                    "{backend:?}/{pass}: search recall must not depend on the planner"
                );
                let cues = [LocationCue::Gnss {
                    fix: near,
                    accuracy_m: 4.0,
                }];
                assert_eq!(
                    on.federated_localize(near, &cues).unwrap(),
                    off.federated_localize(near, &cues).unwrap(),
                    "{backend:?}/{pass}: localize estimates must not depend on the planner"
                );
            }
            assert_eq!(
                on.federated_geocode(&address, world_ep, 3).unwrap(),
                off.federated_geocode(&address, world_ep, 3).unwrap(),
                "{backend:?}/{pass}: geocode refinement must not depend on the planner"
            );
            assert_eq!(
                on.federated_reverse_geocode(center, 150.0).unwrap(),
                off.federated_reverse_geocode(center, 150.0).unwrap(),
                "{backend:?}/{pass}: reverse geocode must not depend on the planner"
            );
            assert_eq!(
                on.federated_tile(center, 16).unwrap(),
                off.federated_tile(center, 16).unwrap(),
                "{backend:?}/{pass}: tile composition must not depend on the planner"
            );
        }
    }
}

#[test]
fn warm_planner_consults_strictly_fewer_sources() {
    let dep = Deployment::build(fanout_world(), DeploymentConfig::default());
    let off = planner_off_client(&dep);
    let center = dep.world.config.center;

    // Warm both arms with a search: its two-phase discipline
    // handshakes every discovered server, seeding the coverage cache
    // (tiles go out `Direct` and never handshake on their own).
    let product = dep.world.products[0].clone();
    dep.client
        .federated_search(&product.name, center, 3)
        .unwrap();
    off.federated_search(&product.name, center, 3).unwrap();
    let on_tile = dep.client.federated_tile(center, 16).unwrap();
    let off_tile = off.federated_tile(center, 16).unwrap();
    assert_eq!(on_tile, off_tile, "warm-up already agrees");

    // Plan accounting: the warm planner proves the unaligned venues
    // out of the tile scatter (they advertise zero tiles, spec §13.1);
    // the off arm considers the same candidates and prunes none.
    let on_plan = dep
        .client
        .plan_query(QueryKind::Tile, center, 200.0)
        .unwrap();
    let off_plan = off.plan_query(QueryKind::Tile, center, 200.0).unwrap();
    assert_eq!(
        on_plan.considered(),
        off_plan.considered(),
        "both arms consider the same candidate set"
    );
    assert_eq!(off_plan.pruned_count(), 0, "planner off never prunes");
    assert!(
        on_plan.pruned_count() > 0,
        "a warm fan-out over unaligned venues must prune"
    );
    assert!(
        on_plan.consulted() < off_plan.consulted(),
        "pruning must consult strictly fewer sources: {} vs {}",
        on_plan.consulted(),
        off_plan.consulted()
    );

    // And the saving is wire-real: a warm tile query costs strictly
    // fewer transport messages with the planner on — same composition.
    dep.transport.reset_stats();
    let on_tile = dep.client.federated_tile(center, 16).unwrap();
    let on_msgs = dep.transport.stats().messages;
    dep.transport.reset_stats();
    let off_tile = off.federated_tile(center, 16).unwrap();
    let off_msgs = dep.transport.stats().messages;
    assert_eq!(on_tile, off_tile);
    assert!(
        on_msgs < off_msgs,
        "planner savings must show on the wire: {on_msgs} vs {off_msgs} messages"
    );
}

#[test]
fn dead_replica_cached_state_is_purged_on_failover() {
    // Fleet mode: every venue is two replicas of one content shard.
    let dep = Deployment::build(
        fanout_world(),
        DeploymentConfig {
            replicas: 2,
            ..DeploymentConfig::default()
        },
    );
    let product = dep.world.products[0].clone();
    let near = dep.world.venues[product.venue].hint;

    // Warm search: the chosen replica's Hello (and with it the
    // coverage summary) is cached per endpoint.
    let hits = dep.client.federated_search(&product.name, near, 3).unwrap();
    assert!(hits.iter().any(|h| h.result.label == product.name));
    let victim = dep
        .fleet_servers
        .iter()
        .find(|m| {
            m.venue == product.venue
                && dep
                    .client
                    .session()
                    .cached_coverage(m.server.endpoint())
                    .is_some()
        })
        .expect("the consulted replica cached its coverage")
        .server
        .clone();
    assert!(dep.client.session().has_hello(victim.endpoint()));

    // The replica dies mid-deployment; the next search fails over to
    // its shard sibling and must still find the product.
    dep.transport.set_down(victim.endpoint(), true);
    let hits = dep.client.federated_search(&product.name, near, 3).unwrap();
    assert!(
        hits.iter().any(|h| h.result.label == product.name),
        "failover to the shard sibling preserves recall"
    );

    // The regression pin: dead-listing must purge the dead endpoint's
    // per-endpoint cached state — capability AND coverage — so a
    // replacement server on a recycled endpoint is never served (or
    // pruned) from the dead server's advertisement.
    assert!(
        !dep.client.session().has_hello(victim.endpoint()),
        "dead replica's capability cache entry must be purged"
    );
    assert!(
        dep.client
            .session()
            .cached_coverage(victim.endpoint())
            .is_none(),
        "dead replica's coverage cache entry must be purged"
    );

    // And the planner never routes at it again while dead-listed.
    let plan = dep
        .client
        .plan_query(QueryKind::Search, near, 2_000.0)
        .unwrap();
    assert!(
        plan.targets
            .iter()
            .all(|t| t.server.endpoint != victim.endpoint()),
        "dead replica must not be re-planned"
    );
}
