//! Pipelining stress: many concurrent sessions scatter wide fan-outs
//! over ONE shared real-socket transport, and the transport's
//! worker-thread population stays bounded — it does not grow with
//! fan-out width, session count, served-endpoint count or call volume.
//!
//! This is the acceptance check for the shared-reactor redesign: the
//! old backend budgeted threads *per server* (an accept loop, a
//! dispatch pool and a reader/writer pair per pooled connection each),
//! so a 128-server fleet cost thousands of parked threads. The reactor
//! model multiplexes every connection — client and served side — over
//! a fixed pool of event-loop threads sized by the host's cores, plus
//! one transport-wide dispatch pool. The whole fleet below runs on
//! `reactor_threads() + DISPATCH_POOL` OS threads. The QuicLite
//! datagram backend pins a strictly lower constant: one serve-side
//! poller, its `SERVE_POOL` dispatch workers, one shared client
//! receiver and one RTO timer, regardless of scale.

use openflame_core::{ClientError, Session};
use openflame_mapserver::protocol::{Envelope, HelloInfo, Request, Response};
use openflame_mapserver::Principal;
use openflame_netsim::tcp::{TcpTransport, DISPATCH_POOL};
use openflame_netsim::udp::{QuicLiteTransport, SERVE_POOL as UDP_SERVE_POOL};
use openflame_netsim::{EndpointId, Transport};
use std::sync::Arc;

const SESSIONS: usize = 8;
const SERVERS: usize = 128;
const ROUNDS: usize = 4;

/// A minimal map-protocol stub: answers every batched request with a
/// `Hello`, like a server that only speaks capability discovery.
fn stub_service(id: usize) -> Arc<dyn openflame_netsim::WireService> {
    Arc::new(move |_from: EndpointId, payload: &[u8]| {
        let env: Envelope = openflame_codec::from_bytes(payload).expect("well-formed envelope");
        let Request::Batch(items) = env.request else {
            panic!("sessions always batch");
        };
        let answers: Vec<Response> = items
            .iter()
            .map(|_| {
                Response::Hello(HelloInfo {
                    server_id: format!("stub-{id}"),
                    map_name: "stress".into(),
                    services: vec!["hello".into()],
                    localization_techs: Vec::new(),
                    anchored: false,
                    anchor: None,
                    portals: Vec::new(),
                    version: 1,
                    coverage: None,
                })
            })
            .collect();
        openflame_codec::to_bytes(&Response::Batch(answers)).to_vec()
    })
}

/// Registers `SERVERS` stub servers and `SESSIONS` client sessions on
/// one shared transport.
fn build_fleet(shared: &Arc<dyn Transport>) -> (Vec<EndpointId>, Vec<Session>) {
    let servers: Vec<EndpointId> = (0..SERVERS)
        .map(|i| {
            let id = shared.register(&format!("stub-{i}"), None);
            shared.set_service(id, stub_service(i));
            id
        })
        .collect();
    let sessions: Vec<Session> = (0..SESSIONS)
        .map(|i| {
            let endpoint = shared.register(&format!("session-{i}"), None);
            Session::new(shared.clone(), endpoint, Principal::anonymous())
        })
        .collect();
    (servers, sessions)
}

/// One warm-up scatter per session (cold dials and, on QuicLite, the
/// handshake round happen here), then `ROUNDS` of all sessions
/// scattering two-request batches concurrently.
fn run_stress(servers: &[EndpointId], sessions: &[Session]) {
    for session in sessions {
        for result in session.batch_parallel(
            servers
                .iter()
                .map(|s| (*s, vec![Request::Hello]))
                .collect::<Vec<_>>(),
        ) {
            result.expect("warm-up scatter succeeds");
        }
    }
    std::thread::scope(|scope| {
        for session in sessions {
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let calls: Vec<(EndpointId, Vec<Request>)> = servers
                        .iter()
                        .map(|s| (*s, vec![Request::Hello, Request::Hello]))
                        .collect();
                    for (i, result) in session.batch_parallel(calls).into_iter().enumerate() {
                        let responses: Result<Vec<Response>, ClientError> = result;
                        let responses = responses
                            .unwrap_or_else(|e| panic!("round {round} branch {i} failed: {e}"));
                        assert_eq!(responses.len(), 2, "positional batch answers");
                        assert!(matches!(responses[0], Response::Hello(_)));
                    }
                }
            });
        }
    });
}

/// Wire accounting is exact at fleet scale: every envelope is one
/// request frame plus one response frame, nothing else rode the
/// sockets, and every session kept the one-envelope-per-server
/// discipline. Transport stats are reset between stress runs, so
/// `messages` covers the last run only; session stats accumulate
/// across all `runs`.
fn assert_accounting(transport: &dyn Transport, orphans: u64, sessions: &[Session], runs: u64) {
    let envelopes = (SESSIONS * (1 + ROUNDS) * SERVERS) as u64;
    assert_eq!(transport.stats().messages, 2 * envelopes);
    assert_eq!(orphans, 0, "no response went unmatched under pipelining");
    for session in sessions {
        let stats = session.stats();
        assert_eq!(stats.batches, runs * ((1 + ROUNDS) * SERVERS) as u64);
    }
}

#[test]
fn worker_threads_bounded_under_concurrent_fanout() {
    let transport = TcpTransport::new(42);
    let shared: Arc<dyn Transport> = Arc::new(transport.clone());
    // This test pins the thread census and wire accounting, not
    // latency: a generous call deadline keeps a loaded CI host (the
    // whole fan-out shares its cores with sibling test binaries) from
    // timing out a branch and failing the run for the wrong reason.
    shared.set_timeout_us(60_000_000);
    let (servers, sessions) = build_fleet(&shared);

    // Thread population: the reactor pool plus the dispatch pool,
    // full stop. Registering 128 served endpoints and dialing
    // 8 × 128 client connections must not have grown it — there is no
    // per-server or per-connection term left in the budget.
    run_stress(&servers, &sessions);
    let ceiling = transport.reactor_threads() + DISPATCH_POOL;
    let now = transport.worker_threads();
    assert_eq!(
        now, ceiling,
        "tcp worker threads must equal reactor pool ({}) + dispatch pool ({DISPATCH_POOL}), got {now}",
        transport.reactor_threads()
    );

    // And stable: another full stress round reuses the same threads.
    transport.reset_stats();
    run_stress(&servers, &sessions);
    assert_eq!(
        transport.worker_threads(),
        ceiling,
        "steady-state scattering must not spawn further workers"
    );

    assert_accounting(shared.as_ref(), transport.orphan_responses(), &sessions, 2);
}

#[test]
fn quiclite_worker_threads_bounded_under_concurrent_fanout() {
    // The same stress on the datagram backend, whose thread constant
    // is strictly below TCP's: one serve-side poller multiplexes all
    // 128 serve sockets, SERVE_POOL workers dispatch for the whole
    // fleet, and the client side is one shared receiver plus the RTO
    // timer. TCP's floor is reactor_threads() + DISPATCH_POOL ≥ 1 + 8,
    // so the datagram ceiling stays under it on any host.
    let transport = QuicLiteTransport::new(42);
    let shared: Arc<dyn Transport> = Arc::new(transport.clone());
    // Same generous deadline as the tcp test: census, not latency.
    shared.set_timeout_us(60_000_000);
    let (servers, sessions) = build_fleet(&shared);

    run_stress(&servers, &sessions);
    let ceiling = 1 + UDP_SERVE_POOL + 2;
    let now = transport.worker_threads();
    assert!(
        now <= ceiling,
        "worker threads {now} exceed the QuicLite ceiling {ceiling}"
    );
    assert!(
        ceiling < 1 + DISPATCH_POOL,
        "datagram thread ceiling must stay strictly below the tcp floor"
    );

    transport.reset_stats();
    run_stress(&servers, &sessions);
    assert_eq!(
        transport.worker_threads(),
        now,
        "steady-state scattering must not spawn further workers"
    );

    assert_accounting(shared.as_ref(), transport.orphan_responses(), &sessions, 2);
}
